// Warm-standby replication and failover:
//
//  * service layer: the replication listener contract (bootstrap kAttach
//    before any delta, per-database total order), the follower apply entry
//    points (idempotent epoch skip, epoch-gap and fingerprint-divergence
//    refusal), read-only mode, and follower-side local persistence;
//  * wire layer: a follower daemon started with `follow_host` bootstraps
//    over real TCP, converges with the primary's delta stream, refuses
//    writes with the typed `read-only` error while serving solves, and
//    `promote` flips it into a writable primary — the failover drill
//    (primary dies, follower promoted, writes continue) must preserve
//    verdicts and fingerprints.

#include <gtest/gtest.h>

#include <stdlib.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cqa/cache/fingerprint.h"
#include "cqa/certainty/solver.h"
#include "cqa/db/database.h"
#include "cqa/delta/delta.h"
#include "cqa/query/parser.h"
#include "cqa/registry/sharded_service.h"
#include "cqa/serve/net/client.h"
#include "cqa/serve/net/daemon.h"
#include "cqa/serve/net/json.h"
#include "cqa/serve/net/protocol.h"

namespace cqa {
namespace {

using std::chrono::milliseconds;

constexpr milliseconds kIo{10'000};
constexpr char kBase[] = "R(a | b), R(a | c)\nS(b | a)";
constexpr char kQuery[] = "R(x | y), not S(y | x)";

Database DbVal(const char* text) {
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return std::move(db.value());
}

std::shared_ptr<const Database> Db(const char* text) {
  return std::make_shared<const Database>(DbVal(text));
}

DeltaOp Ins(const char* rel, std::vector<std::string> values) {
  DeltaOp op;
  op.insert = true;
  op.relation = rel;
  op.values = std::move(values);
  return op;
}

DeltaOp Del(const char* rel, std::vector<std::string> values) {
  DeltaOp op;
  op.insert = false;
  op.relation = rel;
  op.values = std::move(values);
  return op;
}

FactDelta Delta(std::string id, std::vector<DeltaOp> ops) {
  FactDelta d;
  d.id = std::move(id);
  d.ops = std::move(ops);
  return d;
}

struct TempDir {
  std::string path;
  TempDir() {
    char buf[] = "/tmp/cqa_replication_test_XXXXXX";
    char* made = mkdtemp(buf);
    EXPECT_NE(made, nullptr);
    path = made != nullptr ? made : "/tmp";
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

bool WaitFor(const std::function<bool()>& pred,
             milliseconds budget = milliseconds(10'000)) {
  auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(5));
  }
  return pred();
}

// ---------------------------------------------------------------------------
// Service layer: the listener contract

TEST(ReplicationServiceTest, ListenerGetsBootstrapBeforeAnyDelta) {
  ShardedServiceOptions options;
  options.shard.workers = 1;
  ShardedSolveService service(options);
  ASSERT_TRUE(service.Attach("main", DbVal(kBase)).ok());
  ASSERT_TRUE(
      service.ApplyDelta("main", Delta("pre", {Ins("R", {"p", "q"})})).ok());

  std::mutex mu;
  std::vector<ReplicationEvent> events;
  uint64_t token = service.AddReplicationListener(
      [&](const ReplicationEvent& event) {
        std::lock_guard<std::mutex> lock(mu);
        events.push_back(event);
      });
  // Subscribe is synchronous: the bootstrap for "main" is already there.
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, ReplicationEvent::Kind::kAttach);
    EXPECT_EQ(events[0].db, "main");
    EXPECT_EQ(events[0].epoch, 1u) << "bootstrap carries the current state";
    ASSERT_EQ(events[0].delta_ids.size(), 1u);
    EXPECT_EQ(events[0].delta_ids[0].first, "pre");
    Result<Database> facts = Database::FromText(events[0].facts);
    ASSERT_TRUE(facts.ok());
    EXPECT_EQ(FingerprintDatabase(*facts), events[0].fingerprint);
  }

  ASSERT_TRUE(
      service.ApplyDelta("main", Delta("live", {Ins("R", {"r", "s"})})).ok());
  // A database attached after subscription bootstraps too.
  ASSERT_TRUE(service.Attach("other", DbVal("T(x | y)")).ok());
  ASSERT_TRUE(service.Detach("other").ok());
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[1].kind, ReplicationEvent::Kind::kDelta);
    EXPECT_EQ(events[1].epoch, 2u);
    EXPECT_EQ(events[1].delta.id, "live");
    EXPECT_EQ(events[2].kind, ReplicationEvent::Kind::kAttach);
    EXPECT_EQ(events[2].db, "other");
    EXPECT_EQ(events[3].kind, ReplicationEvent::Kind::kDetach);
    EXPECT_EQ(events[3].db, "other");
  }

  service.RemoveReplicationListener(token);
  ASSERT_TRUE(
      service.ApplyDelta("main", Delta("after", {Ins("R", {"t", "u"})})).ok());
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(events.size(), 4u) << "removed listener still fed";
}

// In-process primary → follower pump: every primary event applied through
// the follower entry points must converge the follower to the primary's
// fingerprint, with verdict parity on every engine.
TEST(ReplicationServiceTest, FollowerConvergesThroughApplyEntryPoints) {
  ShardedServiceOptions options;
  options.shard.workers = 1;
  ShardedSolveService primary(options);
  ShardedSolveService follower(options);
  follower.SetReadOnly(true);

  std::mutex mu;
  std::vector<ReplicationEvent> queue;
  primary.AddReplicationListener([&](const ReplicationEvent& event) {
    std::lock_guard<std::mutex> lock(mu);
    queue.push_back(event);
  });

  ASSERT_TRUE(primary.Attach("main", DbVal(kBase)).ok());
  std::vector<FactDelta> deltas = {
      Delta("d1", {Ins("R", {"d", "e"})}),
      Delta("d2", {Del("S", {"b", "a"})}),
      Delta("d3", {Ins("S", {"e", "d"})}),
  };
  DbFingerprint primary_fp;
  for (const FactDelta& d : deltas) {
    Result<DeltaOutcome> out = primary.ApplyDelta("main", d);
    ASSERT_TRUE(out.ok()) << out.error();
    primary_fp = out->fingerprint;
  }

  // Pump the queue into the follower, exactly as the wire client does.
  std::vector<ReplicationEvent> drained;
  {
    std::lock_guard<std::mutex> lock(mu);
    drained = queue;
  }
  for (const ReplicationEvent& event : drained) {
    switch (event.kind) {
      case ReplicationEvent::Kind::kAttach: {
        Result<bool> applied = follower.ApplyReplicaSnapshot(
            event.db, event.facts, event.epoch, event.fingerprint,
            event.delta_ids);
        ASSERT_TRUE(applied.ok()) << applied.error();
        break;
      }
      case ReplicationEvent::Kind::kDelta: {
        Result<DeltaOutcome> applied = follower.ApplyReplicatedDelta(
            event.db, event.delta, event.epoch, event.fingerprint);
        ASSERT_TRUE(applied.ok()) << applied.error();
        EXPECT_TRUE(applied->applied);
        break;
      }
      case ReplicationEvent::Kind::kDetach:
        break;
    }
  }

  Result<DatabaseRegistry::Entry> replica = follower.registry().Get("main");
  ASSERT_TRUE(replica.ok());
  EXPECT_EQ(FingerprintDatabase(*replica->db), primary_fp);
  Result<ServiceStats> stats = follower.StatsFor("main");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->epoch, deltas.size());

  // Verdict parity against the primary on every engine.
  Result<DatabaseRegistry::Entry> original = primary.registry().Get("main");
  ASSERT_TRUE(original.ok());
  Result<Query> q = ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());
  const SolverMethod methods[] = {
      SolverMethod::kAuto,       SolverMethod::kRewriting,
      SolverMethod::kAlgorithm1, SolverMethod::kBacktracking,
      SolverMethod::kNaive,      SolverMethod::kMatchingQ1,
      SolverMethod::kSampling,
  };
  for (SolverMethod m : methods) {
    Result<SolveReport> a = SolveCertainty(*q, *replica->db, m);
    Result<SolveReport> b = SolveCertainty(*q, *original->db, m);
    ASSERT_EQ(a.ok(), b.ok()) << "engine " << ToString(m);
    if (a.ok()) {
      EXPECT_EQ(a->verdict, b->verdict) << "engine " << ToString(m);
    }
  }

  // Replaying an already-covered event is an idempotent skip, not an error
  // (the overlap every bootstrap+stream resync produces).
  const ReplicationEvent& old_delta = drained[1];
  Result<DeltaOutcome> dup = follower.ApplyReplicatedDelta(
      old_delta.db, old_delta.delta, old_delta.epoch, old_delta.fingerprint);
  ASSERT_TRUE(dup.ok()) << dup.error();
  EXPECT_FALSE(dup->applied);

  // The follower's idempotency window was seeded by the stream: after
  // promotion, a client retry of a delta the PRIMARY acked still re-acks
  // instead of double-applying.
  follower.SetReadOnly(false);
  Result<DeltaOutcome> retry = follower.ApplyDelta("main", deltas[2]);
  ASSERT_TRUE(retry.ok()) << retry.error();
  EXPECT_FALSE(retry->applied);
  EXPECT_EQ(retry->fingerprint, primary_fp);
}

TEST(ReplicationServiceTest, EpochGapAndDivergenceAreRefused) {
  ShardedServiceOptions options;
  options.shard.workers = 1;
  ShardedSolveService follower(options);
  Database base = DbVal(kBase);
  DbFingerprint base_fp = FingerprintDatabase(base);
  ASSERT_TRUE(follower
                  .ApplyReplicaSnapshot("main", base.ToText(), /*epoch=*/3,
                                        base_fp, {})
                  .ok());

  // Epoch gap (local 3, stream sends 5): torn stream, must resync.
  Result<DeltaOutcome> gap = follower.ApplyReplicatedDelta(
      "main", Delta("g", {Ins("R", {"x", "z"})}), /*epoch=*/5, base_fp);
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.code(), ErrorCode::kInternal);

  // Right epoch, wrong expected fingerprint: divergence, must refuse (the
  // shard state stays at epoch 3 — the failed apply did not publish).
  Result<DeltaOutcome> diverged = follower.ApplyReplicatedDelta(
      "main", Delta("d", {Ins("R", {"x", "z"})}), /*epoch=*/4, base_fp);
  ASSERT_FALSE(diverged.ok());
  EXPECT_EQ(diverged.code(), ErrorCode::kInternal);
  Result<ServiceStats> stats = follower.StatsFor("main");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->epoch, 3u);

  // A bootstrap whose facts do not hash to its stamp is corruption.
  Result<bool> bad = follower.ApplyReplicaSnapshot(
      "other", "R(a | b)", /*epoch=*/1, base_fp, {});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kInternal);
}

TEST(ReplicationServiceTest, ReadOnlyModeRefusesPrimaryWritesOnly) {
  ShardedServiceOptions options;
  options.shard.workers = 1;
  ShardedSolveService service(options);
  ASSERT_TRUE(service.Attach("main", DbVal(kBase)).ok());
  service.SetReadOnly(true);

  Result<DeltaOutcome> refused =
      service.ApplyDelta("main", Delta("w", {Ins("R", {"x", "z"})}));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), ErrorCode::kReadOnly);

  // The replication entry points bypass read-only (that is their job), and
  // promotion lifts the refusal.
  Result<DatabaseRegistry::Entry> entry = service.registry().Get("main");
  ASSERT_TRUE(entry.ok());
  Result<DeltaApplyOutcome> next =
      ApplyDeltaToDatabase(*entry->db, Delta("r1", {Ins("R", {"x", "z"})}));
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(service
                  .ApplyReplicatedDelta("main", Delta("r1", {Ins("R", {"x", "z"})}),
                                        /*epoch=*/1, next->fingerprint)
                  .ok());
  service.SetReadOnly(false);
  EXPECT_TRUE(
      service.ApplyDelta("main", Delta("w2", {Ins("R", {"q", "p"})})).ok());
}

// A journaling follower persists replicated state locally: after a crash
// it recovers to the replicated epoch without the primary's help.
TEST(ReplicationServiceTest, FollowerPersistsReplicatedStateLocally) {
  TempDir dir;
  ShardedServiceOptions options;
  options.shard.workers = 1;
  options.journal_dir = dir.path;
  options.journal.fsync = FsyncPolicy::kNever;
  Database base = DbVal(kBase);
  DbFingerprint base_fp = FingerprintDatabase(base);
  Result<DeltaApplyOutcome> next =
      ApplyDeltaToDatabase(base, Delta("r1", {Del("S", {"b", "a"})}));
  ASSERT_TRUE(next.ok());
  {
    ShardedSolveService follower(options);
    follower.SetReadOnly(true);
    ASSERT_TRUE(follower
                    .ApplyReplicaSnapshot("main", base.ToText(), /*epoch=*/7,
                                          base_fp, {{"old-id", 7}})
                    .ok());
    ASSERT_TRUE(follower
                    .ApplyReplicatedDelta("main",
                                          Delta("r1", {Del("S", {"b", "a"})}),
                                          /*epoch=*/8, next->fingerprint)
                    .ok());
    // Follower dies (no shutdown handshake).
  }
  {
    ShardedSolveService recovered(options);
    Result<DatabaseRegistry::Entry> attached =
        recovered.Attach("main", DbVal(kBase));
    ASSERT_TRUE(attached.ok()) << attached.error();
    EXPECT_EQ(attached->fingerprint, next->fingerprint);
    Result<ServiceStats> stats = recovered.StatsFor("main");
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->epoch, 8u);
    // The bootstrap's idempotency window survived the crash too.
    Result<DeltaOutcome> dup = recovered.ApplyDelta(
        "main", Delta("old-id", {Ins("R", {"never", "applied"})}));
    ASSERT_TRUE(dup.ok());
    EXPECT_FALSE(dup->applied);
  }
}

// ---------------------------------------------------------------------------
// Wire layer: follower daemon over real TCP

struct ReplicationFixture {
  TempDir primary_dir;
  TempDir follower_dir;
  std::unique_ptr<SolveDaemon> primary;
  std::unique_ptr<SolveDaemon> follower;
  NetClient primary_client;
  NetClient follower_client;

  ReplicationFixture() {
    DaemonOptions popts;
    popts.host = "127.0.0.1";
    popts.journal_dir = primary_dir.path;
    popts.journal.fsync = FsyncPolicy::kNever;
    primary = std::make_unique<SolveDaemon>(Db(kBase), popts);
    Result<bool> pstarted = primary->Start();
    EXPECT_TRUE(pstarted.ok()) << (pstarted.ok() ? "" : pstarted.error());

    DaemonOptions fopts;
    fopts.host = "127.0.0.1";
    fopts.journal_dir = follower_dir.path;
    fopts.journal.fsync = FsyncPolicy::kNever;
    fopts.follow_host = "127.0.0.1";
    fopts.follow_port = primary->port();
    fopts.replication.retry_backoff = milliseconds(50);
    follower = std::make_unique<SolveDaemon>(fopts);
    Result<bool> fstarted = follower->Start();
    EXPECT_TRUE(fstarted.ok()) << (fstarted.ok() ? "" : fstarted.error());

    EXPECT_TRUE(
        primary_client.Connect("127.0.0.1", primary->port(), kIo).ok());
    EXPECT_TRUE(
        follower_client.Connect("127.0.0.1", follower->port(), kIo).ok());
  }

  bool FollowerAtEpoch(uint64_t epoch) {
    return WaitFor([&] {
      for (const auto& [name, stats] : follower->stats_per_db()) {
        if (name == SolveDaemon::kDefaultDbName && stats.epoch >= epoch) {
          return true;
        }
      }
      return false;
    });
  }
};

std::string SolveFrame(uint64_t id, const std::string& query) {
  return JsonObjectBuilder()
      .Set("type", "solve")
      .Set("id", id)
      .Set("query", query)
      .Build()
      .Serialize();
}

std::string DeltaFrame(uint64_t id, const std::string& delta_id,
                       const std::vector<DeltaOp>& ops) {
  JsonObjectBuilder b;
  b.Set("type", "apply_delta").Set("id", id).Set("delta_id", delta_id);
  b.Set("ops", EncodeDeltaOps(ops));
  return b.Build().Serialize();
}

TEST(ReplicationDaemonTest, FollowerBootstrapsConvergesAndRefusesWrites) {
  ReplicationFixture f;
  ASSERT_TRUE(f.FollowerAtEpoch(0)) << "bootstrap never arrived";

  // Health reports the follower role.
  ASSERT_TRUE(
      f.follower_client.SendFrame(R"({"type":"health","id":1})", kIo).ok());
  Result<WireResponse> health = f.follower_client.ReadResponse(kIo);
  ASSERT_TRUE(health.ok()) << health.error();
  ASSERT_NE(health->raw.Find("role"), nullptr);
  EXPECT_EQ(health->raw.Find("role")->AsString(), "follower");

  // A delta applied on the primary streams across.
  ASSERT_TRUE(f.primary_client
                  .SendFrame(DeltaFrame(2, "rd1", {Del("S", {"b", "a"})}), kIo)
                  .ok());
  Result<WireResponse> ack = f.primary_client.ReadResponse(kIo);
  ASSERT_TRUE(ack.ok()) << ack.error();
  ASSERT_EQ(ack->type, "delta_ack") << ack->raw.Serialize();
  ASSERT_TRUE(f.FollowerAtEpoch(1)) << "delta never replicated";

  // The follower serves reads from the replicated epoch: the deletion
  // flipped the query to certain.
  ASSERT_TRUE(f.follower_client.SendFrame(SolveFrame(3, kQuery), kIo).ok());
  Result<WireResponse> verdict = f.follower_client.WaitTerminal(3, kIo);
  ASSERT_TRUE(verdict.ok()) << verdict.error();
  EXPECT_EQ(verdict->verdict, "certain");

  // But refuses writes with the typed read-only error (non-fatal).
  ASSERT_TRUE(f.follower_client
                  .SendFrame(DeltaFrame(4, "wd1", {Ins("R", {"z", "w"})}), kIo)
                  .ok());
  Result<WireResponse> refused = f.follower_client.ReadResponse(kIo);
  ASSERT_TRUE(refused.ok()) << refused.error();
  EXPECT_EQ(refused->type, "error");
  EXPECT_EQ(refused->code, "read-only");
  EXPECT_FALSE(refused->fatal);

  // Replication accounting on both sides.
  ASSERT_TRUE(WaitFor([&] {
    return f.primary->daemon_stats().repl_acks_received >= 2;
  })) << "primary never saw the follower's acks";
  DaemonStats pstats = f.primary->daemon_stats();
  EXPECT_GE(pstats.repl_streams_opened, 1u);
  EXPECT_GE(pstats.repl_events_sent, 2u) << "bootstrap + delta";
  DaemonStats fstats = f.follower->daemon_stats();
  EXPECT_GE(fstats.follower_connects, 1u);
  EXPECT_GE(fstats.follower_snapshots_applied, 1u);
  EXPECT_GE(fstats.follower_deltas_applied, 1u);
  EXPECT_EQ(fstats.follower_apply_errors, 0u);
}

TEST(ReplicationDaemonTest, PromoteFlipsTheFollowerWritable) {
  ReplicationFixture f;
  ASSERT_TRUE(f.FollowerAtEpoch(0));

  // Promote on a primary is a no-op answer, not an error.
  ASSERT_TRUE(
      f.primary_client.SendFrame(R"({"type":"promote","id":1})", kIo).ok());
  Result<WireResponse> noop = f.primary_client.ReadResponse(kIo);
  ASSERT_TRUE(noop.ok()) << noop.error();
  ASSERT_EQ(noop->type, "promote_ack") << noop->raw.Serialize();
  EXPECT_FALSE(noop->raw.Find("was_follower")->AsBool());

  ASSERT_TRUE(
      f.follower_client.SendFrame(R"({"type":"promote","id":2})", kIo).ok());
  Result<WireResponse> promoted = f.follower_client.ReadResponse(kIo);
  ASSERT_TRUE(promoted.ok()) << promoted.error();
  ASSERT_EQ(promoted->type, "promote_ack") << promoted->raw.Serialize();
  EXPECT_TRUE(promoted->raw.Find("was_follower")->AsBool());
  EXPECT_FALSE(f.follower->follower());

  // Writable now, and health reports primary.
  ASSERT_TRUE(f.follower_client
                  .SendFrame(DeltaFrame(3, "pd1", {Ins("R", {"n", "m"})}), kIo)
                  .ok());
  Result<WireResponse> ack = f.follower_client.ReadResponse(kIo);
  ASSERT_TRUE(ack.ok()) << ack.error();
  EXPECT_EQ(ack->type, "delta_ack") << ack->raw.Serialize();
  ASSERT_TRUE(
      f.follower_client.SendFrame(R"({"type":"health","id":4})", kIo).ok());
  Result<WireResponse> health = f.follower_client.ReadResponse(kIo);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->raw.Find("role")->AsString(), "primary");

  // Idempotent: promoting twice answers was_follower=false.
  ASSERT_TRUE(
      f.follower_client.SendFrame(R"({"type":"promote","id":5})", kIo).ok());
  Result<WireResponse> again = f.follower_client.ReadResponse(kIo);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->type, "promote_ack");
  EXPECT_FALSE(again->raw.Find("was_follower")->AsBool());
}

// The failover drill: stream deltas, kill the primary, promote the
// follower, keep writing — the promoted daemon must hold exactly the
// replicated history plus the new writes, with correct verdicts.
TEST(ReplicationDaemonTest, FailoverPreservesHistoryAndServesWrites) {
  ReplicationFixture f;
  // d1 flips the verdict to certain, d2/d3 leave it certain.
  std::vector<FactDelta> streamed = {
      Delta("f1", {Del("S", {"b", "a"})}),
      Delta("f2", {Ins("R", {"d", "e"})}),
      Delta("f3", {Ins("R", {"f", "g"})}),
  };
  std::string primary_fp;
  for (size_t i = 0; i < streamed.size(); ++i) {
    ASSERT_TRUE(
        f.primary_client
            .SendFrame(DeltaFrame(10 + i, streamed[i].id, streamed[i].ops),
                       kIo)
            .ok());
    Result<WireResponse> ack = f.primary_client.ReadResponse(kIo);
    ASSERT_TRUE(ack.ok()) << ack.error();
    ASSERT_EQ(ack->type, "delta_ack") << ack->raw.Serialize();
    primary_fp = ack->raw.Find("fingerprint")->AsString();
  }
  ASSERT_TRUE(f.FollowerAtEpoch(streamed.size()));

  // Primary dies.
  f.primary->Shutdown(milliseconds(2'000));
  f.primary.reset();

  // Promote the survivor and verify fingerprint parity with the dead
  // primary's last ack.
  ASSERT_TRUE(
      f.follower_client.SendFrame(R"({"type":"promote","id":20})", kIo).ok());
  Result<WireResponse> promoted = f.follower_client.ReadResponse(kIo);
  ASSERT_TRUE(promoted.ok()) << promoted.error();
  ASSERT_EQ(promoted->type, "promote_ack") << promoted->raw.Serialize();
  ServiceStats stats = f.follower->service_stats();
  EXPECT_EQ(stats.epoch, streamed.size());

  // A duplicate of a delta the PRIMARY acked re-acks idempotently on the
  // promoted daemon — no client retry double-applies across failover.
  ASSERT_TRUE(
      f.follower_client
          .SendFrame(DeltaFrame(21, streamed[2].id, streamed[2].ops), kIo)
          .ok());
  Result<WireResponse> dup = f.follower_client.ReadResponse(kIo);
  ASSERT_TRUE(dup.ok()) << dup.error();
  ASSERT_EQ(dup->type, "delta_ack") << dup->raw.Serialize();
  EXPECT_FALSE(dup->raw.Find("applied")->AsBool());
  EXPECT_EQ(dup->raw.Find("fingerprint")->AsString(), primary_fp);

  // New writes land, and reads see the full history.
  ASSERT_TRUE(f.follower_client
                  .SendFrame(DeltaFrame(22, "post-failover",
                                        {Ins("R", {"h", "i"})}),
                             kIo)
                  .ok());
  Result<WireResponse> fresh = f.follower_client.ReadResponse(kIo);
  ASSERT_TRUE(fresh.ok()) << fresh.error();
  ASSERT_EQ(fresh->type, "delta_ack") << fresh->raw.Serialize();
  EXPECT_TRUE(fresh->raw.Find("applied")->AsBool());
  EXPECT_EQ(fresh->raw.Find("epoch")->AsInt(),
            static_cast<int64_t>(streamed.size() + 1));

  ASSERT_TRUE(f.follower_client.SendFrame(SolveFrame(23, kQuery), kIo).ok());
  Result<WireResponse> verdict = f.follower_client.WaitTerminal(23, kIo);
  ASSERT_TRUE(verdict.ok()) << verdict.error();
  EXPECT_EQ(verdict->verdict, "certain");
}

// A follower that outlives a primary restart resyncs by itself: the
// reconnect triggers a fresh bootstrap, and overlapping epochs skip
// idempotently.
TEST(ReplicationDaemonTest, FollowerResyncsAfterPrimaryRestart) {
  ReplicationFixture f;
  ASSERT_TRUE(f.primary_client
                  .SendFrame(DeltaFrame(1, "rs1", {Del("S", {"b", "a"})}), kIo)
                  .ok());
  ASSERT_TRUE(f.primary_client.ReadResponse(kIo).ok());
  ASSERT_TRUE(f.FollowerAtEpoch(1));

  // Restart the primary on the SAME port, recovering from its journal.
  const uint16_t port = f.primary->port();
  f.primary->Shutdown(milliseconds(2'000));
  f.primary.reset();
  DaemonOptions popts;
  popts.host = "127.0.0.1";
  popts.port = port;
  popts.journal_dir = f.primary_dir.path;
  popts.journal.fsync = FsyncPolicy::kNever;
  auto restarted = std::make_unique<SolveDaemon>(Db(kBase), popts);
  Result<bool> started = restarted->Start();
  ASSERT_TRUE(started.ok()) << started.error();
  EXPECT_EQ(restarted->service_stats().epoch, 1u) << "journal recovery";

  // The follower reconnects and the restarted primary's stream flows.
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port, kIo).ok());
  ASSERT_TRUE(
      client.SendFrame(DeltaFrame(2, "rs2", {Ins("R", {"v", "w"})}), kIo)
          .ok());
  Result<WireResponse> ack = client.ReadResponse(kIo);
  ASSERT_TRUE(ack.ok()) << ack.error();
  ASSERT_EQ(ack->type, "delta_ack") << ack->raw.Serialize();
  ASSERT_TRUE(f.FollowerAtEpoch(2)) << "follower never resynced";
  EXPECT_EQ(f.follower->daemon_stats().follower_apply_errors, 0u);
  restarted->Shutdown(milliseconds(2'000));
}

}  // namespace
}  // namespace cqa
