#include <gtest/gtest.h>

#include "cqa/query/parser.h"

namespace cqa {
namespace {

TEST(ParserTest, ParsesQ1) {
  Result<Query> q = ParseQuery("R(x | y), not S(y | x)");
  ASSERT_TRUE(q.ok()) << q.error();
  EXPECT_EQ(q->NumLiterals(), 2u);
  EXPECT_FALSE(q->IsNegated(0));
  EXPECT_TRUE(q->IsNegated(1));
  EXPECT_EQ(q->atom(0).relation_name(), "R");
  EXPECT_EQ(q->atom(0).key_len(), 1);
  EXPECT_EQ(q->atom(1).term(0).var(), InternSymbol("y"));
}

TEST(ParserTest, BangNegationAndConstants) {
  Result<Query> q = ParseQuery("S(x), !N1('c' | x), !N2('c' | x)");
  ASSERT_TRUE(q.ok()) << q.error();
  EXPECT_EQ(q->NumLiterals(), 3u);
  EXPECT_TRUE(q->atom(0).IsAllKey());
  EXPECT_TRUE(q->atom(1).term(0).is_constant());
  EXPECT_EQ(q->atom(1).term(0).constant(), Value::Of("c"));
}

TEST(ParserTest, NumbersAreConstants) {
  Result<Query> q = ParseQuery("R(x | 42)");
  ASSERT_TRUE(q.ok()) << q.error();
  EXPECT_EQ(q->atom(0).term(1).constant(), Value::Of("42"));
}

TEST(ParserTest, CommentsAndWhitespace) {
  Result<Query> q = ParseQuery(
      "-- the mayor query\n"
      "Mayor(t | p),\n"
      "  not Lives(p | t)  -- trailing\n");
  ASSERT_TRUE(q.ok()) << q.error();
  EXPECT_EQ(q->NumLiterals(), 2u);
}

TEST(ParserTest, RelationNamedNotParses) {
  // "not" followed by "not(...)" should negate the relation named "nott"?
  // We only guarantee: "not X(...)" negates X. A relation literally named
  // "not" is not supported; it parses as a dangling negation and errors.
  EXPECT_FALSE(ParseQuery("not(x)").ok());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("R(x").ok());
  EXPECT_FALSE(ParseQuery("R()").ok());
  EXPECT_FALSE(ParseQuery("R(x | y) S(y)").ok());       // missing comma
  EXPECT_FALSE(ParseQuery("R(x | y | z)").ok());        // two separators
  EXPECT_FALSE(ParseQuery("R('unterminated)").ok());
  EXPECT_FALSE(ParseQuery("R(x, y), R(y, x)").ok());    // self-join
  EXPECT_FALSE(ParseQuery("R(x), not S(x, y)").ok());   // unsafe
}

TEST(ParserTest, ParsesFacts) {
  Result<std::vector<ParsedFact>> facts = ParseFacts(
      "R(alice | bob)\n"
      "R('alice' | george), S(bob | 'alice')");
  ASSERT_TRUE(facts.ok()) << facts.error();
  ASSERT_EQ(facts->size(), 3u);
  EXPECT_EQ((*facts)[0].relation, "R");
  EXPECT_EQ((*facts)[0].key_len, 1);
  EXPECT_EQ((*facts)[0].values[0], Value::Of("alice"));
  EXPECT_EQ((*facts)[1].values[0], Value::Of("alice"));  // quotes optional
  EXPECT_EQ((*facts)[2].relation, "S");
}

TEST(ParserTest, FactErrors) {
  EXPECT_FALSE(ParseFacts("R(a,").ok());
  EXPECT_FALSE(ParseFacts("(a)").ok());
}

}  // namespace
}  // namespace cqa
