// Unit tests for the live-update delta layer (src/cqa/delta/delta.*):
// validation, copy-on-write epoch construction, O(delta) fingerprint
// maintenance, wire codec strictness — and the service-level contract of
// ShardedSolveService::ApplyDelta (publication, idempotency, footprint-
// scoped cache treatment, per-shard counters). Journal durability and
// crash recovery live in journal_test.cc.

#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cqa/base/interner.h"
#include "cqa/cache/fingerprint.h"
#include "cqa/db/database.h"
#include "cqa/delta/delta.h"
#include "cqa/query/parser.h"
#include "cqa/registry/sharded_service.h"
#include "cqa/serve/net/json.h"
#include "cqa/serve/service.h"

namespace cqa {
namespace {

using std::chrono::milliseconds;

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

Database DbVal(const char* text) {
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return std::move(db.value());
}

DeltaOp Ins(const char* rel, std::vector<std::string> values) {
  DeltaOp op;
  op.insert = true;
  op.relation = rel;
  op.values = std::move(values);
  return op;
}

DeltaOp Del(const char* rel, std::vector<std::string> values) {
  DeltaOp op;
  op.insert = false;
  op.relation = rel;
  op.values = std::move(values);
  return op;
}

FactDelta Delta(std::string id, std::vector<DeltaOp> ops) {
  FactDelta d;
  d.id = std::move(id);
  d.ops = std::move(ops);
  return d;
}

// The ground truth a delta'd epoch must match: the same final fact set
// loaded cold into a fresh instance (fresh interner state is exercised by
// the spelling-based fingerprint, not needed here).
DbFingerprint ScratchFingerprint(const Database& db) {
  Result<Database> rebuilt = Database::FromText(db.ToText());
  EXPECT_TRUE(rebuilt.ok()) << (rebuilt.ok() ? "" : rebuilt.error());
  return FingerprintDatabase(rebuilt.value());
}

constexpr char kBase[] = "R(a | b), R(a | c)\nS(b | a)\nT(x | y)";

// ---------------------------------------------------------------------------
// ApplyDeltaToDatabase

TEST(DeltaApplyTest, InsertsAndDeletesProduceTheExpectedEpoch) {
  Database base = DbVal(kBase);
  const DbFingerprint base_fp = FingerprintDatabase(base);

  Result<DeltaApplyOutcome> out = ApplyDeltaToDatabase(
      base, Delta("d1", {Ins("R", {"d", "e"}), Del("S", {"b", "a"})}));
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_EQ(out->inserted, 1u);
  EXPECT_EQ(out->deleted, 1u);
  EXPECT_EQ(out->touched, (std::vector<std::string>{"R", "S"}));
  EXPECT_EQ(out->db->NumFacts(), 4u);

  // The base epoch is untouched: readers pinned to it keep their view.
  EXPECT_EQ(base.NumFacts(), 4u);
  EXPECT_EQ(FingerprintDatabase(base), base_fp);
  EXPECT_NE(out->fingerprint, base_fp);

  // Incremental fingerprint == loading the final facts from scratch.
  EXPECT_EQ(out->fingerprint, ScratchFingerprint(*out->db));
}

TEST(DeltaApplyTest, ValidationIsAllOrNothing) {
  Database base = DbVal(kBase);
  const DbFingerprint base_fp = FingerprintDatabase(base);

  // Unknown relation: rejected before any op applies, even though the
  // first op alone would have been valid.
  Result<DeltaApplyOutcome> unknown = ApplyDeltaToDatabase(
      base, Delta("d1", {Ins("R", {"q", "q"}), Ins("Nope", {"x"})}));
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.code(), ErrorCode::kUnsupported);

  // Arity mismatch.
  Result<DeltaApplyOutcome> arity =
      ApplyDeltaToDatabase(base, Delta("d2", {Ins("R", {"only-one"})}));
  ASSERT_FALSE(arity.ok());
  EXPECT_EQ(arity.code(), ErrorCode::kUnsupported);

  EXPECT_EQ(FingerprintDatabase(base), base_fp);
  EXPECT_EQ(base.NumFacts(), 4u);
}

TEST(DeltaApplyTest, NoOpMutationsCountZeroButStillTouch) {
  Database base = DbVal(kBase);
  // Duplicate insert and missing delete are both no-ops for the content,
  // but the relations still enter the footprint (the delta asserted facts
  // about them).
  Result<DeltaApplyOutcome> out = ApplyDeltaToDatabase(
      base, Delta("d1", {Ins("R", {"a", "b"}), Del("T", {"no", "such"})}));
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_EQ(out->inserted, 0u);
  EXPECT_EQ(out->deleted, 0u);
  EXPECT_EQ(out->touched, (std::vector<std::string>{"R", "T"}));
  EXPECT_EQ(out->fingerprint, FingerprintDatabase(base));
}

TEST(DeltaApplyTest, OpsApplyInOrderWithinTheBatch) {
  Database base = DbVal(kBase);
  // Insert-then-delete of the same new fact is a no-op batch...
  Result<DeltaApplyOutcome> noop = ApplyDeltaToDatabase(
      base, Delta("d1", {Ins("R", {"z", "z"}), Del("R", {"z", "z"})}));
  ASSERT_TRUE(noop.ok()) << noop.error();
  EXPECT_EQ(noop->fingerprint, FingerprintDatabase(base));
  EXPECT_EQ(noop->db->NumFacts(), base.NumFacts());

  // ...while delete-then-insert reasserts an existing fact, same content.
  Result<DeltaApplyOutcome> reassert = ApplyDeltaToDatabase(
      base, Delta("d2", {Del("S", {"b", "a"}), Ins("S", {"b", "a"})}));
  ASSERT_TRUE(reassert.ok()) << reassert.error();
  EXPECT_EQ(reassert->fingerprint, FingerprintDatabase(base));
}

TEST(DeltaApplyTest, UntouchedRelationsShareStorageWithTheBaseEpoch) {
  Database base = DbVal(kBase);
  base.blocks();  // memoize, as Attach would
  Result<DeltaApplyOutcome> out =
      ApplyDeltaToDatabase(base, Delta("d1", {Ins("R", {"d", "e"})}));
  ASSERT_TRUE(out.ok()) << out.error();

  Symbol s = InternSymbol("S");
  Symbol t = InternSymbol("T");
  Symbol r = InternSymbol("R");
  // Copy-on-write at relation granularity: S and T are physically shared,
  // only R was cloned for the mutation.
  EXPECT_EQ(base.FactsOf(s).data(), out->db->FactsOf(s).data());
  EXPECT_EQ(base.FactsOf(t).data(), out->db->FactsOf(t).data());
  EXPECT_NE(base.FactsOf(r).data(), out->db->FactsOf(r).data());

  // The new epoch's block index is immediately valid (no O(n) rebuild) and
  // agrees with a from-scratch indexing of the same facts.
  Result<Database> rebuilt = Database::FromText(out->db->ToText());
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(out->db->NumBlocks(), rebuilt->NumBlocks());
}

TEST(DeltaApplyTest, BlockIndexStaysConsistentAcrossManyDeltas) {
  Database base = DbVal("R(a | b)");
  std::shared_ptr<const Database> current =
      std::make_shared<const Database>(std::move(base));
  // Grow and shrink blocks repeatedly; every epoch's memoized index must
  // match a cold rebuild (block count is a faithful proxy: it counts
  // key-groups, which any index corruption skews).
  const char* names[] = {"a", "b", "c", "d", "e"};
  int step = 0;
  for (const char* key : names) {
    for (const char* val : names) {
      FactDelta d =
          Delta("step-" + std::to_string(step++), {Ins("R", {key, val})});
      Result<DeltaApplyOutcome> out = ApplyDeltaToDatabase(*current, d);
      ASSERT_TRUE(out.ok()) << out.error();
      current = out->db;
    }
  }
  for (const char* key : names) {
    FactDelta d =
        Delta("step-" + std::to_string(step++), {Del("R", {key, "c"})});
    Result<DeltaApplyOutcome> out = ApplyDeltaToDatabase(*current, d);
    ASSERT_TRUE(out.ok()) << out.error();
    current = out->db;
  }
  Result<Database> rebuilt = Database::FromText(current->ToText());
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(current->NumBlocks(), rebuilt->NumBlocks());
  EXPECT_EQ(current->NumFacts(), rebuilt->NumFacts());
  EXPECT_EQ(FingerprintDatabase(*current), FingerprintDatabase(*rebuilt));
}

TEST(DeltaApplyTest, RejectsOversizedBatches) {
  Database base = DbVal(kBase);
  FactDelta big;
  big.id = "too-big";
  big.ops.resize(kMaxDeltaOps + 1, Ins("R", {"a", "b"}));
  Result<DeltaApplyOutcome> out = ApplyDeltaToDatabase(base, big);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.code(), ErrorCode::kUnsupported);
}

// ---------------------------------------------------------------------------
// Wire codec

TEST(DeltaCodecTest, EncodeDecodeRoundtrip) {
  std::vector<DeltaOp> ops = {Ins("R", {"a", "b"}), Del("S", {"x"}),
                              Ins("T", {"with space", "'quoted'"})};
  Result<std::vector<DeltaOp>> back = DecodeDeltaOps(EncodeDeltaOps(ops));
  ASSERT_TRUE(back.ok()) << back.error();
  ASSERT_EQ(back->size(), ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ((*back)[i].insert, ops[i].insert);
    EXPECT_EQ((*back)[i].relation, ops[i].relation);
    EXPECT_EQ((*back)[i].values, ops[i].values);
  }
}

TEST(DeltaCodecTest, DecodeRejectsHostileShapes) {
  auto reject = [](const char* json) {
    Result<Json> parsed = Json::Parse(json);
    ASSERT_TRUE(parsed.ok()) << json;
    Result<std::vector<DeltaOp>> ops = DecodeDeltaOps(parsed.value());
    EXPECT_FALSE(ops.ok()) << json;
  };
  reject("{}");                                       // not an array
  reject("[42]");                                     // op not an object
  reject("[{\"relation\":\"R\",\"values\":[]}]");     // missing "op"
  reject("[{\"op\":\"upsert\",\"relation\":\"R\",\"values\":[\"a\"]}]");
  reject("[{\"op\":\"insert\",\"values\":[\"a\"]}]"); // missing relation
  reject("[{\"op\":\"insert\",\"relation\":\"R\"}]"); // missing values
  reject("[{\"op\":\"insert\",\"relation\":\"R\",\"values\":[1]}]");
}

// ---------------------------------------------------------------------------
// ShardedSolveService::ApplyDelta

// Submits one solve and waits for its terminal response.
ServeResponse SolveOn(ShardedSolveService& service, const std::string& db,
                      const char* query_text) {
  auto state = std::make_shared<
      std::pair<std::mutex, std::pair<bool, ServeResponse>>>();
  ServeJob job(Q(query_text), nullptr);
  Result<uint64_t> id = service.Submit(db, std::move(job),
                                       [state](const ServeResponse& r) {
                                         std::lock_guard<std::mutex> lock(
                                             state->first);
                                         state->second = {true, r};
                                       });
  EXPECT_TRUE(id.ok()) << (id.ok() ? "" : id.error());
  for (int i = 0; i < 20'000; ++i) {
    {
      std::lock_guard<std::mutex> lock(state->first);
      if (state->second.first) return state->second.second;
    }
    std::this_thread::sleep_for(milliseconds(1));
  }
  ADD_FAILURE() << "terminal response never delivered";
  return ServeResponse{};
}

Verdict VerdictOf(const ServeResponse& r) {
  EXPECT_TRUE(r.result.ok()) << (r.result.ok() ? "" : r.result.error());
  return r.result.ok() ? r.result->verdict : Verdict::kExhausted;
}

ShardedServiceOptions CachedOptions() {
  ShardedServiceOptions options;
  options.shard.workers = 2;
  options.shard.cache_entries = 256;
  options.shard.warm_state = true;
  return options;
}

// On q = R(x | y), not S(y | x): with S(b | a) present every repair keeping
// an R(a | _) fact can be falsified — not certain; deleting S(b | a) makes
// q certain. The delta flips the verdict.
constexpr char kFlipQuery[] = "R(x | y), not S(y | x)";
constexpr char kFlipBase[] = "R(a | b), R(a | c)\nS(b | a)";

TEST(ServiceDeltaTest, ApplyPublishesANewEpochThatFlipsTheVerdict) {
  ShardedSolveService service(CachedOptions());
  ASSERT_TRUE(service.Attach("main", DbVal(kFlipBase)).ok());

  EXPECT_EQ(VerdictOf(SolveOn(service, "main", kFlipQuery)),
            Verdict::kNotCertain);

  Result<DeltaOutcome> out =
      service.ApplyDelta("main", Delta("d1", {Del("S", {"b", "a"})}));
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_TRUE(out->applied);
  EXPECT_EQ(out->epoch, 1u);
  EXPECT_EQ(out->deleted, 1u);

  EXPECT_EQ(VerdictOf(SolveOn(service, "main", kFlipQuery)),
            Verdict::kCertain);

  Result<ServiceStats> stats = service.StatsFor("main");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->epoch, 1u);
  EXPECT_EQ(stats->deltas_applied, 1u);
}

TEST(ServiceDeltaTest, DuplicateDeltaIdsAckIdempotently) {
  ShardedSolveService service(CachedOptions());
  ASSERT_TRUE(service.Attach("main", DbVal(kFlipBase)).ok());

  FactDelta d = Delta("retry-me", {Ins("R", {"n", "n"})});
  Result<DeltaOutcome> first = service.ApplyDelta("main", d);
  ASSERT_TRUE(first.ok()) << first.error();
  EXPECT_TRUE(first->applied);

  // The retry (a client that lost the ack) must not re-apply: same epoch,
  // same fingerprint, applied == false.
  Result<DeltaOutcome> second = service.ApplyDelta("main", d);
  ASSERT_TRUE(second.ok()) << second.error();
  EXPECT_FALSE(second->applied);
  EXPECT_EQ(second->epoch, first->epoch);
  EXPECT_EQ(second->fingerprint, first->fingerprint);

  Result<ServiceStats> stats = service.StatsFor("main");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->epoch, 1u);
}

TEST(ServiceDeltaTest, RejectionsAreTypedAndLeaveTheEpochAlone) {
  ShardedSolveService service(CachedOptions());
  ASSERT_TRUE(service.Attach("main", DbVal(kFlipBase)).ok());

  Result<DeltaOutcome> unknown_db =
      service.ApplyDelta("ghost", Delta("d1", {Ins("R", {"a", "b"})}));
  ASSERT_FALSE(unknown_db.ok());
  EXPECT_EQ(unknown_db.code(), ErrorCode::kDetached);

  Result<DeltaOutcome> bad_ops =
      service.ApplyDelta("main", Delta("d2", {Ins("Nope", {"a"})}));
  ASSERT_FALSE(bad_ops.ok());
  EXPECT_EQ(bad_ops.code(), ErrorCode::kUnsupported);

  Result<DeltaOutcome> no_id = service.ApplyDelta("main", Delta("", {}));
  ASSERT_FALSE(no_id.ok());

  Result<ServiceStats> stats = service.StatsFor("main");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->epoch, 0u);
  EXPECT_EQ(stats->deltas_applied, 0u);
}

TEST(ServiceDeltaTest, DisjointFootprintEntriesKeepServingHits) {
  ShardedSolveService service(CachedOptions());
  ASSERT_TRUE(
      service.Attach("main", DbVal("R(a | b)\nS(b | a)\nU(u | v)")).ok());

  // Warm the cache with a query that never mentions S.
  const char* untouched_query = "U(x | y)";
  SolveOn(service, "main", untouched_query);
  Result<ServiceStats> before = service.StatsFor("main");
  ASSERT_TRUE(before.ok());

  // Delta touches only S: the U-entry must be rekeyed, not dropped.
  Result<DeltaOutcome> out =
      service.ApplyDelta("main", Delta("d1", {Del("S", {"b", "a"})}));
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_GE(out->cache_rekeyed, 1u);

  SolveOn(service, "main", untouched_query);
  Result<ServiceStats> after = service.StatsFor("main");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->cache_hits, before->cache_hits + 1)
      << "the rekeyed entry should have served this hit";
  EXPECT_EQ(after->cache_misses, before->cache_misses)
      << "no re-solve for a query whose footprint the delta missed";
}

TEST(ServiceDeltaTest, IntersectingFootprintEntriesAreInvalidated) {
  ShardedSolveService service(CachedOptions());
  ASSERT_TRUE(service.Attach("main", DbVal(kFlipBase)).ok());

  SolveOn(service, "main", kFlipQuery);  // caches under the old epoch
  Result<DeltaOutcome> out =
      service.ApplyDelta("main", Delta("d1", {Del("S", {"b", "a"})}));
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_GE(out->cache_invalidated, 1u);

  // The re-solve after invalidation answers from the new epoch.
  EXPECT_EQ(VerdictOf(SolveOn(service, "main", kFlipQuery)),
            Verdict::kCertain);
}

}  // namespace
}  // namespace cqa
