#include <gtest/gtest.h>

#include "cqa/certainty/certain_answers.h"
#include "cqa/certainty/naive.h"
#include "cqa/gen/poll.h"
#include "cqa/gen/random_db.h"
#include "cqa/query/parser.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

Database Db(const char* text) {
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return db.value();
}

TEST(CertainAnswersTest, HandCase) {
  // q(x) = P(x | y), ¬N('c' | y): which keys x certainly have a y avoiding
  // every N-value?
  Query q = Q("P(x | y), not N('c' | y)");
  Database db = Db(R"(
    P(k1 | a)
    P(k2 | b), P(k2 | a)
    P(k3 | b)
    N(c | b)
  )");
  // k1: only value a, not blocked => certain.
  // k2: block {a, b}; the repair choosing b has no witness at k2... but a
  //     witness may come from ANOTHER block: q[x->k2] requires P(k2,y);
  //     repair {P(k2,b)}: y=b is blocked => not certain.
  // k3: only value b, blocked => not certain.
  Result<CertainAnswers> answers =
      ComputeCertainAnswers(q, {InternSymbol("x")}, db);
  ASSERT_TRUE(answers.ok()) << answers.error();
  ASSERT_EQ(answers->answers.size(), 1u);
  EXPECT_EQ(answers->answers[0], Tuple{Value::Of("k1")});
  EXPECT_EQ(answers->candidates, 3u);
}

TEST(CertainAnswersTest, MatchesPerCandidateNaive) {
  Query q = Q("P(x | y), not N(x | y)");
  Rng rng(1201);
  RandomDbOptions opts;
  opts.blocks_per_relation = 3;
  opts.domain_size = 4;
  Symbol x = InternSymbol("x");
  for (int trial = 0; trial < 40; ++trial) {
    Database db = GenerateRandomDatabaseFor(q, opts, &rng);
    Result<CertainAnswers> got = ComputeCertainAnswers(q, {x}, db);
    ASSERT_TRUE(got.ok()) << got.error();
    // Ground truth per candidate via naive enumeration.
    std::vector<Tuple> expected;
    std::unordered_map<Value, bool, ValueHash> seen;
    db.ForEachFact(InternSymbol("P"), [&](const Tuple& t) {
      if (!seen.emplace(t[0], true).second) return true;
      Query ground = q.Substituted(x, t[0]);
      if (IsCertainNaive(ground, db).value()) expected.push_back({t[0]});
      return true;
    });
    std::sort(expected.begin(), expected.end(),
              [](const Tuple& a, const Tuple& b) {
                return a[0].name() < b[0].name();
              });
    ASSERT_EQ(got->answers, expected) << db.ToString();
  }
}

TEST(CertainAnswersTest, RewritingPathAgrees) {
  Query q = Q("P(x | y), not N(x | y)");
  Rng rng(1213);
  Symbol x = InternSymbol("x");
  for (int trial = 0; trial < 40; ++trial) {
    Database db = GenerateRandomDatabaseFor(q, {}, &rng);
    Result<CertainAnswers> a = ComputeCertainAnswers(q, {x}, db);
    Result<CertainAnswers> b = CertainAnswersByRewriting(q, {x}, db);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->answers, b->answers) << db.ToString();
  }
}

TEST(CertainAnswersTest, TwoFreeVariables) {
  // q(p, t) = Lives(p | t), ¬Born(p | t): certainly-lives-elsewhere pairs.
  Query q = Q("Lives(p | t), not Born(p | t)");
  Database db = Db(R"(
    Lives(ann | rome)
    Lives(bob | oslo), Lives(bob | kiev)
    Born(ann | oslo)
    Born(bob | oslo)
  )");
  Result<CertainAnswers> answers = ComputeCertainAnswers(
      q, {InternSymbol("p"), InternSymbol("t")}, db);
  ASSERT_TRUE(answers.ok()) << answers.error();
  // (ann, rome) is certain. (bob, oslo): repair keeps Lives(bob,kiev) — not
  // certain; also Born(bob,oslo) blocks it anyway. (bob, kiev): the repair
  // keeping Lives(bob,oslo) has no Lives(bob,kiev) — not certain.
  ASSERT_EQ(answers->answers.size(), 1u);
  EXPECT_EQ(answers->answers[0],
            (Tuple{Value::Of("ann"), Value::Of("rome")}));
}

TEST(CertainAnswersTest, FreeVariableWithoutPositiveOccurrenceFails) {
  Query q = Q("P(x | y), not N(x | y)");
  Schema s;
  s.AddRelationOrDie("P", 2, 1);
  s.AddRelationOrDie("N", 2, 1);
  Database db(s);
  EXPECT_FALSE(ComputeCertainAnswers(q, {InternSymbol("zzz")}, db).ok());
}

TEST(CertainAnswersTest, RewritingWithFreeRejectsHardQuery) {
  // With x free (reified), q1's attack graph... S still attacks R via x?
  // key(R)={x} is now constant-like, so the cycle breaks and q1(x) becomes
  // rewritable; but q1 with free y keeps the cycle? Just assert the calls
  // behave consistently with the classifier on the reified query.
  Query q1 = Q("R(x | y), not S(y | x)");
  Result<FoPtr> with_x = RewriteCertainWithFree(q1, {InternSymbol("x")});
  EXPECT_TRUE(with_x.ok()) << (with_x.ok() ? "" : with_x.error());
  Result<FoPtr> with_none = RewriteCertainWithFree(q1, {});
  EXPECT_FALSE(with_none.ok());
}

TEST(CertainAnswersTest, PollScenario) {
  // Certain answers of qa's person variable on generated poll data: every
  // reported person certainly lives in a town they were not born in and do
  // not like.
  Query qa_free = Q("Lives(p | t), not Born(p | t), not Likes(p, t)");
  Rng rng(1217);
  PollDbOptions opts;
  opts.num_persons = 8;
  opts.num_towns = 3;
  Database db = GeneratePollDatabase(opts, &rng);
  Result<CertainAnswers> answers =
      ComputeCertainAnswers(qa_free, {InternSymbol("p")}, db);
  ASSERT_TRUE(answers.ok()) << answers.error();
  // Validate each reported answer and each rejected candidate by naive.
  std::unordered_map<Value, bool, ValueHash> reported;
  for (const Tuple& t : answers->answers) reported.emplace(t[0], true);
  std::unordered_map<Value, bool, ValueHash> seen;
  db.ForEachFact(InternSymbol("Lives"), [&](const Tuple& t) {
    if (!seen.emplace(t[0], true).second) return true;
    bool expected =
        IsCertainNaive(qa_free.Substituted(InternSymbol("p"), t[0]), db)
            .value();
    EXPECT_EQ(expected, reported.count(t[0]) > 0) << t[0].name();
    return true;
  });
  return;
}

}  // namespace
}  // namespace cqa
