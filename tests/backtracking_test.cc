#include <gtest/gtest.h>

#include "cqa/certainty/backtracking.h"
#include "cqa/certainty/naive.h"
#include "cqa/gen/poll.h"
#include "cqa/gen/random_db.h"
#include "cqa/query/parser.h"
#include "cqa/reductions/bpm.h"
#include "cqa/reductions/q4.h"
#include "cqa/reductions/ufa.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

void CrossValidate(const Query& q, int trials, uint64_t seed,
                   RandomDbOptions db_opts = {}) {
  Rng rng(seed);
  for (int i = 0; i < trials; ++i) {
    Database db = GenerateRandomDatabaseFor(q, db_opts, &rng);
    Result<bool> expected = IsCertainNaive(q, db);
    ASSERT_TRUE(expected.ok());
    Result<bool> got = IsCertainBacktracking(q, db);
    ASSERT_TRUE(got.ok()) << got.error();
    ASSERT_EQ(got.value(), expected.value())
        << "query: " << q.ToString() << "\ndb:\n" << db.ToString();
  }
}

TEST(BacktrackingTest, HandlesCyclicQueries) {
  // The canonical hard queries — the attack graph is cyclic, so the FO
  // solvers refuse them, but backtracking stays exact.
  CrossValidate(MakeQ1(), 300, 211);
  CrossValidate(MakeQ2(), 200, 223);
  CrossValidate(Q("R(x | y), S(y | x)"), 300, 227);  // q0
  CrossValidate(MakeQ4(), 200, 229);
  CrossValidate(Q("P(x, y), not R(x | y), not S(y | x)"), 200, 233);
}

TEST(BacktrackingTest, HandlesAcyclicQueriesToo) {
  CrossValidate(Q("P(x | y), not N('c' | y)"), 200, 239);
  RandomDbOptions small;
  small.blocks_per_relation = 3;
  small.max_block_size = 2;
  CrossValidate(PollQ1(), 200, 241, small);
  CrossValidate(PollQ2(), 150, 251, small);
}

TEST(BacktrackingTest, PrunesComparedToFullEnumeration) {
  // On a database with many blocks irrelevant to an easy certain query, the
  // search should visit far fewer nodes than there are repairs.
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  s.AddRelationOrDie("S", 2, 1);
  Database db(s);
  // 12 R-blocks of size 2 (4096 repairs of R alone), no S facts: q1 is
  // certainly true via any fact (¬S vacuous) => prune at the root.
  for (int k = 0; k < 12; ++k) {
    db.AddFactOrDie("R", {Value::Of("k" + std::to_string(k)), Value::Of("a")});
    db.AddFactOrDie("R", {Value::Of("k" + std::to_string(k)), Value::Of("b")});
  }
  Result<BacktrackingReport> got = SolveCertainBacktracking(MakeQ1(), db);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->certain);
  EXPECT_LE(got->nodes, 4u);
}

TEST(BacktrackingTest, NodeLimitTriggers) {
  // A large inconsistent instance with certainty FALSE forces exploration.
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  s.AddRelationOrDie("S", 2, 1);
  Database db(s);
  for (int k = 0; k < 18; ++k) {
    for (int v = 0; v < 2; ++v) {
      db.AddFactOrDie("R", {Value::Of("k" + std::to_string(k)),
                            Value::Of("v" + std::to_string(v))});
      db.AddFactOrDie("S", {Value::Of("v" + std::to_string(v)),
                            Value::Of("k" + std::to_string(k))});
    }
  }
  BacktrackingOptions opts;
  opts.max_nodes = 10;
  Result<bool> got = IsCertainBacktracking(MakeQ1(), db, opts);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.code(), ErrorCode::kBudgetExhausted);
}

TEST(BacktrackingTest, IgnoresIrrelevantRelations) {
  Result<Database> db = Database::FromText(R"(
    R(a | b)
    Junk(j | 1), Junk(j | 2), Junk(j | 3), Junk(j | 4)
  )");
  ASSERT_TRUE(db.ok());
  Result<BacktrackingReport> got =
      SolveCertainBacktracking(Q("R(x | y)"), db.value());
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->certain);
  // Junk blocks are not branched on.
  EXPECT_LE(got->nodes, 2u);
}

}  // namespace
}  // namespace cqa
