#include <gtest/gtest.h>

#include <numeric>

#include "cqa/base/rng.h"
#include "cqa/matching/covering.h"
#include "cqa/matching/hall.h"
#include "cqa/matching/hopcroft_karp.h"

namespace cqa {
namespace {

// Brute-force maximum matching by trying all subsets of left→right maps.
int BruteForceMaxMatching(const BipartiteGraph& g) {
  int best = 0;
  std::vector<int> assign(static_cast<size_t>(g.num_left()), -1);
  std::vector<bool> used(static_cast<size_t>(g.num_right()), false);
  std::function<void(int, int)> rec = [&](int l, int size) {
    best = std::max(best, size);
    if (l == g.num_left()) return;
    rec(l + 1, size);  // leave l unmatched
    for (int r : g.Neighbors(l)) {
      if (!used[static_cast<size_t>(r)]) {
        used[static_cast<size_t>(r)] = true;
        rec(l + 1, size + 1);
        used[static_cast<size_t>(r)] = false;
      }
    }
  };
  rec(0, 0);
  return best;
}

BipartiteGraph RandomGraph(Rng* rng, int nl, int nr, double p) {
  BipartiteGraph g(nl, nr);
  for (int l = 0; l < nl; ++l) {
    for (int r = 0; r < nr; ++r) {
      if (rng->Chance(p)) g.AddEdge(l, r);
    }
  }
  return g;
}

TEST(HopcroftKarpTest, SmallHandCases) {
  BipartiteGraph g(2, 2);
  g.AddEdge(0, 0);
  g.AddEdge(1, 0);
  EXPECT_EQ(MaxMatching(g).size, 1);
  EXPECT_FALSE(HasPerfectMatching(g));
  g.AddEdge(1, 1);
  EXPECT_EQ(MaxMatching(g).size, 2);
  EXPECT_TRUE(HasPerfectMatching(g));
}

TEST(HopcroftKarpTest, EmptyGraph) {
  BipartiteGraph g(0, 0);
  EXPECT_EQ(MaxMatching(g).size, 0);
  EXPECT_TRUE(HasPerfectMatching(g));  // vacuously
  BipartiteGraph g2(3, 3);
  EXPECT_EQ(MaxMatching(g2).size, 0);
  EXPECT_FALSE(HasLeftPerfectMatching(g2));
}

TEST(HopcroftKarpTest, MatchesBruteForceOnRandomGraphs) {
  Rng rng(307);
  for (int trial = 0; trial < 300; ++trial) {
    int nl = static_cast<int>(rng.Range(0, 6));
    int nr = static_cast<int>(rng.Range(0, 6));
    BipartiteGraph g = RandomGraph(&rng, nl, nr, 0.4);
    Matching m = MaxMatching(g);
    EXPECT_EQ(m.size, BruteForceMaxMatching(g));
    // The returned pairing is a valid matching.
    int count = 0;
    for (int l = 0; l < nl; ++l) {
      int r = m.match_left[static_cast<size_t>(l)];
      if (r >= 0) {
        ++count;
        EXPECT_EQ(m.match_right[static_cast<size_t>(r)], l);
        const auto& nbrs = g.Neighbors(l);
        EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), r), nbrs.end());
      }
    }
    EXPECT_EQ(count, m.size);
  }
}

TEST(HallTest, ViolatorWitnessesDeficiency) {
  Rng rng(311);
  for (int trial = 0; trial < 200; ++trial) {
    int nl = static_cast<int>(rng.Range(1, 6));
    int nr = static_cast<int>(rng.Range(0, 6));
    BipartiteGraph g = RandomGraph(&rng, nl, nr, 0.35);
    std::optional<std::vector<int>> violator = FindHallViolator(g);
    EXPECT_EQ(violator.has_value(), !HallConditionHolds(g));
    if (violator.has_value()) {
      // |N(S)| < |S| must hold for the returned S.
      std::vector<bool> nbr(static_cast<size_t>(g.num_right()), false);
      for (int l : *violator) {
        for (int r : g.Neighbors(l)) nbr[static_cast<size_t>(r)] = true;
      }
      size_t n_count =
          static_cast<size_t>(std::count(nbr.begin(), nbr.end(), true));
      EXPECT_LT(n_count, violator->size());
    }
  }
}

TEST(SCoveringTest, HandCases) {
  // Example 1.2 shape: 3 elements, 3 sets.
  EXPECT_TRUE(SolveSCovering({3, {{0}, {1}, {2}}}).has_value());
  EXPECT_FALSE(SolveSCovering({3, {{0, 1, 2}, {}, {}}}).has_value());
  EXPECT_TRUE(SolveSCovering({0, {{}, {}}}).has_value());  // empty S
  EXPECT_FALSE(SolveSCovering({1, {}}).has_value());
  std::optional<SCoveringSolution> sol =
      SolveSCovering({2, {{0, 1}, {0, 1}, {}}});
  ASSERT_TRUE(sol.has_value());
  EXPECT_NE(sol->assigned_set[0], sol->assigned_set[1]);  // injective
}

TEST(SCoveringTest, SolutionIsValidOnRandomInstances) {
  Rng rng(313);
  for (int trial = 0; trial < 200; ++trial) {
    SCoveringInstance inst;
    inst.num_elements = static_cast<int>(rng.Range(0, 5));
    int ell = static_cast<int>(rng.Range(0, 5));
    for (int t = 0; t < ell; ++t) {
      std::vector<int> set;
      for (int a = 0; a < inst.num_elements; ++a) {
        if (rng.Chance(0.45)) set.push_back(a);
      }
      inst.sets.push_back(std::move(set));
    }
    std::optional<SCoveringSolution> sol = SolveSCovering(inst);
    if (sol.has_value()) {
      std::vector<bool> used(inst.sets.size(), false);
      for (int a = 0; a < inst.num_elements; ++a) {
        int t = sol->assigned_set[static_cast<size_t>(a)];
        ASSERT_GE(t, 0);
        EXPECT_FALSE(used[static_cast<size_t>(t)]);  // at most one per set
        used[static_cast<size_t>(t)] = true;
        const auto& set = inst.sets[static_cast<size_t>(t)];
        EXPECT_NE(std::find(set.begin(), set.end(), a), set.end());
      }
    }
  }
}

}  // namespace
}  // namespace cqa
