#include <gtest/gtest.h>

#include "cqa/certainty/naive.h"
#include "cqa/gen/poll.h"
#include "cqa/gen/random_db.h"
#include "cqa/query/parser.h"
#include "cqa/reductions/bpm.h"
#include "cqa/reductions/hall_covering.h"
#include "cqa/rewriting/algorithm1.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

Database Db(const char* text) {
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return db.value();
}

void CrossValidate(const Query& q, int trials, uint64_t seed,
                   RandomDbOptions db_opts = {}) {
  Rng rng(seed);
  for (int i = 0; i < trials; ++i) {
    Database db = GenerateRandomDatabaseFor(q, db_opts, &rng);
    Result<bool> expected = IsCertainNaive(q, db);
    ASSERT_TRUE(expected.ok());
    Result<bool> got = IsCertainAlgorithm1(q, db);
    ASSERT_TRUE(got.ok()) << got.error();
    ASSERT_EQ(got.value(), expected.value())
        << "query: " << q.ToString() << "\ndb:\n" << db.ToString();
  }
}

TEST(Algorithm1Test, RejectsOutsideFoFragment) {
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  Database db(s);
  EXPECT_FALSE(IsCertainAlgorithm1(MakeQ1(), db).ok());
  EXPECT_FALSE(
      IsCertainAlgorithm1(Q("X(x), Y(y), not R(x | y), not S(y | x)"), db)
          .ok());
}

TEST(Algorithm1Test, Q3HandCases) {
  Query q3 = Q("P(x | y), not N('c' | y)");
  EXPECT_TRUE(IsCertainAlgorithm1(q3, Db("P(k1 | a)\nP(k2 | b)\nN(c | b)"))
                  .value());
  EXPECT_FALSE(
      IsCertainAlgorithm1(q3, Db("P(k1 | b), P(k1 | a)\nN(c | b)")).value());
  EXPECT_FALSE(IsCertainAlgorithm1(q3, Db("N(c | b)")).value());
  EXPECT_TRUE(IsCertainAlgorithm1(q3, Db("P(k1 | b)\nN(d | b)")).value());
}

TEST(Algorithm1Test, CrossValidatesOnNamedQueries) {
  CrossValidate(Q("P(x | y), not N('c' | y)"), 300, 101);
  CrossValidate(Q("R(x | y), S(y | z)"), 300, 103);
  CrossValidate(Q("P(x | y), not N(x | y)"), 300, 107);
  CrossValidate(Q("P(y), not N('c' | 'a', y, y)"), 200, 109);
  RandomDbOptions small;
  small.blocks_per_relation = 3;
  small.max_block_size = 2;
  small.domain_size = 4;
  CrossValidate(PollQa(), 200, 113, small);
  CrossValidate(PollQb(), 200, 127, small);
}

TEST(Algorithm1Test, HallQueriesAgainstCoveringSolver) {
  Query q = MakeHallQuery(3);
  Rng rng(131);
  for (int i = 0; i < 100; ++i) {
    SCoveringInstance inst;
    inst.num_elements = static_cast<int>(rng.Range(0, 4));
    for (int t = 0; t < 3; ++t) {
      std::vector<int> set;
      for (int a = 0; a < inst.num_elements; ++a) {
        if (rng.Chance(0.5)) set.push_back(a);
      }
      inst.sets.push_back(std::move(set));
    }
    Database db = CoveringToHallDatabase(inst);
    bool coverable = SolveSCovering(inst).has_value();
    Result<bool> certain = IsCertainAlgorithm1(q, db);
    ASSERT_TRUE(certain.ok());
    EXPECT_EQ(certain.value(), !coverable);
  }
}

TEST(Algorithm1Test, MemoizationReducesCalls) {
  Query q = MakeHallQuery(4);
  SCoveringInstance inst{4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}};
  Database db = CoveringToHallDatabase(inst);

  Algorithm1 memo(db, {.memoize = true});
  Result<bool> r1 = memo.IsCertain(q);
  ASSERT_TRUE(r1.ok());
  uint64_t calls_memo = memo.calls();

  Algorithm1 plain(db, {.memoize = false});
  Result<bool> r2 = plain.IsCertain(q);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value(), r2.value());
  EXPECT_LE(calls_memo, plain.calls());
}

TEST(Algorithm1Test, EmptyDatabaseAndEmptyishQueries) {
  Schema s;
  s.AddRelationOrDie("P", 2, 1);
  s.AddRelationOrDie("N", 2, 1);
  Database empty(s);
  EXPECT_FALSE(
      IsCertainAlgorithm1(Q("P(x | y), not N('c' | y)"), empty).value());
  // Fully ground query.
  EXPECT_FALSE(IsCertainAlgorithm1(Q("P('a' | 'b')"), empty).value());
  Database one(s);
  one.AddFactOrDie("P", {Value::Of("a"), Value::Of("b")});
  EXPECT_TRUE(IsCertainAlgorithm1(Q("P('a' | 'b')"), one).value());
  EXPECT_TRUE(
      IsCertainAlgorithm1(Q("P('a' | 'b'), not N('x' | 'y')"), one).value());
}

}  // namespace
}  // namespace cqa
