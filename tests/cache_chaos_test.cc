// Chaos tests for the result cache's concurrent machinery: many threads
// hammering a deliberately tiny cache, single-flight coalescing under
// contention, follower promotion when a flight leader is cancelled
// mid-solve, coalesced followers under shutdown drain, and exactly-once
// terminal frames through the network daemon with caching enabled.
//
// Runs under the tsan preset (`ctest -L concurrency`): the scenarios are
// designed so every outcome set is closed (callbacks counted with atomics,
// verdicts compared against cold solves computed up front) while thread
// interleaving stays genuinely racy.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cqa/certainty/solver.h"
#include "cqa/query/parser.h"
#include "cqa/serve/net/client.h"
#include "cqa/serve/net/daemon.h"
#include "cqa/serve/net/json.h"
#include "cqa/serve/net/protocol.h"
#include "cqa/serve/service.h"
#include "cqa/serve/stats.h"

namespace cqa {
namespace {

using std::chrono::milliseconds;

constexpr milliseconds kIo{15'000};

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

std::shared_ptr<const Database> Db() {
  Result<Database> db = Database::FromText("R(a | b), R(a | c)\nS(b | a)");
  EXPECT_TRUE(db.ok());
  return std::make_shared<const Database>(std::move(db.value()));
}

// Polls until `predicate` holds or ~10s elapse.
template <typename Fn>
bool Eventually(Fn predicate) {
  for (int i = 0; i < 10'000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return predicate();
}

TEST(CacheChaosTest, ManyThreadsThroughAOneEntryCacheStayConsistent) {
  // 8 threads x 40 submissions, 4 distinct queries, through a 1-entry
  // cache: constant eviction pressure, constant coalescing. Every
  // submission must terminate exactly once with the query's exact verdict,
  // and every cache-participating submission is exactly one of hit /
  // coalesced / miss.
  auto db = Db();
  const std::vector<Query> queries = {
      Q("R(x | y)"),
      Q("R(x | y), not S(y | x)"),
      Q("S(x | y)"),
      Q("R(x | y), S(y | x)"),
  };
  std::vector<Verdict> expected;
  for (const Query& q : queries) {
    Result<SolveReport> cold = SolveCertainty(q, *db, SolverMethod::kAuto);
    ASSERT_TRUE(cold.ok()) << cold.error();
    expected.push_back(cold->verdict);
  }

  constexpr int kThreads = 8;
  constexpr int kPerThread = 40;
  constexpr uint64_t kTotal = kThreads * kPerThread;

  ServiceOptions options;
  options.workers = 3;
  options.queue_capacity = kTotal;  // no shedding: we count every terminal
  options.cache_entries = 1;
  options.warm_state = true;
  SolveService service(options);

  std::atomic<uint64_t> terminals{0};
  std::atomic<uint64_t> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        size_t which = static_cast<size_t>(t + i) % queries.size();
        Verdict want = expected[which];
        Result<uint64_t> id = service.Submit(
            ServeJob(queries[which], db), [&, want](const ServeResponse& r) {
              if (r.state != RequestState::kCompleted || !r.result.ok() ||
                  r.result->verdict != want) {
                ++wrong;
              }
              ++terminals;
            });
        EXPECT_TRUE(id.ok()) << (id.ok() ? "" : id.error());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_TRUE(Eventually([&] { return terminals.load() == kTotal; }))
      << "lost terminals: " << terminals.load() << "/" << kTotal;
  EXPECT_EQ(wrong.load(), 0u) << "cached path diverged from the cold verdict";

  ServiceStats s = service.Stats();
  EXPECT_EQ(s.submitted, kTotal);
  EXPECT_EQ(s.accepted, kTotal);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_EQ(s.cache_hits + s.cache_misses, kTotal)
      << "every participating submission is exactly one lookup, hit or miss";
  EXPECT_LE(s.cache_coalesced, s.cache_misses)
      << "coalesced submissions are the misses that joined a flight";
  EXPECT_GE(s.cache_misses, queries.size())
      << "four keys cannot fit one entry without missing";
  EXPECT_LE(s.cache_entries, 1u);
  EXPECT_TRUE(service.Shutdown(milliseconds(10'000)));
}

TEST(CacheChaosTest, CancelledFlightLeaderPromotesAFollower) {
  // A slow leader (chaos_sleep) occupies the single worker; identical fast
  // submissions coalesce behind it. Cancelling the leader must not strand
  // them: one follower is promoted, re-runs the solve, and its exact
  // verdict settles the rest. No lost wakeups, no duplicate terminals.
  auto db = Db();
  Query q = Q("R(x | y)");
  Result<SolveReport> cold = SolveCertainty(q, *db, SolverMethod::kAuto);
  ASSERT_TRUE(cold.ok());

  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 64;
  options.cache_entries = 16;
  SolveService service(options);

  std::atomic<int> leader_cancelled{0};
  std::atomic<int> follower_completed{0};
  std::atomic<int> follower_wrong{0};

  ServeJob slow(q, db);
  slow.chaos_sleep = milliseconds(60'000);
  Result<uint64_t> leader =
      service.Submit(std::move(slow), [&](const ServeResponse& r) {
        if (r.state == RequestState::kCancelled) ++leader_cancelled;
      });
  ASSERT_TRUE(leader.ok());
  ASSERT_TRUE(Eventually([&] { return service.Stats().inflight == 1u; }))
      << "worker never picked up the slow leader";

  constexpr int kFollowers = 6;
  for (int i = 0; i < kFollowers; ++i) {
    Verdict want = cold->verdict;
    ASSERT_TRUE(service
                    .Submit(ServeJob(q, db),
                            [&, want](const ServeResponse& r) {
                              if (r.state == RequestState::kCompleted &&
                                  r.result.ok() &&
                                  r.result->verdict == want) {
                                ++follower_completed;
                              } else {
                                ++follower_wrong;
                              }
                            })
                    .ok());
  }
  ServiceStats before = service.Stats();
  EXPECT_EQ(before.cache_coalesced, static_cast<uint64_t>(kFollowers))
      << "all followers should have coalesced onto the in-flight leader";

  EXPECT_TRUE(service.Cancel(*leader));
  ASSERT_TRUE(Eventually([&] { return leader_cancelled.load() == 1; }))
      << "cancelled leader never delivered its terminal";
  ASSERT_TRUE(Eventually(
      [&] { return follower_completed.load() == kFollowers; }))
      << "followers stranded after leader cancellation: "
      << follower_completed.load() << "/" << kFollowers << ", wrong "
      << follower_wrong.load();
  EXPECT_EQ(follower_wrong.load(), 0);

  // The promoted follower's solve was exact, so it must have filled the
  // cache: one more identical submission is a synchronous hit.
  uint64_t hits_before = service.Stats().cache_hits;
  std::atomic<bool> hit_done{false};
  ASSERT_TRUE(service
                  .Submit(ServeJob(q, db),
                          [&](const ServeResponse& r) {
                            EXPECT_TRUE(r.result.ok());
                            hit_done.store(true);
                          })
                  .ok());
  EXPECT_TRUE(hit_done.load()) << "cache hits are delivered inside Submit";
  EXPECT_EQ(service.Stats().cache_hits, hits_before + 1);
  EXPECT_TRUE(service.Shutdown(milliseconds(10'000)));
}

TEST(CacheChaosTest, TighterDeadlineSubmissionIsNotParkedBehindALooseLeader) {
  // A deadline-less leader sleeps on worker 1. An identical submission
  // with its own strict timeout must NOT coalesce onto it — parking would
  // silently drop the follower's deadline semantics — so it runs
  // independently on worker 2, terminates while the leader still sleeps,
  // and its exact verdict fills the cache.
  auto db = Db();
  Query q = Q("R(x | y)");
  ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 16;
  options.cache_entries = 16;
  SolveService service(options);

  std::atomic<bool> leader_done{false};
  ServeJob slow(q, db);
  slow.chaos_sleep = milliseconds(60'000);
  ASSERT_TRUE(service
                  .Submit(std::move(slow),
                          [&](const ServeResponse&) { leader_done = true; })
                  .ok());
  ASSERT_TRUE(Eventually([&] { return service.Stats().inflight == 1u; }))
      << "worker never picked up the slow leader";

  std::atomic<bool> urgent_done{false};
  std::atomic<bool> urgent_beat_leader{false};
  ServeJob urgent(q, db);
  urgent.timeout = milliseconds(10'000);  // tighter than "no deadline"
  ASSERT_TRUE(service
                  .Submit(std::move(urgent),
                          [&](const ServeResponse& r) {
                            EXPECT_EQ(r.state, RequestState::kCompleted);
                            EXPECT_TRUE(r.result.ok());
                            urgent_beat_leader = !leader_done.load();
                            urgent_done = true;
                          })
                  .ok());
  ASSERT_TRUE(Eventually([&] { return urgent_done.load(); }))
      << "deadline-carrying submission parked behind the loose leader";
  EXPECT_TRUE(urgent_beat_leader.load());

  ServiceStats s = service.Stats();
  EXPECT_EQ(s.cache_coalesced, 0u)
      << "a tighter deadline must refuse the flight, not join it";
  EXPECT_EQ(s.cache_misses, 2u) << "leader and refused run are plain misses";
  EXPECT_EQ(s.cache_entries, 1u)
      << "the independent run's exact verdict must be stored";

  // Read-your-writes holds for the refused run too: the next identical
  // submission is a synchronous hit even though the leader never finished.
  std::atomic<bool> hit_done{false};
  ASSERT_TRUE(service
                  .Submit(ServeJob(q, db),
                          [&](const ServeResponse& r) {
                            EXPECT_TRUE(r.result.ok());
                            hit_done = true;
                          })
                  .ok());
  EXPECT_TRUE(hit_done.load()) << "cache hits are delivered inside Submit";
  EXPECT_EQ(service.Stats().cache_hits, 1u);

  // Shutdown's drain interrupts the leader's sleep; it terminates
  // cancelled, with no followers to strand.
  service.Shutdown(milliseconds(10'000));
  EXPECT_TRUE(leader_done.load());
}

TEST(CacheChaosTest, ShutdownDrainCancelsCoalescedFollowers) {
  // A sleeping leader with followers coalesced behind it: shutdown's drain
  // interrupts the sleep, the leader terminates cancelled, and the
  // draining settlement path must cancel every follower too — promotion
  // would strand them, since workers never pop again.
  auto db = Db();
  Query q = Q("R(x | y)");
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 16;
  options.cache_entries = 16;
  SolveService service(options);

  std::atomic<int> cancelled{0};
  ServeJob slow(q, db);
  slow.chaos_sleep = milliseconds(60'000);
  ASSERT_TRUE(service
                  .Submit(std::move(slow),
                          [&](const ServeResponse& r) {
                            if (r.state == RequestState::kCancelled)
                              ++cancelled;
                          })
                  .ok());
  ASSERT_TRUE(Eventually([&] { return service.Stats().inflight == 1u; }));
  constexpr int kFollowers = 4;
  for (int i = 0; i < kFollowers; ++i) {
    ASSERT_TRUE(service
                    .Submit(ServeJob(q, db),
                            [&](const ServeResponse& r) {
                              if (r.state == RequestState::kCancelled)
                                ++cancelled;
                            })
                    .ok());
  }
  // The drain interrupts the chaos sleep, so everything reaches a terminal
  // well within the deadline — as *cancellations*, never silently.
  service.Shutdown(milliseconds(10'000));
  EXPECT_EQ(cancelled.load(), 1 + kFollowers)
      << "every coalesced follower must be cancelled by the drain";
  ServiceStats s = service.Stats();
  EXPECT_EQ(s.cancelled, static_cast<uint64_t>(1 + kFollowers));
  EXPECT_EQ(s.completed + s.failed, 0u);
}

TEST(CacheChaosTest, DaemonDeliversExactlyOneTerminalPerSolveWithCache) {
  // Two clients pipeline a mix of identical, alpha-renamed, and bypass
  // solves through a cache-enabled daemon. Every id must receive exactly
  // one terminal frame, every verdict must agree with the cold solve, and
  // the daemon must record cache traffic (hits or coalesced > 0).
  auto db = Db();
  Result<SolveReport> cold =
      SolveCertainty(Q("R(x | y), not S(y | x)"), *db, SolverMethod::kAuto);
  ASSERT_TRUE(cold.ok());
  std::string want = ToString(cold->verdict);

  DaemonOptions options;
  options.service.workers = 2;
  options.service.queue_capacity = 256;  // the pipelined batch never sheds
  options.service.cache_entries = 64;
  options.service.warm_state = true;
  options.connection.max_inflight = 128;
  SolveDaemon daemon(db, options);
  ASSERT_TRUE(daemon.Start().ok());

  constexpr int kClients = 2;
  constexpr int kPerClient = 60;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      NetClient client;
      if (!client.Connect("127.0.0.1", daemon.port(), kIo).ok()) {
        ++failures;
        return;
      }
      // Alternate spellings of the same query (alpha-variants share a
      // cache slot) plus periodic bypass.
      const char* spellings[] = {"R(x | y), not S(y | x)",
                                 "R(u | v), not S(v | u)"};
      for (uint64_t id = 1; id <= kPerClient; ++id) {
        JsonObjectBuilder b;
        b.Set("type", "solve")
            .Set("id", id)
            .Set("query", spellings[(c + id) % 2]);
        if (id % 5 == 0) b.Set("cache", "bypass");
        if (!client.SendFrame(b.Build().Serialize(), kIo).ok()) {
          ++failures;
          return;
        }
      }
      std::map<uint64_t, int> terminals;
      for (int i = 0; i < kPerClient; ++i) {
        Result<WireResponse> r = client.ReadResponse(kIo);
        if (!r.ok()) {
          ++failures;
          return;
        }
        if (!IsTerminalResponseType(r->type)) {
          --i;
          continue;
        }
        ++terminals[r->id];
        if (r->type != "result" || r->verdict != want) ++failures;
      }
      for (const auto& [id, count] : terminals) {
        if (count != 1) ++failures;
      }
      if (terminals.size() != kPerClient) ++failures;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // During the pipelined burst every non-bypass solve may coalesce onto a
  // single in-flight leader (they all share one alpha-canonical slot), so
  // hits alone can legitimately be zero here — but cache traffic cannot.
  ServiceStats s = daemon.service_stats();
  EXPECT_EQ(s.cache_hits + s.cache_misses + s.cache_bypass,
            static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_LE(s.cache_coalesced, s.cache_misses);
  EXPECT_GT(s.cache_hits + s.cache_coalesced, 0u);
  EXPECT_EQ(s.cache_bypass,
            static_cast<uint64_t>(kClients * (kPerClient / 5)));

  // Every client has observed its terminals, so read-your-writes makes the
  // next identical solve a guaranteed hit.
  NetClient confirm;
  ASSERT_TRUE(confirm.Connect("127.0.0.1", daemon.port(), kIo).ok());
  JsonObjectBuilder b;
  b.Set("type", "solve")
      .Set("id", uint64_t{1})
      .Set("query", "R(x | y), not S(y | x)");
  ASSERT_TRUE(confirm.SendFrame(b.Build().Serialize(), kIo).ok());
  for (;;) {
    Result<WireResponse> r = confirm.ReadResponse(kIo);
    ASSERT_TRUE(r.ok());
    if (!IsTerminalResponseType(r->type)) continue;
    EXPECT_EQ(r->type, "result");
    EXPECT_EQ(r->verdict, want);
    break;
  }
  ServiceStats after = daemon.service_stats();
  EXPECT_GT(after.cache_hits, 0u);
  EXPECT_TRUE(daemon.Shutdown(milliseconds(5'000)));
}

}  // namespace
}  // namespace cqa
