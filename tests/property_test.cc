#include <gtest/gtest.h>

#include "cqa/attack/classification.h"
#include "cqa/certainty/backtracking.h"
#include "cqa/certainty/naive.h"
#include "cqa/certainty/rewriting_solver.h"
#include "cqa/certainty/solver.h"
#include "cqa/fo/eval.h"
#include "cqa/gen/random_db.h"
#include "cqa/gen/random_query.h"
#include "cqa/rewriting/algorithm1.h"
#include "cqa/rewriting/rewriter.h"

namespace cqa {
namespace {

// The central end-to-end property of the reproduction: on random
// weakly-guarded queries and random inconsistent databases, every solver
// agrees with the definitional repair-enumeration oracle, and for queries
// classified FO by Theorem 4.3 the consistent first-order rewriting (i) can
// be constructed and (ii) evaluates to the oracle's answer.
class SolverAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverAgreementTest, AllSolversMatchOracle) {
  Rng rng(GetParam());
  RandomQueryOptions qopts;
  RandomDbOptions dopts;
  dopts.blocks_per_relation = 2;
  dopts.max_block_size = 2;
  dopts.domain_size = 4;

  for (int round = 0; round < 8; ++round) {
    Query q = GenerateRandomQuery(qopts, &rng);
    Classification cls = Classify(q);

    std::optional<RewritingSolver> rewriting;
    std::optional<Algorithm1> algo1;
    if (cls.cls == CertaintyClass::kFO) {
      Result<RewritingSolver> rs = RewritingSolver::Create(q);
      ASSERT_TRUE(rs.ok()) << "Theorem 4.3 promises a rewriting for "
                           << q.ToString() << ": " << rs.error();
      rewriting = std::move(rs.value());
    } else {
      // Hard or unknown: the FO constructors must refuse.
      EXPECT_FALSE(RewriteCertain(q).ok()) << q.ToString();
    }

    for (int i = 0; i < 15; ++i) {
      Database db = GenerateRandomDatabaseFor(q, dopts, &rng);
      Result<bool> oracle = IsCertainNaive(q, db);
      ASSERT_TRUE(oracle.ok()) << oracle.error();

      Result<bool> bt = IsCertainBacktracking(q, db);
      ASSERT_TRUE(bt.ok()) << bt.error();
      ASSERT_EQ(bt.value(), oracle.value())
          << "backtracking disagrees on " << q.ToString() << "\n"
          << db.ToString();

      Result<SolveReport> facade = SolveCertainty(q, db);
      if (facade.ok()) {
        EXPECT_EQ(facade->certain, oracle.value())
            << "facade (" << ToString(facade->used) << ") disagrees on "
            << q.ToString();
      }

      if (cls.cls == CertaintyClass::kFO) {
        ASSERT_EQ(rewriting->IsCertain(db), oracle.value())
            << "rewriting disagrees on " << q.ToString() << "\n"
            << rewriting->rewriting().formula->ToString() << "\n"
            << db.ToString();
        Result<bool> a1 = IsCertainAlgorithm1(q, db);
        ASSERT_TRUE(a1.ok()) << a1.error();
        ASSERT_EQ(a1.value(), oracle.value())
            << "Algorithm 1 disagrees on " << q.ToString() << "\n"
            << db.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverAgreementTest,
                         ::testing::Range<uint64_t>(1, 61));

// Rewriting evaluation is consistent across database mutations: adding a
// fact to a negated-atom relation can only flip in controlled ways; here we
// simply re-check oracle agreement after random single-fact removals.
class MutationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationTest, AgreementSurvivesFactRemovals) {
  Rng rng(GetParam() * 7919);
  RandomQueryOptions qopts;
  qopts.max_negative = 2;
  RandomDbOptions dopts;
  dopts.blocks_per_relation = 2;
  dopts.max_block_size = 2;

  Query q = GenerateRandomQuery(qopts, &rng);
  if (Classify(q).cls != CertaintyClass::kFO) return;
  Result<RewritingSolver> rs = RewritingSolver::Create(q);
  ASSERT_TRUE(rs.ok());

  Database db = GenerateRandomDatabaseFor(q, dopts, &rng);
  for (int step = 0; step < 20; ++step) {
    Result<bool> oracle = IsCertainNaive(q, db);
    ASSERT_TRUE(oracle.ok());
    ASSERT_EQ(rs->IsCertain(db), oracle.value()) << q.ToString();
    // Remove one random fact (if any remain).
    std::vector<std::pair<Symbol, Tuple>> all;
    for (const RelationSchema& r : db.schema().relations()) {
      for (const Tuple& t : db.FactsOf(r.name)) all.emplace_back(r.name, t);
    }
    if (all.empty()) break;
    const auto& victim = all[rng.Below(all.size())];
    db.RemoveFact(victim.first, victim.second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace cqa
