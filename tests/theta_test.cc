#include <gtest/gtest.h>

#include "cqa/base/rng.h"
#include "cqa/certainty/backtracking.h"
#include "cqa/certainty/naive.h"
#include "cqa/query/parser.h"
#include "cqa/reductions/theta.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

// Random input database for CERTAINTY(q1) over schema {R[2,1], S[2,1]} with
// typed values (R keys from the 'a' pool, non-keys from the 'b' pool), as
// the Θ construction assumes (typed databases, Section 3).
Database RandomQ1Db(Rng* rng, int m, int n) {
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  s.AddRelationOrDie("S", 2, 1);
  Database db(s);
  auto a = [](uint64_t i) { return Value::Of("ta" + std::to_string(i)); };
  auto b = [](uint64_t i) { return Value::Of("tb" + std::to_string(i)); };
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      if (rng->Chance(0.4)) db.AddFactOrDie("R", {a(i), b(j)});
      if (rng->Chance(0.4)) db.AddFactOrDie("S", {b(j), a(i)});
    }
  }
  return db;
}

// Random input for CERTAINTY(q2) over {T, R, S}, typed likewise.
Database RandomQ2Db(Rng* rng, int m, int n) {
  Schema s;
  s.AddRelationOrDie("T", 2, 2);  // positive atom of q2 is all-key
  s.AddRelationOrDie("R", 2, 1);
  s.AddRelationOrDie("S", 2, 1);
  Database db(s);
  auto a = [](uint64_t i) { return Value::Of("ta" + std::to_string(i)); };
  auto b = [](uint64_t i) { return Value::Of("tb" + std::to_string(i)); };
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      if (rng->Chance(0.4)) db.AddFactOrDie("T", {a(i), b(j)});
      if (rng->Chance(0.4)) db.AddFactOrDie("R", {a(i), b(j)});
      if (rng->Chance(0.4)) db.AddFactOrDie("S", {b(j), a(i)});
    }
  }
  return db;
}

TEST(ThetaTest, RequiresTwoCycle) {
  Query q3 = Q("P(x | y), not N('c' | y)");
  EXPECT_FALSE(ThetaReduction::Create(q3, 0, 1).ok());
}

TEST(ThetaTest, Lemma56OnTargetWithMixedCycle) {
  // Target query with F ∈ q⁺, G ∈ q⁻ in a 2-cycle: take q1 itself renamed —
  // the reduction must be the identity-ish embedding — plus a wider target.
  Query q = Q("F(u | v), not G(v | u)");
  Result<ThetaReduction> theta = ThetaReduction::Create(q, 0, 1);
  ASSERT_TRUE(theta.ok()) << theta.error();

  Query q1 = Q("R(x | y), not S(y | x)");
  Rng rng(601);
  for (int trial = 0; trial < 120; ++trial) {
    Database db = RandomQ1Db(&rng, 3, 3);
    Result<Database> mapped = theta->ApplyLemma56(db);
    ASSERT_TRUE(mapped.ok()) << mapped.error();
    Result<bool> lhs = IsCertainNaive(q1, db);
    Result<bool> rhs = IsCertainNaive(q, mapped.value());
    ASSERT_TRUE(lhs.ok() && rhs.ok());
    ASSERT_EQ(lhs.value(), rhs.value())
        << "input:\n" << db.ToString() << "mapped:\n"
        << mapped->ToString();
  }
}

TEST(ThetaTest, Lemma56OnThreeAtomTarget) {
  // A wider weakly-guarded target with the mixed 2-cycle F ⇝ G ⇝ F:
  // q = {F(u | v), P(u, v, w), ¬G(v | u)} — P guards everything.
  Query q = Q("F(u | v), P(u, v, w), not G(v | u)");
  ASSERT_TRUE(q.IsWeaklyGuarded());
  Result<ThetaReduction> theta = ThetaReduction::Create(q, 0, 2);
  ASSERT_TRUE(theta.ok()) << theta.error();

  Query q1 = Q("R(x | y), not S(y | x)");
  Rng rng(607);
  for (int trial = 0; trial < 120; ++trial) {
    Database db = RandomQ1Db(&rng, 3, 2);
    Result<Database> mapped = theta->ApplyLemma56(db);
    ASSERT_TRUE(mapped.ok()) << mapped.error();
    Result<bool> lhs = IsCertainNaive(q1, db);
    Result<bool> rhs = IsCertainNaive(q, mapped.value());
    ASSERT_TRUE(lhs.ok() && rhs.ok());
    ASSERT_EQ(lhs.value(), rhs.value())
        << "input:\n" << db.ToString() << "mapped:\n" << mapped->ToString();
  }
}

TEST(ThetaTest, Lemma57OnNegatedPair) {
  // Target with both cycle atoms negated: Example 4.1's
  // q = {P(x, y), ¬F(x | y), ¬G(y | x)}.
  Query q = Q("P(x, y), not F(x | y), not G(y | x)");
  Result<ThetaReduction> theta = ThetaReduction::Create(q, 1, 2);
  ASSERT_TRUE(theta.ok()) << theta.error();

  Query q2 = Q("T(x, y), not R(x | y), not S(y | x)");
  Rng rng(613);
  for (int trial = 0; trial < 120; ++trial) {
    Database db = RandomQ2Db(&rng, 2, 3);
    Result<Database> mapped = theta->ApplyLemma57(db);
    ASSERT_TRUE(mapped.ok()) << mapped.error();
    Result<bool> lhs = IsCertainNaive(q2, db);
    Result<bool> rhs = IsCertainNaive(q, mapped.value());
    ASSERT_TRUE(lhs.ok() && rhs.ok());
    ASSERT_EQ(lhs.value(), rhs.value())
        << "input:\n" << db.ToString() << "mapped:\n" << mapped->ToString();
  }
}

TEST(ThetaTest, LemmaDirectionValidation) {
  Query mixed = Q("F(u | v), not G(v | u)");
  Result<ThetaReduction> theta = ThetaReduction::Create(mixed, 0, 1);
  ASSERT_TRUE(theta.ok());
  Schema s;
  s.AddRelationOrDie("T", 2, 2);  // positive atom of q2 is all-key
  s.AddRelationOrDie("R", 2, 1);
  s.AddRelationOrDie("S", 2, 1);
  Database db(s);
  EXPECT_FALSE(theta->ApplyLemma57(db).ok());  // F not negated
}

TEST(ThetaTest, ThetaValueShapes) {
  Query q = Q("F(u | v), not G(v | u)");
  Result<ThetaReduction> theta = ThetaReduction::Create(q, 0, 1);
  ASSERT_TRUE(theta.ok());
  Value a = Value::Of("A");
  Value b = Value::Of("B");
  // In q1's own shape: F|v ⇝ v (value of F), G|u ⇝ u; u = key(F) var gets a,
  // v = key(G) var gets b.
  EXPECT_EQ(theta->Theta(InternSymbol("u"), a, b), a);
  EXPECT_EQ(theta->Theta(InternSymbol("v"), a, b), b);
}

}  // namespace
}  // namespace cqa
