#include <gtest/gtest.h>

#include "cqa/attack/attack_graph.h"
#include "cqa/gen/poll.h"
#include "cqa/gen/random_query.h"
#include "cqa/query/parser.h"

namespace cqa {
namespace {

Symbol S(const char* n) { return InternSymbol(n); }

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

TEST(AttackGraphTest, Example41FourEdges) {
  // q2 = {P(x,y), ¬R(x|y), ¬S(y|x)}: R ⇝ S, S ⇝ R, R ⇝ P, S ⇝ P.
  Query q = Q("P(x, y), not R(x | y), not S(y | x)");
  AttackGraph g(q);
  EXPECT_TRUE(g.Attacks(1, 2));
  EXPECT_TRUE(g.Attacks(2, 1));
  EXPECT_TRUE(g.Attacks(1, 0));
  EXPECT_TRUE(g.Attacks(2, 0));
  EXPECT_FALSE(g.Attacks(0, 1));
  EXPECT_FALSE(g.Attacks(0, 2));
  EXPECT_EQ(g.Edges().size(), 4u);
  EXPECT_FALSE(g.IsAcyclic());
  ASSERT_TRUE(g.FindTwoCycle().has_value());
}

TEST(AttackGraphTest, Example42OneEdge) {
  // q3 = {P(x|y), ¬N(c|y)}: single edge N ⇝ P; P ̸⇝ N because P attacks no
  // variable of N's (constant) primary key.
  Query q = Q("P(x | y), not N('c' | y)");
  AttackGraph g(q);
  EXPECT_TRUE(g.Attacks(1, 0));
  EXPECT_FALSE(g.Attacks(0, 1));
  EXPECT_EQ(g.Edges().size(), 1u);
  EXPECT_TRUE(g.IsAcyclic());
  // N|y ⇝ y and N|y ⇝ x with witness (y, x).
  EXPECT_TRUE(g.AttacksVar(1, S("y")));
  EXPECT_TRUE(g.AttacksVar(1, S("x")));
  std::vector<Symbol> w = g.Witness(1, S("x"));
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], S("y"));
  EXPECT_EQ(w[1], S("x"));
  // P|y ⇝ y but P ̸⇝ x.
  EXPECT_TRUE(g.AttacksVar(0, S("y")));
  EXPECT_FALSE(g.AttacksVar(0, S("x")));
}

TEST(AttackGraphTest, Example46PollQueries) {
  {
    // qa: exactly one attack, Lives ⇝ Likes (via Lives|t ⇝ t).
    AttackGraph g(PollQa());
    auto edges = g.Edges();
    ASSERT_EQ(edges.size(), 1u);
    EXPECT_EQ(PollQa().atom(edges[0].first).relation_name(), "Lives");
    EXPECT_EQ(PollQa().atom(edges[0].second).relation_name(), "Likes");
    EXPECT_TRUE(g.IsAcyclic());
  }
  {
    // qb: two attacks, Born ⇝ Likes and Lives ⇝ Likes.
    AttackGraph g(PollQb());
    auto edges = g.Edges();
    ASSERT_EQ(edges.size(), 2u);
    for (const auto& [from, to] : edges) {
      EXPECT_EQ(PollQb().atom(to).relation_name(), "Likes");
    }
    EXPECT_TRUE(g.IsAcyclic());
  }
  {
    // q1 and q2 are the canonical cyclic examples.
    EXPECT_FALSE(AttackGraph(PollQ1()).IsAcyclic());
    EXPECT_FALSE(AttackGraph(PollQ2()).IsAcyclic());
  }
}

TEST(AttackGraphTest, Q4IsCyclic) {
  Query q4 = Q("X(x), Y(y), not R(x | y), not S(y | x)");
  AttackGraph g(q4);
  EXPECT_FALSE(g.IsAcyclic());
  ASSERT_TRUE(g.FindTwoCycle().has_value());
  auto [i, j] = *g.FindTwoCycle();
  EXPECT_TRUE(q4.IsNegated(i));
  EXPECT_TRUE(q4.IsNegated(j));
}

TEST(AttackGraphTest, HallQueryIsAcyclic) {
  Query q = Q("S(x), not N1('c' | x), not N2('c' | x), not N3('c' | x)");
  AttackGraph g(q);
  EXPECT_TRUE(g.IsAcyclic());
  // All-key S is unattackable... S is attacked by each Ni (x ∈ key(S));
  // but the Ni have constant keys, hence no incoming edges.
  for (size_t i = 1; i <= 3; ++i) {
    EXPECT_TRUE(g.Attacks(i, 0));
    EXPECT_FALSE(g.Attacks(0, i));
  }
}

TEST(AttackGraphTest, AllKeyAtomsNeverAttack) {
  Query q = Q("E(x, y), R(x | y)");
  AttackGraph g(q);
  EXPECT_TRUE(g.reachable_vars(0).empty());
  EXPECT_FALSE(g.Attacks(0, 1));
}

TEST(AttackGraphTest, DiseqAtomsNeverAttack) {
  // Lemma 6.6 sanity: adding a disequality (the ¬E(v̄) all-key atom in the
  // paper's encoding) leaves the attack graph unchanged.
  Query q = Q("R(x | y), not N(x | y)");
  Query q_ne = q.WithDiseq(
      Diseq{{Term::Var("x"), Term::Var("y")},
            {Term::Const("a"), Term::Const("b")}});
  AttackGraph g1(q);
  AttackGraph g2(q_ne);
  EXPECT_EQ(g1.Edges(), g2.Edges());
}

TEST(AttackGraphTest, WitnessAvoidsPlusSet) {
  Query q = Q("R(x | y, z), S(y | z), not N(x | z)");
  AttackGraph g(q);
  for (size_t i = 0; i < q.NumLiterals(); ++i) {
    for (Symbol w : g.reachable_vars(i)) {
      std::vector<Symbol> path = g.Witness(i, w);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.back(), w);
      // Every node of the witness avoids F⊕ and consecutive nodes co-occur
      // in a positive atom.
      for (size_t k = 0; k < path.size(); ++k) {
        EXPECT_FALSE(g.plus_set(i).contains(path[k]));
        if (k > 0) {
          EXPECT_TRUE(q.CoOccurPositively(path[k - 1], path[k]));
        }
      }
      // The first node must be a variable of the atom.
      EXPECT_TRUE(q.atom(i).Vars().contains(path.front()));
    }
  }
}

TEST(AttackGraphTest, UnattackedNonAllKeyExistsWhenAcyclic) {
  Rng rng(123);
  RandomQueryOptions opts;
  for (int trial = 0; trial < 200; ++trial) {
    Query q = GenerateRandomQuery(opts, &rng);
    AttackGraph g(q);
    if (g.IsAcyclic() && q.Alpha() > 0) {
      EXPECT_FALSE(g.UnattackedNonAllKey().empty()) << q.ToString();
    }
  }
}

// Lemma 4.7: if F|w ⇝ u then for every positive P ≠ F containing u, F
// attacks some variable of key(P).
TEST(AttackGraphTest, Lemma47Property) {
  Rng rng(99);
  RandomQueryOptions opts;
  for (int trial = 0; trial < 300; ++trial) {
    Query q = GenerateRandomQuery(opts, &rng);
    AttackGraph g(q);
    for (size_t f = 0; f < q.NumLiterals(); ++f) {
      for (Symbol u : g.reachable_vars(f)) {
        for (size_t p = 0; p < q.NumLiterals(); ++p) {
          if (p == f || q.IsNegated(p)) continue;
          if (!q.atom(p).Vars().contains(u)) continue;
          EXPECT_TRUE(g.reachable_vars(f).Intersects(q.atom(p).KeyVars()))
              << q.ToString();
        }
      }
    }
  }
}

// Lemma 4.8: if F ⇝ P (P positive), then F attacks every u ∈ vars(P)\F⊕.
TEST(AttackGraphTest, Lemma48Property) {
  Rng rng(7);
  RandomQueryOptions opts;
  for (int trial = 0; trial < 300; ++trial) {
    Query q = GenerateRandomQuery(opts, &rng);
    AttackGraph g(q);
    for (size_t f = 0; f < q.NumLiterals(); ++f) {
      for (size_t p = 0; p < q.NumLiterals(); ++p) {
        if (p == f || q.IsNegated(p) || !g.Attacks(f, p)) continue;
        SymbolSet must = q.atom(p).Vars().Minus(g.plus_set(f));
        EXPECT_TRUE(must.IsSubsetOf(g.reachable_vars(f))) << q.ToString();
      }
    }
  }
}

// Lemma 4.9 corollary: under weak guardedness, a cyclic attack graph
// contains a cycle of length two.
TEST(AttackGraphTest, Lemma49TwoCycleProperty) {
  Rng rng(2024);
  RandomQueryOptions opts;
  int cyclic_seen = 0;
  for (int trial = 0; trial < 500; ++trial) {
    Query q = GenerateRandomQuery(opts, &rng);
    AttackGraph g(q);
    if (!g.IsAcyclic()) {
      ++cyclic_seen;
      EXPECT_TRUE(g.FindTwoCycle().has_value()) << q.ToString();
    }
  }
  EXPECT_GT(cyclic_seen, 0);  // the generator does produce cyclic queries
}

// Reified key variables kill outgoing attacks that relied on them.
TEST(AttackGraphTest, ReificationMonotonicity) {
  // Lemma 6.10(1): substituting a constant cannot create new attacks.
  Rng rng(31337);
  RandomQueryOptions opts;
  for (int trial = 0; trial < 200; ++trial) {
    Query q = GenerateRandomQuery(opts, &rng);
    SymbolSet vars = q.Vars();
    if (vars.empty()) continue;
    Symbol x = vars.items()[rng.Below(vars.size())];
    Query qc = q.Substituted(x, Value::Of("subst"));
    AttackGraph g(q);
    AttackGraph gc(qc);
    for (size_t i = 0; i < q.NumLiterals(); ++i) {
      for (size_t j = 0; j < q.NumLiterals(); ++j) {
        if (i == j) continue;
        if (gc.Attacks(i, j)) {
          EXPECT_TRUE(g.Attacks(i, j))
              << q.ToString() << " with " << SymbolName(x) << " -> 'subst'";
        }
      }
    }
  }
}

}  // namespace
}  // namespace cqa
