// Chaos tests for the network daemon: client disconnect mid-solve,
// garbage interleaved with valid traffic, and shutdown under load with
// connected clients. All scenarios are deterministic (chaos_sleep gives
// solves a known duration; ephemeral loopback ports avoid collisions) and
// pin down the wire-level lifecycle invariant: every decoded solve frame
// receives exactly one terminal frame for as long as the socket lives, and
// a dead client's outstanding work is cancelled, never leaked.

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cqa/serve/net/client.h"
#include "cqa/serve/net/daemon.h"
#include "cqa/serve/net/json.h"
#include "cqa/serve/net/protocol.h"

namespace cqa {
namespace {

using std::chrono::milliseconds;

constexpr milliseconds kIo{15'000};

std::shared_ptr<const Database> Db() {
  Result<Database> db = Database::FromText("R(a | b), R(a | c)\nS(b | a)");
  EXPECT_TRUE(db.ok());
  return std::make_shared<const Database>(std::move(db.value()));
}

std::string SolveFrame(uint64_t id, uint64_t chaos_sleep_ms = 0) {
  JsonObjectBuilder b;
  b.Set("type", "solve").Set("id", id).Set("query", "R(x | y)");
  if (chaos_sleep_ms > 0) b.Set("chaos_sleep_ms", chaos_sleep_ms);
  return b.Build().Serialize();
}

// Polls until `predicate` holds or ~10s elapse.
template <typename Fn>
bool Eventually(Fn predicate) {
  for (int i = 0; i < 10'000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return predicate();
}

TEST(DaemonChaosTest, ClientDisconnectCancelsItsOutstandingSolves) {
  DaemonOptions options;
  options.service.workers = 2;
  options.connection.max_inflight = 8;
  SolveDaemon daemon(Db(), options);
  ASSERT_TRUE(daemon.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", daemon.port(), kIo).ok());
  // Four slow solves: two running (workers=2), two queued.
  constexpr int kJobs = 4;
  for (uint64_t id = 1; id <= kJobs; ++id) {
    ASSERT_TRUE(
        client.SendFrame(SolveFrame(id, /*chaos_sleep_ms=*/60'000), kIo).ok());
  }
  ASSERT_TRUE(Eventually([&] {
    return daemon.daemon_stats().solves_admitted == kJobs;
  })) << "daemon never admitted the solves";

  client.Close();  // hang up with everything still in flight

  // Disconnect must cancel all four — long before their 60s sleeps could
  // finish on their own.
  ASSERT_TRUE(Eventually([&] {
    return daemon.service_stats().cancelled == kJobs;
  })) << "outstanding solves were not cancelled on disconnect; stats: "
      << daemon.service_stats().ToString();
  ServiceStats stats = daemon.service_stats();
  EXPECT_EQ(stats.cancelled, static_cast<uint64_t>(kJobs));
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_TRUE(daemon.Shutdown(milliseconds(5'000)));
}

TEST(DaemonChaosTest, GarbageInterleavedWithValidTrafficStaysExactlyOnce) {
  DaemonOptions options;
  options.service.workers = 4;
  options.connection.max_consecutive_garbage = 5;
  SolveDaemon daemon(Db(), options);
  ASSERT_TRUE(daemon.Start().ok());

  for (uint64_t seed : {1u, 2u, 3u}) {
    NetClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", daemon.port(), kIo).ok());
    // Interleave: garbage, valid, garbage, valid... consecutive garbage
    // never reaches the limit, so the connection must survive throughout.
    constexpr uint64_t kSolves = 10;
    uint64_t sent_garbage = 0;
    for (uint64_t id = 1; id <= kSolves; ++id) {
      std::string junk = (id + seed) % 3 == 0
                             ? "\"dangling"
                             : std::string("{\"unclosed\":") +
                                   std::to_string(id * seed);
      ASSERT_TRUE(client.SendFrame(junk, kIo).ok());
      ++sent_garbage;
      ASSERT_TRUE(client.SendFrame(SolveFrame(id), kIo).ok());
    }
    // Exactly one terminal frame per solve id and one parse error per junk
    // frame; nothing extra, nothing missing.
    std::map<uint64_t, int> terminals;
    uint64_t parse_errors = 0;
    uint64_t expected = kSolves + sent_garbage;
    for (uint64_t i = 0; i < expected; ++i) {
      Result<WireResponse> r = client.ReadResponse(kIo);
      ASSERT_TRUE(r.ok()) << r.error() << " after " << i << " frames";
      if (r->type == "error" && r->code == "parse") {
        EXPECT_FALSE(r->fatal);
        ++parse_errors;
      } else {
        ASSERT_EQ(r->type, "result");
        ++terminals[r->id];
      }
    }
    EXPECT_EQ(parse_errors, sent_garbage);
    ASSERT_EQ(terminals.size(), kSolves);
    for (const auto& [id, count] : terminals) {
      EXPECT_EQ(count, 1) << "id " << id << " got " << count
                          << " terminal frames";
    }
  }
  DaemonStats stats = daemon.daemon_stats();
  EXPECT_EQ(stats.connections_closed_garbage, 0u);
  EXPECT_EQ(stats.frames_garbage, 30u);
  EXPECT_TRUE(daemon.Shutdown(milliseconds(5'000)));
}

TEST(DaemonChaosTest, ShutdownUnderLoadDeliversTerminalFrameToEveryClient) {
  DaemonOptions options;
  options.service.workers = 2;
  options.service.queue_capacity = 64;
  options.connection.max_inflight = 16;
  SolveDaemon daemon(Db(), options);
  ASSERT_TRUE(daemon.Start().ok());

  constexpr int kClients = 3;
  constexpr uint64_t kJobsPerClient = 4;
  std::vector<std::unique_ptr<NetClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<NetClient>());
    ASSERT_TRUE(
        clients.back()->Connect("127.0.0.1", daemon.port(), kIo).ok());
    for (uint64_t id = 1; id <= kJobsPerClient; ++id) {
      ASSERT_TRUE(clients.back()
                      ->SendFrame(SolveFrame(id, /*chaos_sleep_ms=*/30'000),
                                  kIo)
                      .ok());
    }
  }
  ASSERT_TRUE(Eventually([&] {
    return daemon.daemon_stats().solves_admitted ==
           kClients * kJobsPerClient;
  })) << "daemon never admitted all solves";

  // Shut down with everything still sleeping: the short drain deadline
  // forces cancellation, and every client must still receive exactly one
  // terminal frame per admitted solve before its connection closes.
  std::thread shutdown([&] { daemon.Shutdown(milliseconds(50)); });
  for (int c = 0; c < kClients; ++c) {
    std::map<uint64_t, int> terminals;
    for (uint64_t i = 0; i < kJobsPerClient; ++i) {
      Result<WireResponse> r = clients[c]->ReadResponse(kIo);
      ASSERT_TRUE(r.ok())
          << "client " << c << ": " << r.error() << " after " << i;
      ASSERT_TRUE(IsTerminalResponseType(r->type)) << r->type;
      EXPECT_EQ(r->type, "cancelled");
      ++terminals[r->id];
    }
    ASSERT_EQ(terminals.size(), kJobsPerClient);
    for (const auto& [id, count] : terminals) EXPECT_EQ(count, 1);
    // After the terminal frames, the daemon closes the connection.
    Result<WireResponse> eof = clients[c]->ReadResponse(milliseconds(5'000));
    EXPECT_FALSE(eof.ok()) << "expected EOF, got a " << eof->type << " frame";
  }
  shutdown.join();
  ServiceStats stats = daemon.service_stats();
  EXPECT_EQ(stats.cancelled, kClients * kJobsPerClient);
  EXPECT_EQ(stats.inflight, 0u);
}

TEST(DaemonChaosTest, SolvesDuringDrainAreNeverAdmittedAndNeverSilent) {
  DaemonOptions options;
  options.service.workers = 1;
  SolveDaemon daemon(Db(), options);
  ASSERT_TRUE(daemon.Start().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", daemon.port(), kIo).ok());
  // Park one slow solve so the drain has something to cancel. (Chaos
  // sleeps abort the moment the service drains, so the drain window
  // itself is near-instant — the race below is intentional.)
  ASSERT_TRUE(
      client.SendFrame(SolveFrame(1, /*chaos_sleep_ms=*/30'000), kIo).ok());
  ASSERT_TRUE(Eventually(
      [&] { return daemon.daemon_stats().solves_admitted == 1; }));

  std::thread shutdown([&] { daemon.Shutdown(milliseconds(2'000)); });
  ASSERT_TRUE(Eventually([&] { return daemon.draining(); }));
  // A solve racing the drain must never be admitted into the dying
  // service. The client sees either a typed overloaded error (the reader
  // was still up) or a clean close — never silence, never a crash.
  client.SendFrame(SolveFrame(2), milliseconds(1'000));
  bool saw_overloaded = false;
  bool saw_cancelled = false;
  for (;;) {
    Result<WireResponse> r = client.ReadResponse(milliseconds(5'000));
    if (!r.ok()) break;  // drain finished, connection closed
    if (r->id == 2 && r->type == "error") {
      EXPECT_EQ(r->code, "overloaded");
      saw_overloaded = true;
    }
    if (r->id == 1 && r->type == "cancelled") saw_cancelled = true;
  }
  shutdown.join();
  EXPECT_TRUE(saw_cancelled) << "parked solve must terminate as cancelled";
  // The drain-window solve was either answered with a typed rejection or
  // dropped with the connection — but it never reached the service.
  EXPECT_EQ(daemon.daemon_stats().solves_admitted, 1u);
  ServiceStats stats = daemon.service_stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
  if (saw_overloaded) {
    EXPECT_EQ(daemon.daemon_stats().solves_rejected_overloaded, 1u);
  }
}

}  // namespace
}  // namespace cqa
