#include <gtest/gtest.h>

#include <algorithm>

#include "cqa/fo/sql.h"
#include "cqa/query/parser.h"
#include "cqa/rewriting/rewriter.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

bool BalancedParens(const std::string& s) {
  int depth = 0;
  for (char c : s) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (depth < 0) return false;
  }
  return depth == 0;
}

TEST(SqlTest, SchemaDdlShape) {
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  s.AddRelationOrDie("Likes", 2, 2);
  std::string ddl = SchemaDdl(s);
  EXPECT_NE(ddl.find("CREATE TABLE R (c1 TEXT NOT NULL, c2 TEXT NOT NULL);"),
            std::string::npos);
  EXPECT_NE(ddl.find("-- key: c1..c1"), std::string::npos);
  EXPECT_NE(ddl.find("-- key: c1..c2"), std::string::npos);
}

TEST(SqlTest, AdomViewUnionsEveryColumn) {
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  s.AddRelationOrDie("T", 1, 1);
  std::string view = AdomViewDdl(s);
  EXPECT_NE(view.find("CREATE VIEW cqa_adom(v)"), std::string::npos);
  EXPECT_NE(view.find("SELECT c1 FROM R"), std::string::npos);
  EXPECT_NE(view.find("SELECT c2 FROM R"), std::string::npos);
  EXPECT_NE(view.find("SELECT c1 FROM T"), std::string::npos);
  EXPECT_EQ(std::count(view.begin(), view.end(), '\n'),
            std::count(view.begin(), view.end(), '\n'));  // smoke
}

TEST(SqlTest, AtomTranslation) {
  FoPtr atom = FoAtom(InternSymbol("R"), 1,
                      {Term::Const("a"), Term::Const("b'c")});
  std::string sql = ToSqlCondition(atom);
  EXPECT_NE(sql.find("EXISTS (SELECT 1 FROM R"), std::string::npos);
  EXPECT_NE(sql.find("= 'a'"), std::string::npos);
  // Single quotes escaped by doubling.
  EXPECT_NE(sql.find("'b''c'"), std::string::npos);
  EXPECT_TRUE(BalancedParens(sql));
}

TEST(SqlTest, QuantifiersUseAdom) {
  FoPtr f = FoForall(
      {InternSymbol("z")},
      FoImplies(FoAtom(InternSymbol("R"), 1, {Term::Const("a"), Term::Var("z")}),
                FoAtom(InternSymbol("T"), 1, {Term::Var("z")})));
  std::string sql = ToSqlCondition(f);
  EXPECT_NE(sql.find("NOT EXISTS (SELECT 1 FROM cqa_adom"), std::string::npos);
  EXPECT_TRUE(BalancedParens(sql));
}

TEST(SqlTest, RewritingOfQ3ProducesRunnableLookingSql) {
  Query q3 = Q("P(x | y), not N('c' | y)");
  Result<Rewriting> rw = RewriteCertain(q3);
  ASSERT_TRUE(rw.ok());
  std::string sql = ToSqlQuery(rw->formula);
  EXPECT_EQ(sql.rfind("SELECT CASE WHEN ", 0), 0u);
  EXPECT_NE(sql.find("THEN 1 ELSE 0 END AS certain;"), std::string::npos);
  EXPECT_NE(sql.find("FROM P"), std::string::npos);
  EXPECT_NE(sql.find("FROM N"), std::string::npos);
  EXPECT_TRUE(BalancedParens(sql));
}

TEST(SqlTest, TrueFalseTranslation) {
  EXPECT_EQ(ToSqlCondition(FoTrue()), "(1 = 1)");
  EXPECT_EQ(ToSqlCondition(FoFalse()), "(1 = 0)");
}

}  // namespace
}  // namespace cqa
