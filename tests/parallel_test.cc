// Differential parity suite for component-decomposed parallel solving
// (cqa/parallel/): on every instance the parallel solver — at any pool
// width — must return exactly the sequential engine's verdict. Also pins
// the decomposer's component-count properties, the block-index reuse
// contract across the component split, and the service-level parallel
// accounting counters.

#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cqa/base/rng.h"
#include "cqa/certainty/solver.h"
#include "cqa/db/database.h"
#include "cqa/gen/families.h"
#include "cqa/gen/random_db.h"
#include "cqa/gen/random_query.h"
#include "cqa/parallel/decompose.h"
#include "cqa/parallel/parallel_solver.h"
#include "cqa/query/parser.h"
#include "cqa/serve/service.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

Database Db(const char* text) {
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return std::move(db.value());
}

// Solves sequentially and at the given widths; every exact verdict must
// match. Returns the number of instances actually compared (instances
// where the sequential engine exhausted a safety budget are skipped — the
// parallel budget split legitimately differs in *where* it runs out, only
// verdicts of completed solves are comparable).
int ExpectParity(const Query& q, const Database& db, SolverMethod method,
                 const std::string& label) {
  SolveOptions seq;
  seq.method = method;
  seq.parallelism = 1;
  seq.degrade_to_sampling = false;
  Budget seq_budget = Budget::WithMaxSteps(2'000'000);
  seq.budget = &seq_budget;
  Result<SolveReport> sequential = SolveCertainty(q, db, seq);
  if (!sequential.ok()) return 0;  // budget-limited instance: no oracle
  for (int width : {2, 8}) {
    SolveOptions par = seq;
    Budget par_budget = Budget::WithMaxSteps(8'000'000);
    par.budget = &par_budget;
    par.parallelism = width;
    Result<SolveReport> parallel = SolveCertainty(q, db, par);
    EXPECT_TRUE(parallel.ok())
        << label << " width " << width << ": "
        << (parallel.ok() ? "" : parallel.error());
    if (!parallel.ok()) return 0;
    EXPECT_EQ(parallel->certain, sequential->certain)
        << label << " diverged at width " << width;
    EXPECT_EQ(parallel->verdict, sequential->verdict)
        << label << " diverged at width " << width;
    EXPECT_EQ(parallel->parallelism, width) << label;
  }
  return 1;
}

// ---------------------------------------------------------------------------
// The 1000+-instance differential sweep

TEST(ParallelDifferentialTest, RandomInstancesAgreeAcrossWidths) {
  RandomQueryOptions qopts;
  RandomDbOptions small;
  small.blocks_per_relation = 3;
  small.max_block_size = 2;
  int compared = 0;
  for (uint64_t seed = 1; seed <= 420; ++seed) {
    Rng rng(0x9a11e7 + seed * 0x9e3779b97f4a7c15ull);
    Query q = GenerateRandomQuery(qopts, &rng);
    Database db = GenerateRandomDatabaseFor(q, small, &rng);
    compared += ExpectParity(q, db, SolverMethod::kBacktracking,
                             "random seed " + std::to_string(seed));
    if (HasFailure()) return;  // one diverging instance is enough output
  }
  // The generator families, across sizes and both tail polarities.
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(0xfa111e5 + seed);
    std::vector<Query> family = {
        ChainQuery(2, seed % 2 == 0), ChainQuery(3, seed % 2 == 1),
        CycleQuery(2 + static_cast<int>(seed % 3)),
        StarQuery(1 + static_cast<int>(seed % 4))};
    for (size_t f = 0; f < family.size(); ++f) {
      Database db = GenerateRandomDatabaseFor(family[f], small, &rng);
      compared += ExpectParity(
          family[f], db, SolverMethod::kBacktracking,
          "family " + std::to_string(f) + " seed " + std::to_string(seed));
      if (HasFailure()) return;
    }
  }
  // Adversarial pigeonhole instances (coNP-hard shape, certain) and the
  // naive oracle on a tiny slice of the random stream.
  for (int k = 2; k <= 5; ++k) {
    compared += ExpectParity(PigeonholeCyclicQuery(), PigeonholeDatabase(k),
                             SolverMethod::kBacktracking,
                             "pigeonhole k=" + std::to_string(k));
    if (HasFailure()) return;
  }
  RandomDbOptions tiny;
  tiny.blocks_per_relation = 2;
  tiny.max_block_size = 2;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(0xdead5eed + seed);
    Query q = GenerateRandomQuery(qopts, &rng);
    Database db = GenerateRandomDatabaseFor(q, tiny, &rng);
    compared += ExpectParity(q, db, SolverMethod::kNaive,
                             "naive seed " + std::to_string(seed));
    if (HasFailure()) return;
  }
  // 420 random + 240 family + 4 pigeonhole + 40 naive = 704 instances,
  // each solved at widths {1, 2, 8} = 2112 solves; the sweep must not
  // degenerate into skipping everything via the budget escape hatch.
  EXPECT_GE(compared, 500) << "differential sweep lost its instances";
}

// ---------------------------------------------------------------------------
// Component-count properties of the decomposer

TEST(ParallelDecomposeTest, ValueDisjointSingletonBlocksDecomposeFully) {
  // Five value-disjoint R-blocks with their S mirrors: five components.
  Database db = Db(
      "R('a1' | 'b1'), S('b1' | 'a1'), "
      "R('a2' | 'b2'), S('b2' | 'a2'), "
      "R('a3' | 'b3'), S('b3' | 'a3'), "
      "R('a4' | 'b4'), S('b4' | 'a4'), "
      "R('a5' | 'b5'), S('b5' | 'a5')");
  Query q = Q("R(x | y), not S(y | x)");
  ASSERT_TRUE(DataDecomposable(q));
  std::vector<DataComponent> components = DecomposeData(q, db);
  EXPECT_EQ(components.size(), 5u);
  for (const DataComponent& c : components) {
    EXPECT_EQ(c.blocks, 2u);
    EXPECT_EQ(c.facts, 2u);
  }
  ParallelOptions popts;
  popts.parallelism = 4;
  Result<ParallelReport> report = SolveCertainParallel(q, db, popts);
  ASSERT_TRUE(report.ok()) << report.error();
  EXPECT_EQ(report->components, 5);
  EXPECT_TRUE(report->decomposed);
}

TEST(ParallelDecomposeTest, SharedValuesMergeIntoOneComponent) {
  // Every block shares the value 'h' through S — one component, and a
  // negated relation's blocks participate in value-connectivity.
  Database db = Db(
      "R('a1' | 'h'), S('h' | 'a1'), "
      "R('a2' | 'h'), S('h' | 'a2'), "
      "R('a3' | 'h')");
  Query q = Q("R(x | y), not S(y | x)");
  std::vector<DataComponent> components = DecomposeData(q, db);
  EXPECT_EQ(components.size(), 1u);
}

TEST(ParallelDecomposeTest, QueryJoiningEverythingStaysOneGroup) {
  // Chain-joined positive atoms: the query-level split finds one group.
  QuerySplit joined = SplitQueryConnected(ChainQuery(4, true));
  EXPECT_FALSE(joined.split);
  EXPECT_EQ(joined.subqueries.size(), 1u);
  // Two variable-disjoint groups split; self-join-freeness keeps their
  // relation sets disjoint so the AND rule applies.
  QuerySplit split = SplitQueryConnected(Q("R(x | y), S(u | v)"));
  EXPECT_TRUE(split.split);
  EXPECT_EQ(split.subqueries.size(), 2u);
}

TEST(ParallelDecomposeTest, DisequalitiesAndGroundLiteralsBlockDataSplit) {
  EXPECT_FALSE(DataDecomposable(Q("R(x | y), not S(y | x), x != y")));
  // A ground negated literal can be falsified from any component.
  EXPECT_FALSE(DataDecomposable(Q("R(x | y), not S('c' | 'd')")));
  // Positive literals connected only through a negated atom: unsound OR.
  EXPECT_FALSE(DataDecomposable(Q("R(x | u), S(y | v), not N(x, y)")));
}

// ---------------------------------------------------------------------------
// Block-index reuse across the component split

TEST(ParallelIndexTest, ComponentSplitBuildsEachSubIndexExactlyOnce) {
  // Database copies drop the lazily-built block index by design; the
  // parallel path must not let that turn into a rebuild per task. The
  // decomposer forces each sub-database's index once at construction and
  // tasks share the sub-database read-only: total builds = 1 (parent,
  // reused across all widths) + one per component, regardless of pool
  // width or how often the components are re-solved.
  Database db = Db(
      "R('a1' | 'b1'), S('b1' | 'a1'), "
      "R('a2' | 'b2'), S('b2' | 'a2'), "
      "R('a3' | 'b3'), S('b3' | 'a3'), "
      "R('a4' | 'b4'), S('b4' | 'a4')");
  Query q = Q("R(x | y), not S(y | x)");
  db.blocks();  // parent index: built once, here
  uint64_t before = Database::IndexBuildCount();
  ParallelOptions popts;
  popts.parallelism = 8;
  Result<ParallelReport> first = SolveCertainParallel(q, db, popts);
  ASSERT_TRUE(first.ok()) << first.error();
  ASSERT_EQ(first->components, 4);
  uint64_t after_first = Database::IndexBuildCount();
  EXPECT_EQ(after_first - before, 4u)
      << "expected exactly one index build per component sub-database";
  // A second solve decomposes afresh (4 new sub-databases) but must still
  // reuse the parent's index rather than rebuilding it under the hood.
  Result<ParallelReport> second = SolveCertainParallel(q, db, popts);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(Database::IndexBuildCount() - after_first, 4u)
      << "parent index was silently rebuilt on re-solve";
}

// ---------------------------------------------------------------------------
// Service accounting

TEST(ParallelServiceTest, StatsCountParallelSolves) {
  auto db = std::make_shared<const Database>(Db(
      "R('a1' | 'b1'), S('b1' | 'a1'), "
      "R('a2' | 'b2'), S('b2' | 'a2'), "
      "R('a3' | 'b3'), S('b3' | 'a3')"));
  ServiceOptions options;
  options.workers = 2;
  options.parallelism = 4;  // service default; jobs leave theirs at 0
  SolveService service(options);
  std::mutex mu;
  std::vector<ServeResponse> responses;
  for (int i = 0; i < 3; ++i) {
    ServeJob job(Q("R(x | y), not S(y | x)"), db);
    job.method = SolverMethod::kBacktracking;
    ASSERT_TRUE(service
                    .Submit(std::move(job),
                            [&](const ServeResponse& r) {
                              std::lock_guard<std::mutex> lock(mu);
                              responses.push_back(r);
                            })
                    .ok());
  }
  EXPECT_TRUE(service.Shutdown(std::chrono::milliseconds(30'000)));
  ASSERT_EQ(responses.size(), 3u);
  for (const ServeResponse& r : responses) {
    ASSERT_TRUE(r.result.ok()) << r.result.error();
    EXPECT_EQ(r.result->components, 3);
    EXPECT_EQ(r.result->parallelism, 4);
  }
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.parallel_solves, 3u);
  EXPECT_EQ(stats.components_found, 9u);
}

}  // namespace
}  // namespace cqa
