#include <gtest/gtest.h>

#include "cqa/fd/fd.h"
#include "cqa/query/parser.h"

namespace cqa {
namespace {

Symbol S(const char* n) { return InternSymbol(n); }

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

TEST(FdTest, ClosureFixpoint) {
  std::vector<Fd> fds = {
      {SymbolSet{S("a")}, SymbolSet{S("b")}},
      {SymbolSet{S("b")}, SymbolSet{S("c")}},
      {SymbolSet{S("c"), S("d")}, SymbolSet{S("e")}},
  };
  SymbolSet closure = FdClosure(fds, SymbolSet{S("a")});
  EXPECT_EQ(closure, (SymbolSet{S("a"), S("b"), S("c")}));
  closure = FdClosure(fds, SymbolSet{S("a"), S("d")});
  EXPECT_EQ(closure, (SymbolSet{S("a"), S("b"), S("c"), S("d"), S("e")}));
  EXPECT_TRUE(FdImplies(fds, SymbolSet{S("a")}, SymbolSet{S("c")}));
  EXPECT_FALSE(FdImplies(fds, SymbolSet{S("a")}, SymbolSet{S("e")}));
}

TEST(FdTest, EmptyFdSetClosureIsIdentity) {
  SymbolSet start{S("x")};
  EXPECT_EQ(FdClosure({}, start), start);
}

TEST(FdTest, Example41PlusSets) {
  // q2 = {P(x,y) all-key, ¬R(x|y), ¬S(y|x)}: P⊕={x,y}, R⊕={x}, S⊕={y}.
  Query q = Q("P(x, y), not R(x | y), not S(y | x)");
  EXPECT_EQ(PlusSet(q, 0), (SymbolSet{S("x"), S("y")}));
  EXPECT_EQ(PlusSet(q, 1), SymbolSet{S("x")});
  EXPECT_EQ(PlusSet(q, 2), SymbolSet{S("y")});
}

TEST(FdTest, Example42PlusSets) {
  // q3 = {P(x|y), ¬N(c|y)}: P⊕={x}, N⊕={} .
  Query q = Q("P(x | y), not N('c' | y)");
  EXPECT_EQ(PlusSet(q, 0), SymbolSet{S("x")});
  EXPECT_TRUE(PlusSet(q, 1).empty());
}

TEST(FdTest, KeyFdsExcludingSkipsOnlyPositive) {
  Query q = Q("P(x | y), not N('c' | y)");
  // Excluding the negated literal leaves K(q⁺) intact.
  EXPECT_EQ(KeyFdsExcluding(q, 1).size(), 1u);
  EXPECT_EQ(KeyFdsExcluding(q, 0).size(), 0u);
  EXPECT_EQ(KeyFds(q).size(), 1u);
}

TEST(FdTest, ReifiedVariablesActAsConstants) {
  Query q = Q("P(x | y), not N('c' | y)");
  Query qr = q.WithReified(SymbolSet{S("x")});
  // With x reified, P's dependency becomes {} → {y}: closure of N's empty
  // key now contains y.
  EXPECT_EQ(PlusSet(qr, 1), SymbolSet{S("y")});
}

}  // namespace
}  // namespace cqa
