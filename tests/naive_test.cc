#include <gtest/gtest.h>

#include "cqa/certainty/naive.h"
#include "cqa/query/parser.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

Database Db(const char* text) {
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return db.value();
}

TEST(NaiveTest, Figure1GirlsBoys) {
  // Example 1.1: the database of Fig. 1 admits the repair
  // {R(alice,george), R(maria,bob), S(george,alice), S(bob,maria)} which
  // falsifies q1, so q1 is NOT certain.
  Database db = Db(R"(
    R(alice | bob), R(alice | george), R(maria | bob), R(maria | john)
    S(bob | alice), S(bob | maria), S(george | alice), S(george | maria)
  )");
  Result<bool> certain = IsCertainNaive(Q("R(x | y), not S(y | x)"), db);
  ASSERT_TRUE(certain.ok());
  EXPECT_FALSE(certain.value());
}

TEST(NaiveTest, CertainWhenEveryRepairMatches) {
  Database db = Db("R(a | b)\nS(zzz | w)");
  Result<bool> certain = IsCertainNaive(Q("R(x | y), not S(y | x)"), db);
  ASSERT_TRUE(certain.ok());
  EXPECT_TRUE(certain.value());
}

TEST(NaiveTest, ConsistentDatabaseReducesToSatisfaction) {
  Database db = Db("R(a | b)");
  EXPECT_TRUE(IsCertainNaive(Q("R(x | y)"), db).value());
  EXPECT_FALSE(IsCertainNaive(Q("R(x | y), T(y | x)"), db).value());
}

TEST(NaiveTest, TooManyRepairsErrors) {
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  Database db(s);
  for (int k = 0; k < 30; ++k) {
    for (int v = 0; v < 4; ++v) {
      db.AddFactOrDie("R", {Value::Of("k" + std::to_string(k)),
                            Value::Of("v" + std::to_string(v))});
    }
  }
  NaiveOptions opts;
  opts.max_repairs = 1000;
  EXPECT_FALSE(IsCertainNaive(Q("R(x | y)"), db, opts).ok());
}

TEST(NaiveTest, CountSatisfyingRepairs) {
  // R has one block of size 2; S one block of size 2. q1 fails only in the
  // repairs pairing R(a,b) with S(b,a).
  Database db = Db("R(a | b), R(a | c)\nS(b | a), S(b | x)");
  Result<RepairCount> rc =
      CountSatisfyingRepairs(Q("R(x | y), not S(y | x)"), db);
  ASSERT_TRUE(rc.ok());
  EXPECT_EQ(rc->total, 4u);
  EXPECT_EQ(rc->satisfying, 3u);
}

TEST(NaiveTest, EmptyDatabase) {
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  Database db(s);
  EXPECT_FALSE(IsCertainNaive(Q("R(x | y)"), db).value());
}

}  // namespace
}  // namespace cqa
