// Unit tests for the registry subsystem: DatabaseRegistry naming /
// ownership / default semantics, content fingerprints, and the
// ShardedSolveService routing, detach lifecycle, and per-shard stats. The
// centerpiece is the cross-database isolation differential: two attached
// databases that disagree on the same query text must never serve each
// other's verdict, cached or not. Adversarial attach/detach interleavings
// live in registry_chaos_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cqa/gen/families.h"
#include "cqa/query/parser.h"
#include "cqa/registry/database_registry.h"
#include "cqa/registry/sharded_service.h"
#include "cqa/serve/service.h"

namespace cqa {
namespace {

using std::chrono::milliseconds;

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

std::shared_ptr<const Database> Db(const char* text) {
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return std::make_shared<const Database>(std::move(db.value()));
}

// The differential pair: on q = R(x | y), not S(y | x), database A answers
// not-certain (the repair keeping R(a | b) cannot avoid S(b | a)) while
// database B answers certain (its lone S-fact S(z | z) blocks nothing).
constexpr char kDbA[] = "R(a | b), R(a | c)\nS(b | a)";
constexpr char kDbB[] = "R(a | b), R(a | c)\nS(z | z)";
constexpr char kDifferentialQuery[] = "R(x | y), not S(y | x)";

// ---------------------------------------------------------------------------
// DatabaseRegistry

TEST(DatabaseRegistryTest, NamesAreOperatorFacingIdentifiers) {
  EXPECT_TRUE(DatabaseRegistry::ValidName("a"));
  EXPECT_TRUE(DatabaseRegistry::ValidName("prod-2024.v1_copy"));
  EXPECT_TRUE(DatabaseRegistry::ValidName(std::string(64, 'x')));
  EXPECT_FALSE(DatabaseRegistry::ValidName(""));
  EXPECT_FALSE(DatabaseRegistry::ValidName(std::string(65, 'x')));
  EXPECT_FALSE(DatabaseRegistry::ValidName("no/slash"));
  EXPECT_FALSE(DatabaseRegistry::ValidName("no space"));
  EXPECT_FALSE(DatabaseRegistry::ValidName("no\nnewline"));
}

TEST(DatabaseRegistryTest, FirstAttachBecomesDefault) {
  DatabaseRegistry registry;
  EXPECT_EQ(registry.DefaultName(), "");
  ASSERT_TRUE(registry.Attach("a", Db(kDbA)).ok());
  ASSERT_TRUE(registry.Attach("b", Db(kDbB)).ok());
  EXPECT_EQ(registry.DefaultName(), "a");
  EXPECT_EQ(registry.Size(), 2u);

  // Empty-name lookup resolves to the default.
  Result<DatabaseRegistry::Entry> def = registry.Get("");
  ASSERT_TRUE(def.ok()) << def.error();
  EXPECT_EQ(def->name, "a");
  EXPECT_TRUE(def->is_default);
  Result<DatabaseRegistry::Entry> other = registry.Get("b");
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->is_default);

  // List is sorted by name and flags the default.
  std::vector<DatabaseRegistry::Entry> all = registry.List();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].name, "a");
  EXPECT_TRUE(all[0].is_default);
  EXPECT_EQ(all[1].name, "b");
}

TEST(DatabaseRegistryTest, AttachRejectsInvalidAndDuplicateNames) {
  DatabaseRegistry registry;
  ASSERT_TRUE(registry.Attach("a", Db(kDbA)).ok());
  Result<std::shared_ptr<const Database>> dup = registry.Attach("a", Db(kDbB));
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), ErrorCode::kUnsupported);
  Result<std::shared_ptr<const Database>> bad =
      registry.Attach("no/slash", Db(kDbB));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kUnsupported);
  EXPECT_EQ(registry.Size(), 1u) << "failed attaches leave no trace";
}

TEST(DatabaseRegistryTest, DetachReleasesAndVacatesTheDefault) {
  DatabaseRegistry registry;
  ASSERT_TRUE(registry.Attach("a", Db(kDbA)).ok());
  ASSERT_TRUE(registry.Attach("b", Db(kDbB)).ok());

  // Detaching a non-default leaves the default alone.
  ASSERT_TRUE(registry.Detach("b").ok());
  EXPECT_EQ(registry.DefaultName(), "a");

  // A snapshot taken before the detach keeps the instance alive.
  Result<DatabaseRegistry::Entry> held = registry.Get("a");
  ASSERT_TRUE(held.ok());
  Result<std::shared_ptr<const Database>> released = registry.Detach("a");
  ASSERT_TRUE(released.ok());
  EXPECT_EQ(registry.DefaultName(), "") << "default vacated";
  EXPECT_EQ(held->db->NumFacts(), 3u) << "snapshot still valid post-detach";

  Result<DatabaseRegistry::Entry> gone = registry.Get("a");
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.code(), ErrorCode::kDetached);
  Result<DatabaseRegistry::Entry> no_default = registry.Get("");
  ASSERT_FALSE(no_default.ok());
  EXPECT_EQ(no_default.code(), ErrorCode::kDetached);
  Result<std::shared_ptr<const Database>> unknown = registry.Detach("a");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.code(), ErrorCode::kUnsupported);

  // The next attach claims the vacancy.
  ASSERT_TRUE(registry.Attach("c", Db(kDbB)).ok());
  EXPECT_EQ(registry.DefaultName(), "c");
}

TEST(DatabaseRegistryTest, FingerprintsAreContentAddressed) {
  DatabaseRegistry registry;
  ASSERT_TRUE(registry.Attach("a", Db(kDbA)).ok());
  ASSERT_TRUE(registry.Attach("b", Db(kDbB)).ok());
  // Same content under another name and with another fact order: the
  // fingerprint is a function of content, not of spelling or identity.
  ASSERT_TRUE(registry.Attach("a2", Db("S(b | a)\nR(a | c), R(a | b)")).ok());
  DbFingerprint a = registry.Get("a")->fingerprint;
  DbFingerprint b = registry.Get("b")->fingerprint;
  DbFingerprint a2 = registry.Get("a2")->fingerprint;
  EXPECT_TRUE(a == a2);
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a.ToHex().size(), 32u);
}

// ---------------------------------------------------------------------------
// ShardedSolveService

struct Outcome {
  ServeResponse response;
  bool delivered = false;
};

// Submits and waits for the terminal response.
Outcome SolveOn(ShardedSolveService& service, const std::string& db,
                const char* query_text,
                std::string* resolved = nullptr) {
  auto state = std::make_shared<std::pair<std::mutex, Outcome>>();
  ServeJob job(Q(query_text), nullptr);
  Result<uint64_t> id = service.Submit(
      db, std::move(job),
      [state](const ServeResponse& r) {
        std::lock_guard<std::mutex> lock(state->first);
        state->second.response = r;
        state->second.delivered = true;
      },
      resolved);
  if (!id.ok()) {
    Outcome out;
    out.response.result = Result<SolveReport>::Error(id.code(), id.error());
    return out;
  }
  for (int i = 0; i < 20'000; ++i) {
    {
      std::lock_guard<std::mutex> lock(state->first);
      if (state->second.delivered) return state->second;
    }
    std::this_thread::sleep_for(milliseconds(1));
  }
  ADD_FAILURE() << "terminal response never delivered";
  return Outcome{};
}

ShardedServiceOptions CachedOptions() {
  ShardedServiceOptions options;
  options.shard.workers = 2;
  options.shard.cache_entries = 256;
  options.shard.warm_state = true;
  return options;
}

TEST(ShardedServiceTest, CrossDatabaseIsolationDifferential) {
  ShardedSolveService service(CachedOptions());
  ASSERT_TRUE(service.Attach("a", Db(kDbA)).ok());
  ASSERT_TRUE(service.Attach("b", Db(kDbB)).ok());

  // Interleave the same query text across both shards, twice: the second
  // round is answered from each shard's cache, and a hit keyed on the
  // wrong database would surface here as the other shard's verdict.
  for (int round = 0; round < 2; ++round) {
    Outcome on_a = SolveOn(service, "a", kDifferentialQuery);
    ASSERT_TRUE(on_a.delivered);
    ASSERT_TRUE(on_a.response.result.ok()) << on_a.response.result.error();
    EXPECT_EQ(on_a.response.result->verdict, Verdict::kNotCertain)
        << "round " << round;
    Outcome on_b = SolveOn(service, "b", kDifferentialQuery);
    ASSERT_TRUE(on_b.delivered);
    ASSERT_TRUE(on_b.response.result.ok()) << on_b.response.result.error();
    EXPECT_EQ(on_b.response.result->verdict, Verdict::kCertain)
        << "round " << round;
  }
  // The differential exercised the caches (round two hit), not two fresh
  // solves per round.
  Result<ServiceStats> a_stats = service.StatsFor("a");
  Result<ServiceStats> b_stats = service.StatsFor("b");
  ASSERT_TRUE(a_stats.ok());
  ASSERT_TRUE(b_stats.ok());
  EXPECT_EQ(a_stats->cache_hits, 1u);
  EXPECT_EQ(b_stats->cache_hits, 1u);
  EXPECT_EQ(a_stats->cache_misses, 1u);
  EXPECT_EQ(b_stats->cache_misses, 1u);
}

TEST(ShardedServiceTest, EmptyNameResolvesToTheDefaultShard) {
  ShardedSolveService service(CachedOptions());
  ASSERT_TRUE(service.Attach("primary", Db(kDbA)).ok());
  ASSERT_TRUE(service.Attach("other", Db(kDbB)).ok());
  std::string resolved;
  Outcome out = SolveOn(service, "", kDifferentialQuery, &resolved);
  ASSERT_TRUE(out.delivered);
  EXPECT_EQ(resolved, "primary")
      << "submit must report which shard actually served the alias";
  ASSERT_TRUE(out.response.result.ok());
  EXPECT_EQ(out.response.result->verdict, Verdict::kNotCertain);
}

TEST(ShardedServiceTest, SubmitFailsTypedWithoutAnInstance) {
  ShardedSolveService service(CachedOptions());
  ServeJob job(Q(kDifferentialQuery), nullptr);
  Result<uint64_t> no_default =
      service.Submit("", std::move(job), [](const ServeResponse&) {});
  ASSERT_FALSE(no_default.ok());
  EXPECT_EQ(no_default.code(), ErrorCode::kDetached);

  ASSERT_TRUE(service.Attach("a", Db(kDbA)).ok());
  ServeJob job2(Q(kDifferentialQuery), nullptr);
  Result<uint64_t> unknown =
      service.Submit("ghost", std::move(job2), [](const ServeResponse&) {});
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.code(), ErrorCode::kDetached);
}

TEST(ShardedServiceTest, DetachShedsQueuedAndDrainsInflight) {
  ShardedServiceOptions options;
  options.shard.workers = 1;
  options.shard.queue_capacity = 16;
  options.detach_drain = milliseconds(60'000);
  ShardedSolveService service(options);
  ASSERT_TRUE(service.Attach("a", Db(kDbA)).ok());
  // The victim shard holds an adversarial instance: one compute-bound
  // solve occupies its single worker long enough for the detach to land
  // mid-flight (backtracking on pigeonhole-6 runs for >100ms).
  ASSERT_TRUE(
      service.Attach("victim",
                     std::make_shared<const Database>(PigeonholeDatabase(6)))
          .ok());

  std::mutex mu;
  std::vector<ServeResponse> responses;
  auto collect = [&](const ServeResponse& r) {
    std::lock_guard<std::mutex> lock(mu);
    responses.push_back(r);
  };
  ServeJob slow(PigeonholeCyclicQuery(), nullptr);
  slow.method = SolverMethod::kBacktracking;
  ASSERT_TRUE(service.Submit("victim", std::move(slow), collect).ok());
  // Wait until the worker has actually popped it, so the next four are
  // provably queued behind it.
  for (int i = 0; i < 20'000; ++i) {
    Result<ServiceStats> stats = service.StatsFor("victim");
    ASSERT_TRUE(stats.ok());
    if (stats->inflight == 1) break;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  for (int i = 0; i < 4; ++i) {
    ServeJob queued(Q(kDifferentialQuery), nullptr);
    ASSERT_TRUE(service.Submit("victim", std::move(queued), collect).ok());
  }

  Result<DetachOutcome> out = service.Detach("victim");
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_EQ(out->shed, 4u) << "queued work is shed, not drained";
  EXPECT_TRUE(out->drained) << "the in-flight solve finishes in the window";

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(responses.size(), 5u) << "every accepted request got a terminal";
  size_t completed_ok = 0, shed_detached = 0;
  for (const ServeResponse& r : responses) {
    if (r.result.ok()) {
      EXPECT_EQ(r.result->verdict, Verdict::kCertain)
          << "the in-flight solve ran to its real verdict";
      ++completed_ok;
    } else if (r.result.code() == ErrorCode::kDetached) {
      ++shed_detached;
    }
  }
  EXPECT_EQ(completed_ok, 1u) << "exactly the in-flight solve completed";
  EXPECT_EQ(shed_detached, 4u);

  // The shard is gone; its sibling is untouched; the name is reusable.
  ServeJob late(Q(kDifferentialQuery), nullptr);
  Result<uint64_t> gone = service.Submit("victim", std::move(late), collect);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.code(), ErrorCode::kDetached);
  Outcome sibling = SolveOn(service, "a", kDifferentialQuery);
  ASSERT_TRUE(sibling.delivered);
  EXPECT_EQ(sibling.response.result->verdict, Verdict::kNotCertain);
  ASSERT_TRUE(service.Attach("victim", Db(kDbB)).ok());
  Outcome reborn = SolveOn(service, "victim", kDifferentialQuery);
  ASSERT_TRUE(reborn.delivered);
  EXPECT_EQ(reborn.response.result->verdict, Verdict::kCertain);

  // Detach of an unknown (or already detached) name is typed.
  Result<DetachOutcome> unknown = service.Detach("ghost");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.code(), ErrorCode::kUnsupported);
}

TEST(ShardedServiceTest, CancelRoutesThroughTheResolvedName) {
  ShardedServiceOptions options;
  options.shard.workers = 1;
  ShardedSolveService service(options);
  ASSERT_TRUE(service.Attach("a", Db(kDbA)).ok());

  std::atomic<bool> delivered{false};
  std::atomic<int> state{-1};
  ServeJob job(Q(kDifferentialQuery), nullptr);
  job.chaos_sleep = milliseconds(60'000);
  std::string resolved;
  Result<uint64_t> id = service.Submit(
      "", std::move(job),
      [&](const ServeResponse& r) {
        state.store(static_cast<int>(r.state));
        delivered.store(true);
      },
      &resolved);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(resolved, "a");
  EXPECT_FALSE(service.Cancel("ghost", *id)) << "unknown shard cancels nothing";
  EXPECT_TRUE(service.Cancel(resolved, *id));
  for (int i = 0; i < 20'000 && !delivered.load(); ++i) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  ASSERT_TRUE(delivered.load());
  EXPECT_EQ(state.load(), static_cast<int>(RequestState::kCancelled));
  EXPECT_TRUE(service.Shutdown(milliseconds(1'000)));
}

TEST(ShardedServiceTest, ShutdownStopsAttachesAndAggregatesStats) {
  ShardedSolveService service(CachedOptions());
  ASSERT_TRUE(service.Attach("a", Db(kDbA)).ok());
  ASSERT_TRUE(service.Attach("b", Db(kDbB)).ok());
  ASSERT_TRUE(SolveOn(service, "a", kDifferentialQuery).delivered);
  ASSERT_TRUE(SolveOn(service, "b", kDifferentialQuery).delivered);

  ServiceStats total = service.Stats();
  EXPECT_EQ(total.completed, 2u) << "counters sum across shards";
  std::vector<std::pair<std::string, ServiceStats>> per_db =
      service.StatsPerDb();
  ASSERT_EQ(per_db.size(), 2u);
  EXPECT_EQ(per_db[0].first, "a");
  EXPECT_EQ(per_db[1].first, "b");
  EXPECT_EQ(per_db[0].second.completed, 1u);
  EXPECT_EQ(per_db[1].second.completed, 1u);
  ASSERT_FALSE(service.StatsFor("ghost").ok());

  EXPECT_TRUE(service.Shutdown(milliseconds(1'000)));
  Result<DatabaseRegistry::Entry> late = service.Attach("c", Db(kDbA));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.code(), ErrorCode::kOverloaded);
  // Stats stay readable after shutdown (shards are kept, not destroyed).
  EXPECT_EQ(service.Stats().completed, 2u);
}

}  // namespace
}  // namespace cqa
