#include <gtest/gtest.h>

#include "cqa/fo/eval.h"
#include "cqa/fo/simplify.h"
#include "cqa/gen/random_db.h"

namespace cqa {
namespace {

Term V(const char* n) { return Term::Var(n); }
Term C(const char* n) { return Term::Const(n); }
Symbol S(const char* n) { return InternSymbol(n); }

TEST(SimplifyTest, EqualityFolding) {
  EXPECT_EQ(Simplify(FoEquals(C("a"), C("a")))->kind(), FoKind::kTrue);
  EXPECT_EQ(Simplify(FoEquals(C("a"), C("b")))->kind(), FoKind::kFalse);
  EXPECT_EQ(Simplify(FoEquals(V("x"), V("x")))->kind(), FoKind::kTrue);
}

TEST(SimplifyTest, PinnedExistentialEliminated) {
  // ∃y (z = y ∧ R(x, y))  ⇒  R(x, z)
  FoPtr f = FoExists({S("y")}, FoAnd({FoEquals(V("z"), V("y")),
                                      FoAtom(S("R"), 1, {V("x"), V("y")})}));
  FoPtr s = Simplify(f);
  ASSERT_EQ(s->kind(), FoKind::kAtom);
  EXPECT_EQ(s->terms()[1], V("z"));
}

TEST(SimplifyTest, PinnedToConstant) {
  // ∃y (y = 'a' ∧ R(y, x)) ⇒ R('a', x)
  FoPtr f = FoExists({S("y")}, FoAnd({FoEquals(V("y"), C("a")),
                                      FoAtom(S("R"), 1, {V("y"), V("x")})}));
  FoPtr s = Simplify(f);
  ASSERT_EQ(s->kind(), FoKind::kAtom);
  EXPECT_EQ(s->terms()[0], C("a"));
}

TEST(SimplifyTest, ExistsEqualityOnlyBecomesTrue) {
  // ∃y (z = y) ⇒ true.
  FoPtr f = FoExists({S("y")}, FoEquals(V("z"), V("y")));
  EXPECT_EQ(Simplify(f)->kind(), FoKind::kTrue);
}

TEST(SimplifyTest, ForallPremisePinning) {
  // ∀z (R(x,z) ∧ z = 'a' → T(z))  ⇒  R(x,'a') → T('a')
  FoPtr f = FoForall(
      {S("z")},
      FoImplies(FoAnd({FoAtom(S("R"), 1, {V("x"), V("z")}),
                       FoEquals(V("z"), C("a"))}),
                FoAtom(S("T"), 1, {V("z")})));
  FoPtr s = Simplify(f);
  EXPECT_EQ(s->kind(), FoKind::kImplies);
  EXPECT_EQ(s->children()[0]->terms()[1], C("a"));
  EXPECT_EQ(s->children()[1]->terms()[0], C("a"));
}

TEST(SimplifyTest, DeduplicatesConjuncts) {
  FoPtr atom = FoAtom(S("R"), 1, {V("x"), V("y")});
  FoPtr f = FoAnd({atom, FoAtom(S("R"), 1, {V("x"), V("y")})});
  EXPECT_EQ(Simplify(f)->kind(), FoKind::kAtom);
}

TEST(SimplifyTest, SubstituteVarCaptureCheck) {
  // Substituting x := y under ∃y(...x...) would capture: returns nullptr.
  FoPtr f = FoExists({S("y")}, FoAtom(S("R"), 1, {V("x"), V("y")}));
  EXPECT_EQ(SubstituteVar(f, S("x"), V("y")), nullptr);
  // Substituting with a fresh variable is fine.
  FoPtr ok = SubstituteVar(f, S("x"), V("w"));
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->FreeVars().contains(S("w")));
}

TEST(SimplifyTest, PreservesSemanticsOnRandomDatabases) {
  // A moderately nested formula; simplified and original must agree on
  // random databases.
  FoPtr f = FoAnd(
      {FoExists({S("x"), S("y")},
                FoAnd({FoAtom(S("R"), 1, {V("x"), V("y")}),
                       FoEquals(V("y"), V("y"))})),
       FoForall(
           {S("z")},
           FoImplies(FoAtom(S("R"), 1, {C("v0"), V("z")}),
                     FoExists({S("w")},
                              FoAnd({FoEquals(V("w"), V("z")),
                                     FoNot(FoAtom(S("T"), 1,
                                                  {V("w"), C("v1")}))}))))});
  FoPtr s = Simplify(f);
  EXPECT_LE(s->Size(), f->Size());

  Schema schema;
  schema.AddRelationOrDie("R", 2, 1);
  schema.AddRelationOrDie("T", 2, 1);
  Rng rng(5);
  RandomDbOptions opts;
  for (int i = 0; i < 50; ++i) {
    Database db = GenerateRandomDatabase(schema, opts, &rng);
    EXPECT_EQ(EvalFo(f, db), EvalFo(s, db)) << f->ToString();
  }
}

}  // namespace
}  // namespace cqa
