// CRC-32C (Castagnoli) tests: known-answer vectors from RFC 3720 appendix
// B.4, and a hardware/software cross-check — `Crc32c` dispatches to the
// CPU's CRC32 instructions when present, and the two paths must be
// bit-identical on arbitrary buffers, lengths, and alignments (the journal
// and snapshot formats depend on the checksum being stable across
// machines).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "cqa/base/crc32c.h"

namespace cqa {
namespace {

TEST(Crc32cTest, KnownAnswerVectors) {
  // The classic check value for "123456789".
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);

  // RFC 3720 B.4 test patterns (iSCSI CRC32C).
  unsigned char zeros[32];
  std::memset(zeros, 0x00, sizeof(zeros));
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);

  unsigned char ones[32];
  std::memset(ones, 0xFF, sizeof(ones));
  EXPECT_EQ(Crc32c(ones, sizeof(ones)), 0x62A8AB43u);

  unsigned char ascending[32];
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<unsigned char>(i);
  EXPECT_EQ(Crc32c(ascending, sizeof(ascending)), 0x46DD794Eu);

  unsigned char descending[32];
  for (int i = 0; i < 32; ++i) {
    descending[i] = static_cast<unsigned char>(31 - i);
  }
  EXPECT_EQ(Crc32c(descending, sizeof(descending)), 0x113FDB5Cu);

  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
  EXPECT_EQ(Crc32c(std::string_view{}), 0u);
}

TEST(Crc32cTest, SoftwarePathMatchesKnownVectors) {
  using crc32c_internal::Crc32cSoftware;
  EXPECT_EQ(Crc32cSoftware("123456789", 9), 0xE3069283u);
  unsigned char zeros[32];
  std::memset(zeros, 0x00, sizeof(zeros));
  EXPECT_EQ(Crc32cSoftware(zeros, sizeof(zeros)), 0x8A9136AAu);
}

// The dispatched path (hardware when the CPU has it) must agree with the
// portable table path on random buffers of every small length and at every
// alignment within a word — hardware implementations handle the unaligned
// head/tail bytes with byte-width instructions, and that is exactly where
// an off-by-one would hide.
TEST(Crc32cTest, HardwareAndSoftwareAgreeOnRandomBuffers) {
  using crc32c_internal::Crc32cSoftware;
  std::mt19937_64 rng(0xc5c5c5c5ull);
  std::vector<unsigned char> buf(4096 + 64);
  for (auto& b : buf) b = static_cast<unsigned char>(rng());

  // Every length 0..256 at every alignment 0..15.
  for (size_t align = 0; align < 16; ++align) {
    for (size_t len = 0; len <= 256; ++len) {
      const void* p = buf.data() + align;
      ASSERT_EQ(Crc32c(p, len), Crc32cSoftware(p, len))
          << "align " << align << " len " << len;
    }
  }

  // Larger random (offset, length) slices.
  for (int trial = 0; trial < 1000; ++trial) {
    size_t off = rng() % 64;
    size_t len = rng() % 4096;
    const void* p = buf.data() + off;
    ASSERT_EQ(Crc32c(p, len), Crc32cSoftware(p, len))
        << "off " << off << " len " << len;
  }
}

TEST(Crc32cTest, ReportsDispatchPath) {
  // Purely informational (the cross-check above is the real assertion),
  // but exercising the probe ensures it does not crash on any machine.
  const bool hw = crc32c_internal::HaveHardwareCrc32c();
  SUCCEED() << "hardware crc32c: " << (hw ? "yes" : "no");
}

}  // namespace
}  // namespace cqa
