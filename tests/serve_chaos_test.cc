// Chaos harness for the concurrent solve service. Rather than relying on
// wall-clock races, faults are injected deterministically through the
// budget's `fail_after_probes` hook and overload is forced with pigeonhole
// instances whose search space is effectively unbounded. The invariants
// checked here are the serving layer's contract:
//
//   1. Every accepted request reaches EXACTLY one terminal state
//      (completed / cancelled) — never zero, never two.
//   2. Requests refused at admission (shed) never get a callback.
//   3. Shedding kicks in deterministically when the queue is full.
//   4. Shutdown always terminates, even with unbounded work in flight.
//
// Run under the `tsan` preset (ctest -L concurrency) to check the same
// scenarios for data races.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cqa/base/rng.h"
#include "cqa/gen/families.h"
#include "cqa/query/parser.h"
#include "cqa/serve/service.h"

namespace cqa {
namespace {

using std::chrono::milliseconds;

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

// Thread-safe terminal-state ledger keyed by request id.
class Ledger {
 public:
  void Record(const ServeResponse& r) {
    std::lock_guard<std::mutex> lock(mu_);
    ++callbacks_[r.id];
    responses_[r.id] = r;
  }

  // Number of ids that received exactly one callback; EXPECTs on any id
  // that received more than one.
  size_t CheckExactlyOnce() {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, n] : callbacks_) {
      EXPECT_EQ(n, 1) << "request " << id << " completed " << n << " times";
    }
    return callbacks_.size();
  }

  std::map<uint64_t, ServeResponse> Responses() {
    std::lock_guard<std::mutex> lock(mu_);
    return responses_;
  }

 private:
  std::mutex mu_;
  std::map<uint64_t, int> callbacks_;
  std::map<uint64_t, ServeResponse> responses_;
};

// The core chaos scenario: a mixed workload of easy queries, hard-but-
// bounded pigeonhole searches, and fault-injected requests, with random
// cancellations fired from the submitting thread, followed by a draining
// shutdown. Deterministic for a fixed seed.
void RunMixedWorkload(uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  auto easy_db = [] {
    Result<Database> db = Database::FromText("R(a | b), R(a | c)\nS(b | a)");
    EXPECT_TRUE(db.ok());
    return std::make_shared<const Database>(std::move(db.value()));
  }();
  auto hard_db =
      std::make_shared<const Database>(PigeonholeDatabase(9));
  Query certain_q = Q("R(x | y)");
  Query not_certain_q = Q("R(x | y), not S(y | x)");
  Query hard_q = PigeonholeCyclicQuery();

  ServiceOptions options;
  options.workers = 4;
  options.queue_capacity = 16;
  options.max_retries = 2;
  options.backoff.initial = milliseconds(1);
  options.backoff.max_delay = milliseconds(4);
  options.backoff_seed = seed;
  SolveService service(options);

  Ledger ledger;
  Rng rng(seed);
  uint64_t submitted = 0;
  uint64_t shed = 0;
  std::vector<uint64_t> accepted_ids;

  constexpr int kJobs = 120;
  for (int i = 0; i < kJobs; ++i) {
    ServeJob job = [&]() -> ServeJob {
      switch (rng.Next() % 4) {
        case 0:
          return ServeJob(certain_q, easy_db);
        case 1:
          return ServeJob(not_certain_q, easy_db);
        case 2: {
          // Hard but bounded: trips the step limit, degrades to sampling.
          ServeJob j(hard_q, hard_db);
          j.max_steps = 2'000;
          j.max_samples = 50;
          return j;
        }
        default: {
          // Fault-injected: first attempt trips instantly, retry succeeds.
          // Backtracking is forced so the probe (and hence the fault) is
          // guaranteed to fire — kAuto would route this q1-shaped query to
          // the ungoverned matching solver.
          ServeJob j(certain_q, easy_db);
          j.method = SolverMethod::kBacktracking;
          j.degrade_to_sampling = false;
          j.fail_after_probes = 1;
          j.fault_attempts = 1;
          return j;
        }
      }
    }();
    ++submitted;
    Result<uint64_t> id = service.Submit(
        std::move(job), [&ledger](const ServeResponse& r) { ledger.Record(r); });
    if (!id.ok()) {
      EXPECT_EQ(id.code(), ErrorCode::kOverloaded);
      ++shed;
      continue;
    }
    accepted_ids.push_back(id.value());
    // Occasionally cancel a random previously-accepted request.
    if (rng.Next() % 8 == 0) {
      (void)service.Cancel(accepted_ids[rng.Next() % accepted_ids.size()]);
    }
  }

  EXPECT_TRUE(service.Shutdown(milliseconds(60'000)))
      << "mixed workload must drain";

  // Invariant 1+2: exactly the accepted ids have exactly one callback.
  EXPECT_EQ(ledger.CheckExactlyOnce(), accepted_ids.size());

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, submitted);
  EXPECT_EQ(stats.accepted + stats.shed, stats.submitted);
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.completed + stats.failed + stats.cancelled, stats.accepted);
  EXPECT_EQ(stats.inflight, 0u);

  // Cross-check the ledger against the aggregate counters, and spot-check
  // that non-cancelled easy queries produced correct verdicts.
  uint64_t completed = 0, cancelled = 0, failed = 0;
  for (const auto& [id, r] : ledger.Responses()) {
    if (r.state == RequestState::kCancelled) {
      ++cancelled;
      EXPECT_FALSE(r.result.ok());
      EXPECT_EQ(r.result.code(), ErrorCode::kCancelled);
    } else if (r.result.ok()) {
      ++completed;
    } else {
      ++failed;
    }
  }
  EXPECT_EQ(completed, stats.completed);
  EXPECT_EQ(cancelled, stats.cancelled);
  EXPECT_EQ(failed, stats.failed);
}

TEST(ServeChaosTest, EveryRequestReachesExactlyOneTerminalState) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) RunMixedWorkload(seed);
}

TEST(ServeChaosTest, SheddingKicksInUnderOverload) {
  // One worker, tiny queue. A blocker with an astronomically large search
  // space (k=13 pigeonhole, no degradation, no step limit — only
  // cancellable) pins the worker; the queue then fills deterministically
  // and further submissions must be shed with the typed kOverloaded error.
  auto hard_db =
      std::make_shared<const Database>(PigeonholeDatabase(13));
  auto easy_db = [] {
    Result<Database> db = Database::FromText("R(a | b)");
    EXPECT_TRUE(db.ok());
    return std::make_shared<const Database>(std::move(db.value()));
  }();

  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  SolveService service(options);

  Ledger ledger;
  auto cb = [&ledger](const ServeResponse& r) { ledger.Record(r); };

  ServeJob blocker(PigeonholeCyclicQuery(), hard_db);
  blocker.degrade_to_sampling = false;
  Result<uint64_t> blocker_id = service.Submit(std::move(blocker), cb);
  ASSERT_TRUE(blocker_id.ok());

  // Wait (bounded) until the blocker occupies the worker, so queue slots
  // are genuinely free for the filler jobs.
  for (int i = 0; i < 10'000 && service.Stats().inflight == 0; ++i) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  ASSERT_EQ(service.Stats().inflight, 1u) << "blocker never started running";

  // Fill the queue to capacity...
  std::vector<uint64_t> queued;
  for (size_t i = 0; i < options.queue_capacity; ++i) {
    Result<uint64_t> id = service.Submit(ServeJob(Q("R(x | y)"), easy_db), cb);
    ASSERT_TRUE(id.ok()) << "slot " << i << ": " << id.error();
    queued.push_back(id.value());
  }
  // ...and verify deterministic shedding beyond it.
  for (int i = 0; i < 5; ++i) {
    Result<uint64_t> id = service.Submit(ServeJob(Q("R(x | y)"), easy_db), cb);
    ASSERT_FALSE(id.ok()) << "queue full: submission must be shed";
    EXPECT_EQ(id.code(), ErrorCode::kOverloaded);
  }
  ServiceStats mid = service.Stats();
  EXPECT_EQ(mid.shed, 5u);
  EXPECT_EQ(mid.accepted, 1u + options.queue_capacity);

  // Unblock: cancel the unbounded search, then drain.
  EXPECT_TRUE(service.Cancel(blocker_id.value()));
  EXPECT_TRUE(service.Shutdown(milliseconds(60'000)));

  EXPECT_EQ(ledger.CheckExactlyOnce(), 1u + queued.size());
  std::map<uint64_t, ServeResponse> responses = ledger.Responses();
  EXPECT_EQ(responses[blocker_id.value()].state, RequestState::kCancelled);
  for (uint64_t id : queued) {
    ASSERT_TRUE(responses.count(id));
    EXPECT_EQ(responses[id].state, RequestState::kCompleted);
    ASSERT_TRUE(responses[id].result.ok()) << responses[id].result.error();
    EXPECT_EQ(responses[id].result->verdict, Verdict::kCertain);
  }
  EXPECT_EQ(service.Stats().inflight, 0u);
}

TEST(ServeChaosTest, ShutdownAlwaysTerminatesUnderLoad) {
  // Immediate shutdown with a tiny drain deadline while unbounded searches
  // are running: Shutdown must cancel the stragglers and return (reporting
  // the missed deadline), and every accepted request still terminates.
  auto hard_db =
      std::make_shared<const Database>(PigeonholeDatabase(13));
  auto easy_db = [] {
    Result<Database> db = Database::FromText("R(a | b)");
    EXPECT_TRUE(db.ok());
    return std::make_shared<const Database>(std::move(db.value()));
  }();

  ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 64;
  SolveService service(options);

  Ledger ledger;
  auto cb = [&ledger](const ServeResponse& r) { ledger.Record(r); };

  uint64_t accepted = 0;
  for (int i = 0; i < 40; ++i) {
    ServeJob job = [&]() -> ServeJob {
      if (i % 4 == 0) {
        ServeJob j(PigeonholeCyclicQuery(), hard_db);  // unbounded
        j.degrade_to_sampling = false;
        return j;
      }
      return ServeJob(Q("R(x | y)"), easy_db);
    }();
    Result<uint64_t> id = service.Submit(std::move(job), cb);
    if (id.ok()) ++accepted;
  }

  auto start = std::chrono::steady_clock::now();
  bool drained = service.Shutdown(milliseconds(50));
  auto elapsed = std::chrono::duration_cast<milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_FALSE(drained) << "unbounded searches cannot drain in 50ms";
  // Termination is the invariant; the bound is deliberately loose (budget
  // probes are amortized, so cancellation latency is stride-granular).
  EXPECT_LT(elapsed.count(), 30'000) << "shutdown took implausibly long";

  EXPECT_EQ(ledger.CheckExactlyOnce(), accepted);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed + stats.failed + stats.cancelled, accepted);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_GT(stats.cancelled, 0u) << "the unbounded jobs must be cancelled";
}

}  // namespace
}  // namespace cqa
