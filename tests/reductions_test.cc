#include <gtest/gtest.h>

#include "cqa/certainty/backtracking.h"
#include "cqa/certainty/matching_q1.h"
#include "cqa/certainty/naive.h"
#include "cqa/gen/random_db.h"
#include "cqa/matching/hopcroft_karp.h"
#include "cqa/query/parser.h"
#include "cqa/reductions/bpm.h"
#include "cqa/reductions/hall_covering.h"
#include "cqa/reductions/lemma54.h"
#include "cqa/reductions/ufa.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

// ---------------------------------------------------------------- Lemma 5.2

// Random balanced bipartite graph where every left vertex has ≥ 1 edge
// (see the precondition discussed in reductions/bpm.h).
BipartiteGraph RandomBalancedGraph(Rng* rng, int m, double p) {
  BipartiteGraph g(m, m);
  for (int l = 0; l < m; ++l) {
    bool any = false;
    for (int r = 0; r < m; ++r) {
      if (rng->Chance(p)) {
        g.AddEdge(l, r);
        any = true;
      }
    }
    if (!any) g.AddEdge(l, static_cast<int>(rng->Below(m)));
  }
  return g;
}

TEST(BpmReductionTest, Lemma52Equivalence) {
  Rng rng(501);
  Query q1 = MakeQ1();
  for (int trial = 0; trial < 300; ++trial) {
    int m = static_cast<int>(rng.Range(1, 4));
    BipartiteGraph g = RandomBalancedGraph(&rng, m, 0.4);
    Database db = BpmToQ1Database(g);
    bool pm = HasPerfectMatching(g);
    // G has a perfect matching  iff  some repair falsifies q1.
    Result<bool> certain = IsCertainNaive(q1, db);
    ASSERT_TRUE(certain.ok());
    EXPECT_EQ(pm, !certain.value());
    // The polynomial solver agrees.
    EXPECT_EQ(IsCertainQ1ByMatching(q1, db).value(), certain.value());
  }
}

TEST(BpmReductionTest, Figure1RoundTrip) {
  // The graph alice,maria × bob,george,john with Fig. 1's edges.
  BipartiteGraph g(2, 3);
  g.AddEdge(0, 0);  // alice-bob
  g.AddEdge(0, 1);  // alice-george
  g.AddEdge(1, 0);  // maria-bob
  g.AddEdge(1, 2);  // maria-john
  Database db = BpmToQ1Database(g);
  EXPECT_EQ(db.NumFacts(), 8u);
  EXPECT_EQ(db.NumBlocks(), 5u);  // 2 R-blocks + 3 S-blocks
}

// ---------------------------------------------------------------- Lemma 5.3

// Random forest with exactly two components, each containing >= 1 edge.
UfaInstance RandomTwoComponentForest(Rng* rng, int per_side) {
  UfaInstance inst;
  inst.num_vertices = 2 * per_side;
  // Component A: vertices [0, per_side); component B: the rest. Random
  // trees via attach-to-earlier.
  for (int i = 1; i < per_side; ++i) {
    inst.edges.emplace_back(static_cast<int>(rng->Below(i)), i);
  }
  for (int i = 1; i < per_side; ++i) {
    inst.edges.emplace_back(
        per_side + static_cast<int>(rng->Below(i)), per_side + i);
  }
  // u from component A; v a *different* vertex from either component (the
  // reduction requires u ≠ v: otherwise R(u,t) and R(v,t) collapse to one
  // fact and a falsifying repair always exists).
  inst.u = static_cast<int>(rng->Below(per_side));
  do {
    inst.v = static_cast<int>(rng->Below(2 * per_side));
  } while (inst.v == inst.u);
  return inst;
}

TEST(UfaReductionTest, Lemma53Equivalence) {
  Rng rng(503);
  Query q2 = MakeQ2();
  for (int trial = 0; trial < 60; ++trial) {
    UfaInstance inst = RandomTwoComponentForest(&rng, 3);
    Database db = UfaToQ2Database(inst);
    bool connected = SolveUfa(inst);
    Result<bool> certain = IsCertainBacktracking(q2, db);
    ASSERT_TRUE(certain.ok()) << certain.error();
    EXPECT_EQ(connected, certain.value())
        << "u=" << inst.u << " v=" << inst.v << "\n" << db.ToString();
  }
}

TEST(UfaReductionTest, Figure4Shape) {
  // Two path components 0-1-2 and 3-4; u=0, v=2 connected.
  UfaInstance inst{5, {{0, 1}, {1, 2}, {3, 4}}, 0, 2};
  EXPECT_TRUE(SolveUfa(inst));
  Database db = UfaToQ2Database(inst);
  // Each edge contributes 6 facts; plus 4 facts for u,v/t.
  EXPECT_EQ(db.NumFacts(), 3u * 6u + 4u);
  EXPECT_TRUE(IsCertainBacktracking(MakeQ2(), db).value());

  UfaInstance inst2{5, {{0, 1}, {1, 2}, {3, 4}}, 0, 3};
  EXPECT_FALSE(SolveUfa(inst2));
  EXPECT_FALSE(
      IsCertainBacktracking(MakeQ2(), UfaToQ2Database(inst2)).value());
}

// ------------------------------------------------------------- Example 1.2

TEST(HallReductionTest, CoveringEquivalence) {
  Rng rng(509);
  for (int ell = 1; ell <= 3; ++ell) {
    Query q = MakeHallQuery(ell);
    for (int trial = 0; trial < 60; ++trial) {
      SCoveringInstance inst;
      inst.num_elements = static_cast<int>(rng.Range(0, 4));
      for (int t = 0; t < ell; ++t) {
        std::vector<int> set;
        for (int a = 0; a < inst.num_elements; ++a) {
          if (rng.Chance(0.5)) set.push_back(a);
        }
        inst.sets.push_back(std::move(set));
      }
      Database db = CoveringToHallDatabase(inst);
      bool coverable = SolveSCovering(inst).has_value();
      Result<bool> certain = IsCertainNaive(q, db);
      ASSERT_TRUE(certain.ok());
      EXPECT_EQ(coverable, !certain.value());
    }
  }
}

// ---------------------------------------------------------------- Lemma 5.4

TEST(Lemma54Test, DroppingNegatedAtomsPreservesCertainty) {
  // q' = q1; q = q1 plus an extra negated atom ¬T(x|y).
  Query q_sub = MakeQ1();
  Query q = Q("R(x | y), not S(y | x), not T(x | y)");
  Rng rng(521);
  RandomDbOptions opts;
  opts.blocks_per_relation = 3;
  opts.max_block_size = 2;
  for (int trial = 0; trial < 150; ++trial) {
    // Input db for q' — may also contain junk T-facts that the reduction
    // must delete.
    Database db = GenerateRandomDatabaseFor(q, opts, &rng);
    Result<Database> reduced =
        DropNegatedReduction(q, {InternSymbol("T")}, db);
    ASSERT_TRUE(reduced.ok()) << reduced.error();
    EXPECT_EQ(reduced->NumFacts(db.schema().relations()[2].name), 0u);
    Result<bool> lhs = IsCertainNaive(q_sub, db);
    Result<bool> rhs = IsCertainNaive(q, reduced.value());
    ASSERT_TRUE(lhs.ok() && rhs.ok());
    EXPECT_EQ(lhs.value(), rhs.value());
  }
}

TEST(Lemma54Test, RejectsNonNegatedDrops) {
  Query q = MakeQ1();
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  Database db(s);
  EXPECT_FALSE(DropNegatedReduction(q, {InternSymbol("R")}, db).ok());
  EXPECT_FALSE(DropNegatedReduction(q, {InternSymbol("Zzz")}, db).ok());
}

}  // namespace
}  // namespace cqa
