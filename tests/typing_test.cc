#include <gtest/gtest.h>

#include "cqa/certainty/naive.h"
#include "cqa/db/typing.h"
#include "cqa/gen/random_db.h"
#include "cqa/gen/random_query.h"
#include "cqa/query/parser.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

TEST(TypingTest, TagsVariablePositionsOnly) {
  Query q = Q("R(x | 'k', y)");
  Result<Database> db = Database::FromText("R(a | k, b)\nR(a | other, b)");
  ASSERT_TRUE(db.ok());
  Result<Database> typed = MakeTyped(q, db.value());
  ASSERT_TRUE(typed.ok()) << typed.error();
  Symbol r = InternSymbol("R");
  // Variable positions tagged with the variable name; constant position
  // untouched.
  EXPECT_TRUE(typed->Contains(
      r, {Value::Of("x:a"), Value::Of("k"), Value::Of("y:b")}));
  EXPECT_TRUE(typed->Contains(
      r, {Value::Of("x:a"), Value::Of("other"), Value::Of("y:b")}));
}

TEST(TypingTest, PreservesBlockStructure) {
  Query q = Q("R(x | y)");
  Rng rng(1009);
  for (int i = 0; i < 50; ++i) {
    Database db = GenerateRandomDatabaseFor(q, {}, &rng);
    Result<Database> typed = MakeTyped(q, db);
    ASSERT_TRUE(typed.ok());
    EXPECT_EQ(db.NumFacts(), typed->NumFacts());
    EXPECT_EQ(db.NumBlocks(), typed->NumBlocks());
    EXPECT_EQ(db.CountRepairs(), typed->CountRepairs());
  }
}

TEST(TypingTest, CertaintyInvariance) {
  // CERTAINTY(q) answers identically on db and its typed version, for both
  // FO and non-FO random queries (here checked with the naive oracle).
  Rng rng(1013);
  RandomQueryOptions qopts;
  RandomDbOptions dopts;
  dopts.blocks_per_relation = 3;
  dopts.max_block_size = 2;
  for (int trial = 0; trial < 150; ++trial) {
    Query q = GenerateRandomQuery(qopts, &rng);
    Database db = GenerateRandomDatabaseFor(q, dopts, &rng);
    Result<Database> typed = MakeTyped(q, db);
    ASSERT_TRUE(typed.ok());
    Result<bool> before = IsCertainNaive(q, db);
    Result<bool> after = IsCertainNaive(q, typed.value());
    ASSERT_TRUE(before.ok() && after.ok());
    EXPECT_EQ(before.value(), after.value()) << q.ToString();
  }
}

TEST(TypingTest, RejectsReifiedQueries) {
  Query q = Q("R(x | y)").WithReified(SymbolSet{InternSymbol("x")});
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  EXPECT_FALSE(MakeTyped(q, Database(s)).ok());
}

TEST(TypingTest, RejectsSignatureMismatch) {
  Query q = Q("R(x | y)");
  Result<Database> db = Database::FromText("R(a | b, c)");
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE(MakeTyped(q, db.value()).ok());
}

}  // namespace
}  // namespace cqa
