#include <gtest/gtest.h>

#include "cqa/certainty/naive.h"
#include "cqa/fo/algebra.h"
#include "cqa/fo/eval.h"
#include "cqa/gen/random_db.h"
#include "cqa/gen/random_formula.h"
#include "cqa/query/parser.h"
#include "cqa/rewriting/rewriter.h"

namespace cqa {
namespace {

Term V(const char* n) { return Term::Var(n); }
Term C(const char* n) { return Term::Const(n); }
Symbol S(const char* n) { return InternSymbol(n); }

Database Db(const char* text) {
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return db.value();
}

TEST(AlgebraTest, AtomScan) {
  Database db = Db("R(a | b)\nR(a | c)\nR(b | b)");
  Result<NamedRelation> r =
      EvalFoAlgebra(FoAtom(S("R"), 1, {V("x"), V("y")}), db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->columns.size(), 2u);
  EXPECT_EQ(r->tuples.size(), 3u);
  // Repeated variable forces equality.
  Result<NamedRelation> rr =
      EvalFoAlgebra(FoAtom(S("R"), 1, {V("x"), V("x")}), db);
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(rr->tuples.size(), 1u);
  EXPECT_TRUE(rr->tuples.count(Tuple{Value::Of("b")}));
  // Constant selection.
  Result<NamedRelation> rc =
      EvalFoAlgebra(FoAtom(S("R"), 1, {C("a"), V("y")}), db);
  ASSERT_TRUE(rc.ok());
  EXPECT_EQ(rc->tuples.size(), 2u);
}

TEST(AlgebraTest, JoinAndProjection) {
  Database db = Db("R(a | b)\nR(c | d)\nT(b)");
  FoPtr conj = FoAnd({FoAtom(S("R"), 1, {V("x"), V("y")}),
                      FoAtom(S("T"), 1, {V("y")})});
  Result<NamedRelation> r = EvalFoAlgebra(conj, db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->tuples.size(), 1u);
  Result<bool> sentence = EvalFoAlgebraBool(
      FoExists({S("x"), S("y")}, conj), db);
  ASSERT_TRUE(sentence.ok());
  EXPECT_TRUE(sentence.value());
}

TEST(AlgebraTest, InfiniteDomainSemantics) {
  // Same cases as FoEvalTest.InfiniteDomainSemantics: the fresh-constant
  // construction makes the active-domain engine agree with the paper's
  // semantics.
  Database db = Db("P(a)\nP(b)");
  FoPtr some_not_p =
      FoExists({S("x")}, FoNot(FoAtom(S("P"), 1, {V("x")})));
  EXPECT_TRUE(EvalFoAlgebraBool(some_not_p, db).value());
  FoPtr all_p = FoForall({S("x")}, FoAtom(S("P"), 1, {V("x")}));
  EXPECT_FALSE(EvalFoAlgebraBool(all_p, db).value());
  // Two distinct fresh witnesses.
  FoPtr two = FoExists(
      {S("x"), S("y")},
      FoAnd({FoNotEquals(V("x"), V("y")),
             FoNot(FoAtom(S("P"), 1, {V("x")})),
             FoNot(FoAtom(S("P"), 1, {V("y")}))}));
  EXPECT_TRUE(EvalFoAlgebraBool(two, db).value());
  // But with extra_fresh_values = 1 the two-witness formula must fail:
  // the construction really is doing the work.
  EXPECT_FALSE(
      EvalFoAlgebraBool(two, db, {.extra_fresh_values = 1}).value());
}

TEST(AlgebraTest, RejectsOpenFormulas) {
  Database db = Db("P(a)");
  EXPECT_FALSE(EvalFoAlgebraBool(FoAtom(S("P"), 1, {V("x")}), db).ok());
}

TEST(AlgebraTest, DifferentialAgainstTupleEngine) {
  // The flagship test: the two independently implemented engines agree on
  // random sentences over random databases.
  Schema schema;
  schema.AddRelationOrDie("P", 1, 1);
  schema.AddRelationOrDie("R", 2, 1);
  Rng rng(1701);
  RandomFormulaOptions fopts;
  fopts.max_depth = 3;  // complement cost is |D|^k; keep k small
  RandomDbOptions dopts;
  dopts.blocks_per_relation = 2;
  dopts.domain_size = 3;
  for (int trial = 0; trial < 250; ++trial) {
    FoPtr f = GenerateRandomFormula(schema, fopts, &rng);
    Database db = GenerateRandomDatabase(schema, dopts, &rng);
    Result<bool> algebra = EvalFoAlgebraBool(f, db);
    ASSERT_TRUE(algebra.ok()) << f->ToString();
    bool tuple = EvalFo(f, db);
    ASSERT_EQ(algebra.value(), tuple) << f->ToString() << "\n"
                                      << db.ToString();
  }
}

TEST(AlgebraTest, EvaluatesConsistentRewritings) {
  // The algebra engine is a third way to decide certainty for FO queries.
  Result<Query> q = ParseQuery("P(x | y), not N('c' | y)");
  ASSERT_TRUE(q.ok());
  Result<Rewriting> rw = RewriteCertain(q.value());
  ASSERT_TRUE(rw.ok());
  Rng rng(1709);
  RandomDbOptions dopts;
  dopts.blocks_per_relation = 2;
  dopts.domain_size = 3;
  for (int trial = 0; trial < 60; ++trial) {
    Database db = GenerateRandomDatabaseFor(q.value(), dopts, &rng);
    Result<bool> algebra = EvalFoAlgebraBool(rw->formula, db);
    ASSERT_TRUE(algebra.ok());
    EXPECT_EQ(algebra.value(), IsCertainNaive(q.value(), db).value())
        << db.ToString();
  }
}

TEST(AlgebraTest, NamedRelationToString) {
  Database db = Db("R(a | b)");
  Result<NamedRelation> r =
      EvalFoAlgebra(FoAtom(S("R"), 1, {V("x"), V("y")}), db);
  ASSERT_TRUE(r.ok());
  std::string s = r->ToString();
  EXPECT_NE(s.find("x, y"), std::string::npos);
  EXPECT_NE(s.find("(a, b)"), std::string::npos);
}

}  // namespace
}  // namespace cqa
