#include <gtest/gtest.h>

#include "cqa/query/query.h"

namespace cqa {
namespace {

Term V(const char* n) { return Term::Var(n); }
Term C(const char* n) { return Term::Const(n); }

TEST(AtomTest, AccessorsAndVars) {
  Atom a("R", 2, {V("x"), C("k"), V("y"), V("x")});
  EXPECT_EQ(a.arity(), 4);
  EXPECT_EQ(a.key_len(), 2);
  EXPECT_FALSE(a.IsAllKey());
  EXPECT_FALSE(a.IsSimpleKey());
  EXPECT_EQ(a.KeyVars(), SymbolSet{InternSymbol("x")});
  SymbolSet expected{InternSymbol("x"), InternSymbol("y")};
  EXPECT_EQ(a.Vars(), expected);
  // Reified variables behave like constants.
  SymbolSet reified{InternSymbol("x")};
  EXPECT_EQ(a.Vars(reified), SymbolSet{InternSymbol("y")});
  EXPECT_TRUE(a.KeyVars(reified).empty());
  EXPECT_EQ(a.ToString(), "R(x, 'k' | y, x)");
}

TEST(AtomTest, SubstitutionAndGroundness) {
  Atom a("R", 1, {V("x"), V("y")});
  Atom g = a.Substituted(InternSymbol("x"), Value::Of("7"));
  EXPECT_EQ(g.ToString(), "R('7' | y)");
  EXPECT_FALSE(g.IsGround());
  Atom g2 = g.Substituted(InternSymbol("y"), Value::Of("8"));
  EXPECT_TRUE(g2.IsGround());
}

TEST(SchemaTest, RegistrationAndConflicts) {
  Schema s;
  Result<Symbol> r1 = s.AddRelation("R", 2, 1);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(s.AddRelation("R", 2, 1).ok());     // identical re-registration
  EXPECT_FALSE(s.AddRelation("R", 3, 1).ok());    // conflicting arity
  EXPECT_FALSE(s.AddRelation("Q", 2, 3).ok());    // key too long
  EXPECT_FALSE(s.AddRelation("Q", 0, 0).ok());    // zero arity
  EXPECT_TRUE(s.Has(r1.value()));
  EXPECT_EQ(s.ArityOf(r1.value()), 2);
  EXPECT_EQ(s.KeyLenOf(r1.value()), 1);
}

TEST(QueryTest, RejectsSelfJoins) {
  Result<Query> q = Query::Make({
      Pos(Atom("R", 1, {V("x"), V("y")})),
      Pos(Atom("R", 1, {V("y"), V("x")})),
  });
  EXPECT_FALSE(q.ok());
  EXPECT_NE(q.error().find("self-join"), std::string::npos);
}

TEST(QueryTest, RejectsUnsafeNegation) {
  // y occurs only in the negated atom.
  Result<Query> q = Query::Make({
      Pos(Atom("R", 1, {V("x")})),
      Neg(Atom("S", 1, {V("x"), V("y")})),
  });
  EXPECT_FALSE(q.ok());
  EXPECT_NE(q.error().find("unsafe"), std::string::npos);
}

TEST(QueryTest, SafetyWithReifiedVariables) {
  // y is reified, so it does not violate safety.
  Result<Query> q = Query::Make(
      {
          Pos(Atom("R", 1, {V("x")})),
          Neg(Atom("S", 1, {V("x"), V("y")})),
      },
      {}, SymbolSet{InternSymbol("y")});
  EXPECT_TRUE(q.ok());
}

TEST(QueryTest, Example31PositiveAndNegativeParts) {
  // Example 3.1: q = {R(x|y), ¬S(x|y), ¬T(y|x)}.
  Query q = Query::MakeOrDie({
      Pos(Atom("R", 1, {V("x"), V("y")})),
      Neg(Atom("S", 1, {V("x"), V("y")})),
      Neg(Atom("T", 1, {V("y"), V("x")})),
  });
  EXPECT_EQ(q.PositiveIndices(), std::vector<size_t>{0});
  EXPECT_EQ(q.NegativeIndices(), (std::vector<size_t>{1, 2}));
  EXPECT_EQ(q.Alpha(), 3);
  EXPECT_FALSE(q.AllAtomsAllKey());
}

TEST(QueryTest, Example32GuardChecks) {
  // Not weakly guarded: {X(x), Y(y), ¬R(x|y), ¬S(y|x)}.
  Query q4 = Query::MakeOrDie({
      Pos(Atom("X", 1, {V("x")})),
      Pos(Atom("Y", 1, {V("y")})),
      Neg(Atom("R", 1, {V("x"), V("y")})),
      Neg(Atom("S", 1, {V("y"), V("x")})),
  });
  EXPECT_FALSE(q4.IsWeaklyGuarded());
  EXPECT_FALSE(q4.IsGuarded());

  // Weakly guarded but not guarded:
  // {R(x|y,z,u), S(y|w,z), T(x|u,w), ¬N(x|y,z,u,w)}.
  Query q = Query::MakeOrDie({
      Pos(Atom("R", 1, {V("x"), V("y"), V("z"), V("u")})),
      Pos(Atom("S", 1, {V("y"), V("w"), V("z")})),
      Pos(Atom("T", 1, {V("x"), V("u"), V("w")})),
      Neg(Atom("N", 1, {V("x"), V("y"), V("z"), V("u"), V("w")})),
  });
  EXPECT_TRUE(q.IsWeaklyGuarded());
  EXPECT_FALSE(q.IsGuarded());
}

TEST(QueryTest, GuardedImpliesWeaklyGuarded) {
  Query q = Query::MakeOrDie({
      Pos(Atom("P", 1, {V("x"), V("y")})),
      Neg(Atom("N", 1, {V("x"), V("y")})),
  });
  EXPECT_TRUE(q.IsGuarded());
  EXPECT_TRUE(q.IsWeaklyGuarded());
}

TEST(QueryTest, SubstitutionAppliesEverywhere) {
  Query q = Query::MakeOrDie(
      {
          Pos(Atom("R", 1, {V("x"), V("y")})),
          Neg(Atom("S", 1, {V("y"), V("x")})),
      },
      {Diseq{{V("x")}, {C("a")}}});
  Query g = q.Substituted(InternSymbol("x"), Value::Of("b"));
  EXPECT_EQ(g.atom(0).term(0).constant(), Value::Of("b"));
  EXPECT_EQ(g.atom(1).term(1).constant(), Value::Of("b"));
  EXPECT_EQ(g.diseqs()[0].lhs[0].constant(), Value::Of("b"));
  // x no longer a variable of the query.
  EXPECT_FALSE(g.Vars().contains(InternSymbol("x")));
}

TEST(QueryTest, WithHelpersAndCanonicalKey) {
  Query q = Query::MakeOrDie({
      Pos(Atom("R", 1, {V("x"), V("y")})),
      Neg(Atom("S", 1, {V("y"), V("x")})),
  });
  Query q1 = q.WithoutLiteralAt(1);
  EXPECT_EQ(q1.NumLiterals(), 1u);
  Query q2 = q.WithReified(SymbolSet{InternSymbol("x")});
  EXPECT_FALSE(q2.Vars().contains(InternSymbol("x")));
  Query q3 = q.WithDiseq(Diseq{{V("x")}, {C("a")}});
  EXPECT_EQ(q3.diseqs().size(), 1u);

  // Canonical key is order-insensitive.
  Query reordered = Query::MakeOrDie({
      Neg(Atom("S", 1, {V("y"), V("x")})),
      Pos(Atom("R", 1, {V("x"), V("y")})),
  });
  EXPECT_EQ(q.CanonicalKey(), reordered.CanonicalKey());
  EXPECT_NE(q.CanonicalKey(), q1.CanonicalKey());
}

TEST(QueryTest, MalformedDiseqRejected) {
  EXPECT_FALSE(Query::Make({Pos(Atom("R", 1, {V("x"), V("y")}))},
                           {Diseq{{V("x")}, {C("a"), C("b")}}})
                   .ok());
  EXPECT_FALSE(
      Query::Make({Pos(Atom("R", 1, {V("x"), V("y")}))}, {Diseq{{}, {}}})
          .ok());
  // Diseq variable not occurring positively.
  EXPECT_FALSE(Query::Make({Pos(Atom("R", 1, {V("x"), V("y")}))},
                           {Diseq{{V("w")}, {C("a")}}})
                   .ok());
}

TEST(QueryTest, AllKeyQueries) {
  Query q = Query::MakeOrDie({
      Pos(Atom("E", 2, {V("x"), V("y")})),
      Neg(Atom("F", 1, {V("x")})),
  });
  EXPECT_EQ(q.Alpha(), 0);
  EXPECT_TRUE(q.AllAtomsAllKey());
}

}  // namespace
}  // namespace cqa
