// Unit tests for the network daemon stack: the JSON codec, the newline
// framing, the wire protocol, and SolveDaemon round trips over real TCP
// sockets on an ephemeral loopback port. Adversarial multi-client runs
// live in daemon_chaos_test.cc.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cqa/base/signals.h"
#include "cqa/delta/delta.h"
#include "cqa/serve/net/client.h"
#include "cqa/serve/net/daemon.h"
#include "cqa/serve/net/framing.h"
#include "cqa/serve/net/json.h"
#include "cqa/serve/net/protocol.h"

namespace cqa {
namespace {

using std::chrono::milliseconds;

constexpr milliseconds kIo{10'000};

// ---------------------------------------------------------------------------
// Json

TEST(JsonTest, ParsesScalarsObjectsAndArrays) {
  Result<Json> v = Json::Parse(
      R"({"a":1,"b":-2.5,"c":"x\n\"y\"","d":[true,false,null],"e":{}})");
  ASSERT_TRUE(v.ok()) << v.error();
  EXPECT_EQ(v->Find("a")->AsInt(), 1);
  EXPECT_DOUBLE_EQ(v->Find("b")->AsDouble(), -2.5);
  EXPECT_EQ(v->Find("c")->AsString(), "x\n\"y\"");
  ASSERT_TRUE(v->Find("d")->is_array());
  EXPECT_EQ(v->Find("d")->AsArray().size(), 3u);
  EXPECT_TRUE(v->Find("d")->AsArray()[2].is_null());
  EXPECT_TRUE(v->Find("e")->is_object());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonTest, SerializationIsDeterministicAndRoundTrips) {
  Json obj = JsonObjectBuilder()
                 .Set("zeta", uint64_t{7})
                 .Set("alpha", "s")
                 .Set("mid", true)
                 .Build();
  std::string text = obj.Serialize();
  // Keys sorted, compact.
  EXPECT_EQ(text, R"({"alpha":"s","mid":true,"zeta":7})");
  Result<Json> back = Json::Parse(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Serialize(), text);
}

TEST(JsonTest, EscapesControlCharactersAndUnicode) {
  Json s = Json::MakeString(std::string("a\x01") + "\t\"\\");
  std::string text = s.Serialize();
  Result<Json> back = Json::Parse(text);
  ASSERT_TRUE(back.ok()) << text;
  EXPECT_EQ(back->AsString(), s.AsString());
  // \uXXXX escapes decode to UTF-8.
  Result<Json> uni = Json::Parse(R"("\u00e9\u0041")");
  ASSERT_TRUE(uni.ok());
  EXPECT_EQ(uni->AsString(), "\xc3\xa9"
                             "A");
}

TEST(JsonTest, MalformedInputsFailWithTypedParseErrors) {
  const char* bad[] = {
      "",     "{",        "}",        "{\"a\":}", "[1,]",  "tru",
      "nul",  "\"unterminated", "{\"a\" 1}",  "1 2",   "{\"a\":1}x",
      "\x01", "-",        "1e",       "\"\\q\"",
  };
  for (const char* text : bad) {
    Result<Json> r = Json::Parse(text);
    ASSERT_FALSE(r.ok()) << "accepted: " << text;
    EXPECT_EQ(r.code(), ErrorCode::kParse) << text;
  }
}

TEST(JsonTest, DepthLimitStopsRecursion) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  Result<Json> r = Json::Parse(deep, /*max_depth=*/64);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kParse);
  // Within the limit it parses fine.
  EXPECT_TRUE(Json::Parse(std::string(10, '[') + std::string(10, ']')).ok());
}

TEST(JsonTest, IntegersSurviveExactlyDoublesWhenNot) {
  Result<Json> i = Json::Parse("9007199254740993");  // not double-exact
  ASSERT_TRUE(i.ok());
  ASSERT_TRUE(i->is_int());
  EXPECT_EQ(i->AsInt(), 9007199254740993ll);
  Result<Json> d = Json::Parse("1.25");
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->is_int());
  EXPECT_DOUBLE_EQ(d->AsDouble(), 1.25);
}

// ---------------------------------------------------------------------------
// Framing

TEST(FramingTest, ReassemblesFramesAcrossArbitrarySplits) {
  const std::string stream = "alpha\nbeta\r\n\n\ngamma\n";
  // Feed one byte at a time: framing must not depend on chunk boundaries.
  FrameDecoder decoder(64);
  std::vector<std::string> frames;
  for (char c : stream) {
    ASSERT_TRUE(decoder.Feed(&c, 1, &frames));
  }
  ASSERT_EQ(frames.size(), 3u) << "empty lines are skipped";
  EXPECT_EQ(frames[0], "alpha");
  EXPECT_EQ(frames[1], "beta") << "CR of CRLF is stripped";
  EXPECT_EQ(frames[2], "gamma");
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(FramingTest, OversizedFrameLatchesOverflow) {
  FrameDecoder decoder(8);
  std::vector<std::string> frames;
  EXPECT_TRUE(decoder.Feed("ok\n", 3, &frames));
  std::string big = "0123456789abcdef";
  EXPECT_FALSE(decoder.Feed(big.data(), big.size(), &frames));
  EXPECT_TRUE(decoder.overflowed());
  // Latched: even a newline cannot resynchronize.
  EXPECT_FALSE(decoder.Feed("\nx\n", 3, &frames));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], "ok");
}

TEST(FramingTest, EncodeFrameNeutralizesEmbeddedNewlines) {
  EXPECT_EQ(EncodeFrame("a"), "a\n");
  EXPECT_EQ(EncodeFrame("a\nb"), "a b\n");
}

// ---------------------------------------------------------------------------
// Protocol

TEST(ProtocolTest, DecodesSolveWithAllOptions) {
  Result<WireRequest> r = DecodeRequest(
      R"js({"type":"solve","id":42,"query":"R(x | y)","timeout_ms":250,)js"
      R"js("max_steps":1000,"method":"backtracking","degrade_to_sampling":false,)js"
      R"js("max_samples":99,"deadline_from_submit":true,"chaos_sleep_ms":5})js");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r->type, WireRequestType::kSolve);
  EXPECT_EQ(r->id, 42u);
  EXPECT_EQ(r->query, "R(x | y)");
  ASSERT_TRUE(r->timeout_ms.has_value());
  EXPECT_EQ(*r->timeout_ms, 250u);
  EXPECT_EQ(r->max_steps, 1000u);
  EXPECT_EQ(r->method, SolverMethod::kBacktracking);
  EXPECT_FALSE(r->degrade_to_sampling);
  EXPECT_EQ(r->max_samples, 99u);
  EXPECT_TRUE(r->deadline_from_submit);
  EXPECT_EQ(r->chaos_sleep_ms, 5u);
}

TEST(ProtocolTest, TypedErrorsDistinguishMalformedFromUnsupported) {
  struct Case {
    const char* frame;
    ErrorCode code;
  } cases[] = {
      {"not json at all", ErrorCode::kParse},
      {"[1,2,3]", ErrorCode::kParse},
      {R"({"id":1})", ErrorCode::kParse},                       // no type
      {R"({"type":"solve","id":1})", ErrorCode::kParse},        // no query
      {R"js({"type":"solve","query":"R(x | y)"})js", ErrorCode::kParse},  // no id
      {R"({"type":"cancel","id":1})", ErrorCode::kParse},       // no target
      {R"({"type":"teleport","id":1})", ErrorCode::kUnsupported},
      {R"({"type":"solve","id":1,"query":"q","method":"quantum"})",
       ErrorCode::kUnsupported},
  };
  for (const Case& c : cases) {
    Result<WireRequest> r = DecodeRequest(c.frame);
    ASSERT_FALSE(r.ok()) << c.frame;
    EXPECT_EQ(r.code(), c.code) << c.frame;
  }
}

TEST(ProtocolTest, ResponseFramesRoundTripThroughTheClientDecoder) {
  Result<WireResponse> err = DecodeResponse(EncodeErrorFrame(
      7, ErrorCode::kOverloaded, "queue full", /*fatal=*/false));
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->type, "error");
  EXPECT_EQ(err->id, 7u);
  EXPECT_EQ(err->code, "overloaded");
  EXPECT_FALSE(err->fatal);
  EXPECT_TRUE(IsTerminalResponseType(err->type));

  Result<WireResponse> cancelled =
      DecodeResponse(EncodeCancelledFrame(8, "cancelled"));
  ASSERT_TRUE(cancelled.ok());
  EXPECT_EQ(cancelled->type, "cancelled");
  EXPECT_EQ(cancelled->id, 8u);

  Result<WireResponse> health = DecodeResponse(EncodeHealthFrame(9, true));
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, "draining");
  EXPECT_FALSE(IsTerminalResponseType(health->type));

  Result<WireResponse> ack = DecodeResponse(EncodeCancelAckFrame(1, 5, true));
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->type, "cancel_ack");
  EXPECT_EQ(ack->target, 5u);
  EXPECT_TRUE(ack->found);
}

TEST(ProtocolTest, SolverMethodNamesMatchTheCliSpellings) {
  EXPECT_EQ(*ParseSolverMethod(""), SolverMethod::kAuto);
  EXPECT_EQ(*ParseSolverMethod("auto"), SolverMethod::kAuto);
  EXPECT_EQ(*ParseSolverMethod("rewriting"), SolverMethod::kRewriting);
  EXPECT_EQ(*ParseSolverMethod("fo-rewriting"), SolverMethod::kRewriting);
  EXPECT_EQ(*ParseSolverMethod("algorithm1"), SolverMethod::kAlgorithm1);
  EXPECT_EQ(*ParseSolverMethod("backtracking"), SolverMethod::kBacktracking);
  EXPECT_EQ(*ParseSolverMethod("naive"), SolverMethod::kNaive);
  EXPECT_EQ(*ParseSolverMethod("matching-q1"), SolverMethod::kMatchingQ1);
  EXPECT_EQ(*ParseSolverMethod("sampling"), SolverMethod::kSampling);
  Result<SolverMethod> unknown = ParseSolverMethod("quantum");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.code(), ErrorCode::kUnsupported);
}

// ---------------------------------------------------------------------------
// SolveDaemon round trips

std::shared_ptr<const Database> Db(const char* text) {
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return std::make_shared<const Database>(std::move(db.value()));
}

// A daemon bound to an ephemeral loopback port, plus a connected client.
struct DaemonFixture {
  std::unique_ptr<SolveDaemon> daemon;
  NetClient client;

  explicit DaemonFixture(DaemonOptions options = {},
                         const char* facts = "R(a | b), R(a | c)\nS(b | a)") {
    options.host = "127.0.0.1";
    options.port = 0;
    daemon = std::make_unique<SolveDaemon>(Db(facts), options);
    Result<bool> started = daemon->Start();
    EXPECT_TRUE(started.ok()) << (started.ok() ? "" : started.error());
    Result<bool> connected =
        client.Connect("127.0.0.1", daemon->port(), kIo);
    EXPECT_TRUE(connected.ok()) << (connected.ok() ? "" : connected.error());
  }

  Result<bool> Send(const std::string& payload) {
    return client.SendFrame(payload, kIo);
  }
};

std::string SolveFrame(uint64_t id, const std::string& query,
                       uint64_t chaos_sleep_ms = 0) {
  JsonObjectBuilder b;
  b.Set("type", "solve").Set("id", id).Set("query", query);
  if (chaos_sleep_ms > 0) b.Set("chaos_sleep_ms", chaos_sleep_ms);
  return b.Build().Serialize();
}

TEST(DaemonTest, SolveRoundTripOverTcp) {
  DaemonFixture f;
  ASSERT_TRUE(f.Send(SolveFrame(1, "R(x | y)")).ok());
  ASSERT_TRUE(f.Send(SolveFrame(2, "R(x | y), not S(y | x)")).ok());
  Result<WireResponse> first = f.client.WaitTerminal(1, kIo);
  ASSERT_TRUE(first.ok()) << first.error();
  EXPECT_EQ(first->type, "result");
  EXPECT_EQ(first->verdict, "certain");
  Result<WireResponse> second = f.client.WaitTerminal(2, kIo);
  ASSERT_TRUE(second.ok()) << second.error();
  EXPECT_EQ(second->verdict, "not-certain");
  EXPECT_TRUE(f.daemon->Shutdown(milliseconds(5'000)));
  DaemonStats stats = f.daemon->daemon_stats();
  EXPECT_EQ(stats.connections_opened, 1u);
  EXPECT_EQ(stats.frames_received, 2u);
  EXPECT_EQ(stats.solves_admitted, 2u);
  EXPECT_EQ(stats.frames_garbage, 0u);
}

TEST(DaemonTest, HealthAndStatsFrames) {
  DaemonFixture f;
  ASSERT_TRUE(
      f.Send(R"({"type":"health","id":1})").ok());
  Result<WireResponse> health = f.client.ReadResponse(kIo);
  ASSERT_TRUE(health.ok()) << health.error();
  EXPECT_EQ(health->type, "health");
  EXPECT_EQ(health->status, "serving");

  ASSERT_TRUE(f.Send(SolveFrame(2, "R(x | y)")).ok());
  ASSERT_TRUE(f.client.WaitTerminal(2, kIo).ok());
  ASSERT_TRUE(f.Send(R"({"type":"stats","id":3})").ok());
  Result<WireResponse> stats = f.client.ReadResponse(kIo);
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_EQ(stats->type, "stats");
  const Json* service = stats->raw.Find("service");
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(service->Find("completed")->AsInt(), 1);
  const Json* daemon = stats->raw.Find("daemon");
  ASSERT_NE(daemon, nullptr);
  EXPECT_EQ(daemon->Find("connections_active")->AsInt(), 1);
  EXPECT_GE(daemon->Find("frames_received")->AsInt(), 3);
}

TEST(DaemonTest, MalformedFrameFailsTheFrameNotTheConnection) {
  DaemonFixture f;
  ASSERT_TRUE(f.Send("{this is not json").ok());
  Result<WireResponse> err = f.client.ReadResponse(kIo);
  ASSERT_TRUE(err.ok()) << err.error();
  EXPECT_EQ(err->type, "error");
  EXPECT_EQ(err->code, "parse");
  EXPECT_FALSE(err->fatal);
  // The connection survives: a valid request still gets served.
  ASSERT_TRUE(f.Send(SolveFrame(5, "R(x | y)")).ok());
  Result<WireResponse> ok = f.client.WaitTerminal(5, kIo);
  ASSERT_TRUE(ok.ok()) << ok.error();
  EXPECT_EQ(ok->verdict, "certain");
  EXPECT_EQ(f.daemon->daemon_stats().frames_garbage, 1u);
}

TEST(DaemonTest, ConsecutiveGarbageClosesTheConnection) {
  DaemonOptions options;
  options.connection.max_consecutive_garbage = 3;
  DaemonFixture f(options);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(f.Send("{garbage").ok());
  // Two non-fatal errors, then a fatal one, then EOF.
  for (int i = 0; i < 3; ++i) {
    Result<WireResponse> err = f.client.ReadResponse(kIo);
    ASSERT_TRUE(err.ok()) << err.error();
    EXPECT_EQ(err->type, "error");
    EXPECT_EQ(err->fatal, i == 2) << "only the last garbage frame is fatal";
  }
  Result<WireResponse> eof = f.client.ReadResponse(kIo);
  ASSERT_FALSE(eof.ok()) << "connection must be closed after the limit";
  // Daemon accounted the close.
  for (int i = 0; i < 1000 &&
                  f.daemon->daemon_stats().connections_closed_garbage == 0;
       ++i) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_EQ(f.daemon->daemon_stats().connections_closed_garbage, 1u);
}

TEST(DaemonTest, OversizedFrameGetsFatalErrorAndClose) {
  DaemonOptions options;
  options.connection.max_frame_bytes = 128;
  DaemonFixture f(options);
  std::string big(1024, 'x');
  ASSERT_TRUE(f.client.SendRaw(big, kIo).ok());  // no newline: one huge frame
  Result<WireResponse> err = f.client.ReadResponse(kIo);
  ASSERT_TRUE(err.ok()) << err.error();
  EXPECT_EQ(err->type, "error");
  EXPECT_EQ(err->code, "parse");
  EXPECT_TRUE(err->fatal);
  Result<WireResponse> eof = f.client.ReadResponse(kIo);
  EXPECT_FALSE(eof.ok());
}

TEST(DaemonTest, PerConnectionInflightCapSendsTypedOverload) {
  DaemonOptions options;
  options.connection.max_inflight = 2;
  options.service.workers = 1;
  DaemonFixture f(options);
  // Two slow solves fill the cap; the third is rejected immediately.
  ASSERT_TRUE(f.Send(SolveFrame(1, "R(x | y)", /*chaos_sleep_ms=*/300)).ok());
  ASSERT_TRUE(f.Send(SolveFrame(2, "R(x | y)", /*chaos_sleep_ms=*/300)).ok());
  ASSERT_TRUE(f.Send(SolveFrame(3, "R(x | y)")).ok());
  Result<WireResponse> rejected = f.client.WaitTerminal(3, kIo);
  ASSERT_TRUE(rejected.ok()) << rejected.error();
  EXPECT_EQ(rejected->type, "error");
  EXPECT_EQ(rejected->code, "overloaded");
  // The two admitted solves still complete.
  EXPECT_TRUE(f.client.WaitTerminal(1, kIo).ok());
  EXPECT_TRUE(f.client.WaitTerminal(2, kIo).ok());
  EXPECT_EQ(f.daemon->daemon_stats().solves_rejected_inflight_cap, 1u);
}

TEST(DaemonTest, CancelFrameCancelsAndAcks) {
  DaemonOptions options;
  options.service.workers = 1;
  DaemonFixture f(options);
  ASSERT_TRUE(
      f.Send(SolveFrame(1, "R(x | y)", /*chaos_sleep_ms=*/60'000)).ok());
  ASSERT_TRUE(f.Send(R"({"type":"cancel","id":2,"target":1})").ok());
  // Responses: cancel_ack (id 2) and the terminal cancelled frame (id 1),
  // in either order.
  bool saw_ack = false, saw_cancelled = false;
  for (int i = 0; i < 2; ++i) {
    Result<WireResponse> r = f.client.ReadResponse(kIo);
    ASSERT_TRUE(r.ok()) << r.error();
    if (r->type == "cancel_ack") {
      EXPECT_EQ(r->id, 2u);
      EXPECT_EQ(r->target, 1u);
      EXPECT_TRUE(r->found);
      saw_ack = true;
    } else {
      EXPECT_EQ(r->type, "cancelled");
      EXPECT_EQ(r->id, 1u);
      saw_cancelled = true;
    }
  }
  EXPECT_TRUE(saw_ack);
  EXPECT_TRUE(saw_cancelled);
  // Cancelling a finished id acks found=false.
  ASSERT_TRUE(f.Send(R"({"type":"cancel","id":3,"target":1})").ok());
  Result<WireResponse> ack = f.client.ReadResponse(kIo);
  ASSERT_TRUE(ack.ok());
  EXPECT_FALSE(ack->found);
}

TEST(DaemonTest, DuplicateInflightIdIsRejected) {
  DaemonOptions options;
  options.service.workers = 1;
  DaemonFixture f(options);
  ASSERT_TRUE(
      f.Send(SolveFrame(1, "R(x | y)", /*chaos_sleep_ms=*/60'000)).ok());
  ASSERT_TRUE(f.Send(SolveFrame(1, "R(x | y)")).ok());
  Result<WireResponse> dup = f.client.ReadResponse(kIo);
  ASSERT_TRUE(dup.ok()) << dup.error();
  EXPECT_EQ(dup->type, "error");
  EXPECT_EQ(dup->code, "parse");
  ASSERT_TRUE(f.Send(R"({"type":"cancel","id":2,"target":1})").ok());
  EXPECT_TRUE(f.client.WaitTerminal(1, kIo).ok());
}

TEST(DaemonTest, UnparsableQueryIsARequestLevelErrorNotGarbage) {
  DaemonFixture f;
  ASSERT_TRUE(f.Send(SolveFrame(1, "this is not a query ((")).ok());
  Result<WireResponse> err = f.client.WaitTerminal(1, kIo);
  ASSERT_TRUE(err.ok()) << err.error();
  EXPECT_EQ(err->type, "error");
  EXPECT_EQ(err->code, "parse");
  EXPECT_EQ(f.daemon->daemon_stats().frames_garbage, 0u)
      << "a well-formed frame with a bad query is not wire garbage";
}

TEST(DaemonTest, DrainingDaemonRejectsNewSolvesButAnswersHealth) {
  DaemonOptions options;
  options.service.workers = 1;
  DaemonFixture f(options);
  // Make the daemon enter drain through the same latch path the CLI uses.
  SignalDrainLatch latch;
  latch.TripForTesting(15);
  EXPECT_TRUE(latch.signalled());
  EXPECT_EQ(latch.signal_number(), 15);
  // Shutdown in a second thread so this test can observe the drain window
  // is not needed — BeginDrain semantics are covered by shutdown-under-load
  // in daemon_chaos_test; here just verify a full stop still answers EOF.
  EXPECT_TRUE(f.daemon->Shutdown(milliseconds(2'000)));
  Result<WireResponse> r = f.client.ReadResponse(milliseconds(2'000));
  EXPECT_FALSE(r.ok()) << "daemon closed the connection on shutdown";
}

// ---------------------------------------------------------------------------
// Multi-database registry over the wire

// Two databases that disagree on the same query: with
//   q = R(x | y), not S(y | x)
// database A (the fixture default) answers not-certain — the repair that
// keeps R(a | b) must avoid S(b | a), but S(b | a) is A's only S-block, so
// it survives every repair. Database B's lone S-fact S(z | z) never blocks
// an R-match, so B answers certain.
constexpr char kDbBFacts[] = "R(a | b), R(a | c)\nS(z | z)";
constexpr char kDifferentialQuery[] = "R(x | y), not S(y | x)";

std::string SolveFrameFor(uint64_t id, const std::string& query,
                          const std::string& db) {
  JsonObjectBuilder b;
  b.Set("type", "solve").Set("id", id).Set("query", query);
  if (!db.empty()) b.Set("db", db);
  return b.Build().Serialize();
}

TEST(DaemonMultiDbTest, SolvesRouteByDbField) {
  DaemonFixture f;
  ASSERT_TRUE(f.daemon->Attach("b", Db(kDbBFacts)).ok());

  // No "db" field: exactly the single-database behavior.
  ASSERT_TRUE(f.Send(SolveFrameFor(1, kDifferentialQuery, "")).ok());
  // Explicitly the default instance's name.
  ASSERT_TRUE(
      f.Send(SolveFrameFor(2, kDifferentialQuery,
                           SolveDaemon::kDefaultDbName)).ok());
  // The second instance, which disagrees.
  ASSERT_TRUE(f.Send(SolveFrameFor(3, kDifferentialQuery, "b")).ok());
  // An instance that was never attached.
  ASSERT_TRUE(f.Send(SolveFrameFor(4, kDifferentialQuery, "ghost")).ok());

  Result<WireResponse> none = f.client.WaitTerminal(1, kIo);
  ASSERT_TRUE(none.ok()) << none.error();
  EXPECT_EQ(none->verdict, "not-certain");
  Result<WireResponse> def = f.client.WaitTerminal(2, kIo);
  ASSERT_TRUE(def.ok()) << def.error();
  EXPECT_EQ(def->verdict, "not-certain");
  Result<WireResponse> other = f.client.WaitTerminal(3, kIo);
  ASSERT_TRUE(other.ok()) << other.error();
  EXPECT_EQ(other->verdict, "certain")
      << "solve must run against the named instance, not the default";
  Result<WireResponse> ghost = f.client.WaitTerminal(4, kIo);
  ASSERT_TRUE(ghost.ok()) << ghost.error();
  EXPECT_EQ(ghost->type, "error");
  EXPECT_EQ(ghost->code, "detached");
}

TEST(DaemonMultiDbTest, AttachListDetachOverTheWire) {
  DaemonFixture f;

  // The fixture database is attached under "default" and is the default.
  ASSERT_TRUE(f.Send(R"({"type":"list","id":1})").ok());
  Result<WireResponse> before = f.client.ReadResponse(kIo);
  ASSERT_TRUE(before.ok()) << before.error();
  EXPECT_EQ(before->type, "db_list");
  EXPECT_EQ(before->raw.Find("default")->AsString(), "default");
  ASSERT_EQ(before->raw.Find("databases")->AsArray().size(), 1u);

  // Attach ships the facts inline; the ack reports the precomputed shape.
  JsonObjectBuilder attach;
  attach.Set("type", "attach").Set("id", uint64_t{2}).Set("name", "b");
  attach.Set("facts", kDbBFacts);
  ASSERT_TRUE(f.Send(attach.Build().Serialize()).ok());
  Result<WireResponse> ack = f.client.ReadResponse(kIo);
  ASSERT_TRUE(ack.ok()) << ack.error();
  ASSERT_EQ(ack->type, "attach_ack") << ack->raw.Serialize();
  EXPECT_EQ(ack->raw.Find("name")->AsString(), "b");
  EXPECT_EQ(ack->raw.Find("facts")->AsInt(), 3);
  EXPECT_EQ(ack->raw.Find("blocks")->AsInt(), 2);
  EXPECT_FALSE(ack->raw.Find("default")->AsBool());
  EXPECT_EQ(ack->raw.Find("fingerprint")->AsString().size(), 32u);

  ASSERT_TRUE(f.Send(R"({"type":"list","id":3})").ok());
  Result<WireResponse> after = f.client.ReadResponse(kIo);
  ASSERT_TRUE(after.ok()) << after.error();
  ASSERT_EQ(after->raw.Find("databases")->AsArray().size(), 2u);

  // The attached instance serves immediately.
  ASSERT_TRUE(f.Send(SolveFrameFor(4, kDifferentialQuery, "b")).ok());
  Result<WireResponse> solved = f.client.WaitTerminal(4, kIo);
  ASSERT_TRUE(solved.ok()) << solved.error();
  EXPECT_EQ(solved->verdict, "certain");

  // Detach acks only after its shard drained; nothing was queued.
  ASSERT_TRUE(f.Send(R"({"type":"detach","id":5,"name":"b"})").ok());
  Result<WireResponse> detached = f.client.ReadResponse(kIo);
  ASSERT_TRUE(detached.ok()) << detached.error();
  ASSERT_EQ(detached->type, "detach_ack") << detached->raw.Serialize();
  EXPECT_EQ(detached->raw.Find("name")->AsString(), "b");
  EXPECT_EQ(detached->raw.Find("shed")->AsInt(), 0);
  EXPECT_TRUE(detached->raw.Find("drained")->AsBool());

  // Solves against it now fail typed; the default keeps serving.
  ASSERT_TRUE(f.Send(SolveFrameFor(6, kDifferentialQuery, "b")).ok());
  Result<WireResponse> gone = f.client.WaitTerminal(6, kIo);
  ASSERT_TRUE(gone.ok()) << gone.error();
  EXPECT_EQ(gone->type, "error");
  EXPECT_EQ(gone->code, "detached");
  ASSERT_TRUE(f.Send(SolveFrameFor(7, "R(x | y)", "")).ok());
  Result<WireResponse> still = f.client.WaitTerminal(7, kIo);
  ASSERT_TRUE(still.ok()) << still.error();
  EXPECT_EQ(still->verdict, "certain");
}

TEST(DaemonMultiDbTest, AdminFramesFailTyped) {
  DaemonFixture f;
  struct Case {
    const char* frame;
    const char* code;
  } cases[] = {
      // Unknown instance.
      {R"({"type":"detach","id":1,"name":"ghost"})", "unsupported"},
      // Duplicate name.
      {R"js({"type":"attach","id":2,"name":"default","facts":"R(a | b)"})js",
       "unsupported"},
      // Invalid name (slash is outside the operator-facing alphabet).
      {R"js({"type":"attach","id":3,"name":"no/slash","facts":"R(a | b)"})js",
       "unsupported"},
      // Facts that do not parse reject the attach, not the connection.
      {R"js({"type":"attach","id":4,"name":"bad","facts":"R(a |"})js",
       "parse"},
  };
  for (const Case& c : cases) {
    ASSERT_TRUE(f.Send(c.frame).ok());
    Result<WireResponse> err = f.client.ReadResponse(kIo);
    ASSERT_TRUE(err.ok()) << c.frame << ": " << err.error();
    EXPECT_EQ(err->type, "error") << c.frame;
    EXPECT_EQ(err->code, c.code) << c.frame;
    EXPECT_FALSE(err->fatal) << c.frame;
  }
  // A failed attach leaves no trace; the registry still has one instance.
  ASSERT_TRUE(f.Send(R"({"type":"list","id":9})").ok());
  Result<WireResponse> list = f.client.ReadResponse(kIo);
  ASSERT_TRUE(list.ok()) << list.error();
  EXPECT_EQ(list->raw.Find("databases")->AsArray().size(), 1u);
  EXPECT_EQ(f.daemon->daemon_stats().frames_garbage, 0u)
      << "typed admin failures of well-formed frames are not wire garbage";
  // Admin frames missing their required fields fail wire decode, though —
  // same rules as any other malformed frame.
  ASSERT_TRUE(f.Send(R"({"type":"attach","id":5})").ok());
  Result<WireResponse> malformed = f.client.ReadResponse(kIo);
  ASSERT_TRUE(malformed.ok()) << malformed.error();
  EXPECT_EQ(malformed->type, "error");
  EXPECT_EQ(malformed->code, "parse");
  EXPECT_EQ(f.daemon->daemon_stats().frames_garbage, 1u);
}

TEST(DaemonMultiDbTest, StatsBreakOutPerDatabase) {
  DaemonOptions options;
  options.service.cache_entries = 128;  // library default is cache-off
  DaemonFixture f(options);
  ASSERT_TRUE(f.daemon->Attach("b", Db(kDbBFacts)).ok());
  // Same query twice on the default shard (second is a cache hit), once on
  // the other shard (its own cache, so a miss there).
  ASSERT_TRUE(f.Send(SolveFrameFor(1, "R(x | y)", "")).ok());
  ASSERT_TRUE(f.client.WaitTerminal(1, kIo).ok());
  ASSERT_TRUE(f.Send(SolveFrameFor(2, "R(x | y)", "")).ok());
  ASSERT_TRUE(f.client.WaitTerminal(2, kIo).ok());
  ASSERT_TRUE(f.Send(SolveFrameFor(3, "R(x | y)", "b")).ok());
  ASSERT_TRUE(f.client.WaitTerminal(3, kIo).ok());

  ASSERT_TRUE(f.Send(R"({"type":"stats","id":4})").ok());
  Result<WireResponse> stats = f.client.ReadResponse(kIo);
  ASSERT_TRUE(stats.ok()) << stats.error();
  const Json* dbs = stats->raw.Find("databases");
  ASSERT_NE(dbs, nullptr) << stats->raw.Serialize();
  const Json* def = dbs->Find(SolveDaemon::kDefaultDbName);
  const Json* other = dbs->Find("b");
  ASSERT_NE(def, nullptr);
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(def->Find("completed")->AsInt(), 2);
  EXPECT_EQ(def->Find("cache_hits")->AsInt(), 1);
  EXPECT_EQ(def->Find("cache_misses")->AsInt(), 1);
  EXPECT_EQ(other->Find("completed")->AsInt(), 1);
  EXPECT_EQ(other->Find("cache_hits")->AsInt(), 0)
      << "shards must not share cache entries";
  EXPECT_EQ(other->Find("cache_misses")->AsInt(), 1);
  // The aggregate view still carries the summed counters.
  const Json* service = stats->raw.Find("service");
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(service->Find("completed")->AsInt(), 3);
  EXPECT_EQ(service->Find("cache_hits")->AsInt(), 1)
      << stats->raw.Serialize();
}

// ---------------------------------------------------------------------------
// Live updates over the wire

std::string DeltaFrame(uint64_t id, const std::string& delta_id,
                       const std::vector<DeltaOp>& ops,
                       const std::string& db = "") {
  JsonObjectBuilder b;
  b.Set("type", "apply_delta").Set("id", id).Set("delta_id", delta_id);
  if (!db.empty()) b.Set("db", db);
  b.Set("ops", EncodeDeltaOps(ops));
  return b.Build().Serialize();
}

TEST(DaemonDeltaTest, ApplyDeltaRoundTripOverTcp) {
  DaemonFixture f;  // fixture facts: R(a | b), R(a | c)  S(b | a)
  ASSERT_TRUE(f.Send(SolveFrame(1, kDifferentialQuery)).ok());
  Result<WireResponse> before = f.client.WaitTerminal(1, kIo);
  ASSERT_TRUE(before.ok()) << before.error();
  EXPECT_EQ(before->verdict, "not-certain");

  // Deleting the negated atom's only witness flips the verdict.
  DeltaOp del;
  del.insert = false;
  del.relation = "S";
  del.values = {"b", "a"};
  ASSERT_TRUE(f.Send(DeltaFrame(2, "wire-d1", {del})).ok());
  Result<WireResponse> ack = f.client.ReadResponse(kIo);
  ASSERT_TRUE(ack.ok()) << ack.error();
  ASSERT_EQ(ack->type, "delta_ack") << ack->raw.Serialize();
  EXPECT_TRUE(ack->raw.Find("applied")->AsBool());
  EXPECT_EQ(ack->raw.Find("epoch")->AsInt(), 1);  // attach is epoch 0
  EXPECT_EQ(ack->raw.Find("deleted")->AsInt(), 1);
  EXPECT_EQ(ack->raw.Find("fingerprint")->AsString().size(), 32u);

  // The ack is the publication point: the next solve sees the new epoch.
  ASSERT_TRUE(f.Send(SolveFrame(3, kDifferentialQuery)).ok());
  Result<WireResponse> after = f.client.WaitTerminal(3, kIo);
  ASSERT_TRUE(after.ok()) << after.error();
  EXPECT_EQ(after->verdict, "certain");

  // Re-sending the same delta id acks idempotently without reapplying.
  ASSERT_TRUE(f.Send(DeltaFrame(4, "wire-d1", {del})).ok());
  Result<WireResponse> dup = f.client.ReadResponse(kIo);
  ASSERT_TRUE(dup.ok()) << dup.error();
  ASSERT_EQ(dup->type, "delta_ack") << dup->raw.Serialize();
  EXPECT_FALSE(dup->raw.Find("applied")->AsBool());
  EXPECT_EQ(dup->raw.Find("epoch")->AsInt(), 1);
  EXPECT_EQ(dup->raw.Find("fingerprint")->AsString(),
            ack->raw.Find("fingerprint")->AsString());

  // Validation failures are typed rejections, not wire garbage.
  DeltaOp ghost;
  ghost.insert = true;
  ghost.relation = "Ghost";
  ghost.values = {"x", "y"};
  ASSERT_TRUE(f.Send(DeltaFrame(5, "wire-d2", {ghost})).ok());
  Result<WireResponse> rejected = f.client.ReadResponse(kIo);
  ASSERT_TRUE(rejected.ok()) << rejected.error();
  EXPECT_EQ(rejected->type, "error");
  EXPECT_EQ(rejected->code, "unsupported");
  EXPECT_FALSE(rejected->fatal);

  ASSERT_TRUE(f.Send(R"({"type":"stats","id":6})").ok());
  Result<WireResponse> stats = f.client.ReadResponse(kIo);
  ASSERT_TRUE(stats.ok()) << stats.error();
  const Json* daemon = stats->raw.Find("daemon");
  ASSERT_NE(daemon, nullptr);
  // Idempotent re-acks count as applied at the daemon layer; the service
  // epoch shows only one mutation actually landed.
  EXPECT_EQ(daemon->Find("deltas_applied")->AsInt(), 2);
  EXPECT_EQ(daemon->Find("deltas_rejected")->AsInt(), 1);
  const Json* service = stats->raw.Find("service");
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(service->Find("deltas_applied")->AsInt(), 1);
  EXPECT_EQ(service->Find("epoch")->AsInt(), 1);
  EXPECT_EQ(f.daemon->daemon_stats().frames_garbage, 0u);
}

TEST(DaemonDeltaTest, AdminFramesDoNotStallTheReader) {
  DaemonFixture f;
  // A deliberately large attach: tens of thousands of facts to parse and
  // index. When the build ran inline on the reader thread, the health frame
  // queued behind it waited out the whole build.
  std::string facts;
  facts.reserve(1u << 20);
  for (int i = 0; i < 20000; ++i) {
    facts += "Big(k" + std::to_string(i / 2) + " | v" + std::to_string(i) +
             ")\n";
  }
  JsonObjectBuilder attach;
  attach.Set("type", "attach").Set("id", uint64_t{1}).Set("name", "big");
  attach.Set("facts", facts);
  ASSERT_TRUE(f.Send(attach.Build().Serialize()).ok());
  ASSERT_TRUE(f.Send(R"({"type":"health","id":2})").ok());

  // The health ack overtakes the attach ack: admin work happens off the
  // reader thread and acks when ready.
  Result<WireResponse> first = f.client.ReadResponse(kIo);
  ASSERT_TRUE(first.ok()) << first.error();
  EXPECT_EQ(first->type, "health")
      << "a parked attach must not block unrelated frames; got "
      << first->raw.Serialize();
  // The ordering above is the property; the ack itself just needs to land
  // eventually. Sanitizer builds slow the 20k-fact parse well past the
  // usual IO window, so give it a generous one.
  Result<WireResponse> second = f.client.ReadResponse(milliseconds(120'000));
  ASSERT_TRUE(second.ok()) << second.error();
  ASSERT_EQ(second->type, "attach_ack") << second->raw.Serialize();
  EXPECT_EQ(second->raw.Find("name")->AsString(), "big");
  EXPECT_EQ(second->raw.Find("facts")->AsInt(), 20000);

  // The attach ack is still read-your-writes: the instance serves once
  // acked.
  ASSERT_TRUE(f.Send(SolveFrameFor(3, "Big(x | y)", "big")).ok());
  Result<WireResponse> solved = f.client.WaitTerminal(3, kIo);
  ASSERT_TRUE(solved.ok()) << solved.error();
  EXPECT_EQ(solved->verdict, "certain");
}

TEST(DaemonTest, StartFailsCleanlyOnAddressInUse) {
  DaemonOptions options;
  DaemonFixture f(options);
  DaemonOptions clash;
  clash.host = "127.0.0.1";
  clash.port = f.daemon->port();
  SolveDaemon second(Db("R(a | b)"), clash);
  Result<bool> started = second.Start();
  ASSERT_FALSE(started.ok()) << "binding a taken port must fail";
  EXPECT_EQ(started.code(), ErrorCode::kInternal);
  EXPECT_TRUE(second.Shutdown(milliseconds(0)));
}

}  // namespace
}  // namespace cqa
