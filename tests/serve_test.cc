// Unit tests for the serve layer building blocks — BoundedQueue,
// BackoffPolicy, StatsCollector — and the SolveService happy paths:
// verdict correctness, budget inheritance, retry accounting, cancellation,
// shedding, and shutdown. The adversarial end of the spectrum lives in
// serve_chaos_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "cqa/base/backoff.h"
#include "cqa/gen/families.h"
#include "cqa/query/parser.h"
#include "cqa/serve/bounded_queue.h"
#include "cqa/serve/service.h"
#include "cqa/serve/stats.h"

namespace cqa {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

std::shared_ptr<const Database> Db(const char* text) {
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return std::make_shared<const Database>(std::move(db.value()));
}

// ---------------------------------------------------------------------------
// BoundedQueue

TEST(BoundedQueueTest, FifoWithCapacityLimit) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3)) << "full queue must shed";
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.TryPush(3));
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 3);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, CloseDrainsBacklogThenStopsConsumers) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  q.Close();
  EXPECT_FALSE(q.TryPush(3)) << "closed queue rejects producers";
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_FALSE(q.Pop(&out)) << "closed and empty: consumers exit";
}

TEST(BoundedQueueTest, DrainNowRemovesEverythingAtOnce) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.TryPush(i));
  std::vector<int> drained = q.DrainNow();
  EXPECT_EQ(drained.size(), 5u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, ConcurrentProducersConsumersConserveItems) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> q(8);
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int item = 0;
      while (q.Pop(&item)) {
        sum.fetch_add(item);
        popped.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = p * kPerProducer + i;
        while (!q.TryPush(item)) std::this_thread::yield();
      }
    });
  }
  for (std::thread& t : producers) t.join();
  q.Close();
  for (std::thread& t : threads) t.join();
  int total = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), total);
  EXPECT_EQ(sum.load(), static_cast<long long>(total) * (total - 1) / 2);
}

TEST(BoundedQueueTest, BeforePredicatePopsMinimumWithFifoTies) {
  // Priority order: pop the smallest `first`; ties must come out in push
  // order (the discipline the EDF queue relies on for equal deadlines).
  using Item = std::pair<int, int>;  // (key, push sequence)
  BoundedQueue<Item> q(8, [](const Item& a, const Item& b) {
    return a.first < b.first;
  });
  EXPECT_TRUE(q.TryPush({5, 0}));
  EXPECT_TRUE(q.TryPush({1, 1}));
  EXPECT_TRUE(q.TryPush({5, 2}));
  EXPECT_TRUE(q.TryPush({1, 3}));
  EXPECT_TRUE(q.TryPush({3, 4}));
  Item out;
  std::vector<Item> popped;
  while (q.TryPop(&out)) popped.push_back(out);
  std::vector<Item> expected = {{1, 1}, {1, 3}, {3, 4}, {5, 0}, {5, 2}};
  EXPECT_EQ(popped, expected);
}

TEST(BoundedQueueTest, AllEqualKeysDegradeToExactFifo) {
  BoundedQueue<std::pair<int, int>> q(
      8, [](const auto& a, const auto& b) { return a.first < b.first; });
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(q.TryPush({7, i}));
  std::pair<int, int> out;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out.second, i);
  }
}

// ---------------------------------------------------------------------------
// BackoffPolicy

TEST(BackoffTest, DeterministicLowerBoundWithoutRng) {
  BackoffPolicy policy;
  policy.initial = milliseconds(10);
  policy.multiplier = 2.0;
  policy.max_delay = milliseconds(80);
  policy.jitter = 0.5;
  // Without an rng the jitter term drops: delay = base * (1 - jitter).
  EXPECT_EQ(policy.DelayFor(1), milliseconds(5));
  EXPECT_EQ(policy.DelayFor(2), milliseconds(10));
  EXPECT_EQ(policy.DelayFor(3), milliseconds(20));
  EXPECT_EQ(policy.DelayFor(4), milliseconds(40));
  EXPECT_EQ(policy.DelayFor(5), milliseconds(40)) << "capped at max_delay";
  EXPECT_EQ(policy.DelayFor(50), milliseconds(40)) << "no overflow blowup";
  EXPECT_EQ(policy.DelayFor(0), policy.DelayFor(1)) << "attempts clamp to 1";
}

TEST(BackoffTest, JitterStaysWithinTheConfiguredBand) {
  BackoffPolicy policy;
  policy.initial = milliseconds(100);
  policy.multiplier = 2.0;
  policy.max_delay = milliseconds(1'000);
  policy.jitter = 0.5;
  Rng rng(99);
  for (int attempt = 1; attempt <= 4; ++attempt) {
    int64_t base = std::min<int64_t>(100 << (attempt - 1), 1'000);
    for (int i = 0; i < 100; ++i) {
      milliseconds d = policy.DelayFor(attempt, &rng);
      EXPECT_GE(d.count(), base / 2) << "attempt " << attempt;
      EXPECT_LT(d.count(), base) << "attempt " << attempt;
    }
  }
}

TEST(BackoffTest, ReproducibleFromSeed) {
  BackoffPolicy policy;
  Rng a(7), b(7);
  for (int attempt = 1; attempt <= 10; ++attempt) {
    EXPECT_EQ(policy.DelayFor(attempt, &a), policy.DelayFor(attempt, &b));
  }
}

// ---------------------------------------------------------------------------
// StatsCollector

TEST(StatsTest, CountersAndNearestRankPercentiles) {
  StatsCollector stats;
  for (int i = 0; i < 3; ++i) stats.RecordSubmitted();
  stats.RecordAccepted();
  stats.RecordAccepted();
  stats.RecordShed();
  ServiceStats snap = stats.Snapshot();
  EXPECT_EQ(snap.submitted, 3u);
  EXPECT_EQ(snap.submitted, snap.accepted + snap.shed);

  StatsCollector lat;
  for (uint64_t us = 1; us <= 100; ++us) {
    lat.RecordStarted();
    lat.RecordTerminal(/*started=*/true, /*cancelled=*/false, /*ok=*/true,
                       /*degraded=*/false, microseconds(us));
  }
  ServiceStats s = lat.Snapshot();
  EXPECT_EQ(s.completed, 100u);
  EXPECT_EQ(s.inflight, 0u);
  EXPECT_EQ(s.latency_count, 100u);
  EXPECT_EQ(s.latency_p50_us, 50u);
  EXPECT_EQ(s.latency_p90_us, 90u);
  EXPECT_EQ(s.latency_p99_us, 99u);
  EXPECT_EQ(s.latency_max_us, 100u);
  EXPECT_NE(s.ToString().find("completed 100"), std::string::npos);
}

TEST(StatsTest, TerminalKindsAreDisjoint) {
  StatsCollector stats;
  stats.RecordStarted();
  stats.RecordTerminal(true, /*cancelled=*/true, /*ok=*/false, false,
                       microseconds(5));
  stats.RecordStarted();
  stats.RecordTerminal(true, false, /*ok=*/false, false, microseconds(5));
  stats.RecordStarted();
  stats.RecordTerminal(true, false, /*ok=*/true, /*degraded=*/true,
                       microseconds(5));
  ServiceStats s = stats.Snapshot();
  EXPECT_EQ(s.cancelled, 1u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.degraded, 1u);
  EXPECT_EQ(s.inflight, 0u);
}

TEST(StatsTest, EmptyWindowReportsZeroPercentilesWithoutReadingSamples) {
  // Regression: percentiles over an empty latency window must report zeros
  // (and must not index into the empty sample buffer).
  StatsCollector stats;
  stats.RecordSubmitted();
  stats.RecordShed();  // shed requests record no latency sample
  ServiceStats s = stats.Snapshot();
  EXPECT_EQ(s.latency_count, 0u);
  EXPECT_EQ(s.latency_p50_us, 0u);
  EXPECT_EQ(s.latency_p90_us, 0u);
  EXPECT_EQ(s.latency_p99_us, 0u);
  EXPECT_EQ(s.latency_max_us, 0u);
  EXPECT_NE(s.ToString().find("p50 0"), std::string::npos);
}

TEST(StatsTest, SingleSampleWindowClampsEveryPercentile) {
  StatsCollector stats;
  stats.RecordStarted();
  stats.RecordTerminal(true, false, /*ok=*/true, false, microseconds(42));
  ServiceStats s = stats.Snapshot();
  EXPECT_EQ(s.latency_p50_us, 42u);
  EXPECT_EQ(s.latency_p99_us, 42u);
  EXPECT_EQ(s.latency_max_us, 42u);
}

TEST(StatsTest, CancelledWhileQueuedCountsInExactlyOneBucket) {
  // Regression: a request cancelled before any worker started it must land
  // in `cancelled` only — and must not decrement `inflight` below zero.
  StatsCollector stats;
  stats.RecordSubmitted();
  stats.RecordAccepted();
  stats.RecordTerminal(/*started=*/false, /*cancelled=*/true, /*ok=*/false,
                       /*degraded=*/false, microseconds(10));
  ServiceStats s = stats.Snapshot();
  EXPECT_EQ(s.cancelled, 1u);
  EXPECT_EQ(s.completed, 0u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.degraded, 0u);
  EXPECT_EQ(s.inflight, 0u) << "never-started terminal must not touch inflight";
  EXPECT_EQ(s.cancelled + s.completed + s.failed, 1u);
}

// ---------------------------------------------------------------------------
// SolveService

// Collects responses thread-safely and waits for an expected count.
struct ResponseSink {
  std::mutex mu;
  std::vector<ServeResponse> responses;

  SolveService::Callback Callback() {
    return [this](const ServeResponse& r) {
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(r);
    };
  }

  size_t Count() {
    std::lock_guard<std::mutex> lock(mu);
    return responses.size();
  }

  // Bounded wait for `n` responses (polling; tests fail loudly on timeout).
  bool WaitForCount(size_t n) {
    for (int i = 0; i < 20'000 && Count() < n; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Count() >= n;
  }
};

TEST(SolveServiceTest, BatchCompletesWithCorrectVerdicts) {
  auto db = Db("R(a | b), R(a | c)\nS(b | a)");
  ServiceOptions options;
  options.workers = 4;
  SolveService service(options);
  ResponseSink sink;
  Result<uint64_t> certain =
      service.Submit(ServeJob(Q("R(x | y)"), db), sink.Callback());
  Result<uint64_t> not_certain = service.Submit(
      ServeJob(Q("R(x | y), not S(y | x)"), db), sink.Callback());
  ASSERT_TRUE(certain.ok());
  ASSERT_TRUE(not_certain.ok());
  EXPECT_NE(certain.value(), not_certain.value());
  EXPECT_TRUE(service.Shutdown(milliseconds(10'000))) << "batch must drain";
  ASSERT_EQ(sink.Count(), 2u);
  for (const ServeResponse& r : sink.responses) {
    EXPECT_EQ(r.state, RequestState::kCompleted);
    ASSERT_TRUE(r.result.ok()) << r.result.error();
    EXPECT_EQ(r.attempts, 1);
    if (r.id == certain.value()) {
      EXPECT_EQ(r.result->verdict, Verdict::kCertain);
    } else {
      EXPECT_EQ(r.result->verdict, Verdict::kNotCertain);
    }
  }
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.latency_count, 2u);
}

TEST(SolveServiceTest, ServiceDeadlineIsInheritedByEveryRequest) {
  // An already-expired service deadline: each attempt's budget trips on its
  // first probe, and the kAuto path degrades to an (empty) sampling stage,
  // so requests complete with the honest kExhausted verdict. The cyclic
  // pigeonhole query forces the governed backtracking solver (a q1-shaped
  // query would be answered by the ungoverned poly-time matcher before the
  // deadline could bite).
  Database db = PigeonholeDatabase(6);
  auto shared = std::make_shared<const Database>(std::move(db));
  ServiceOptions options;
  options.workers = 2;
  options.service_deadline = Budget::Clock::now() - milliseconds(1);
  SolveService service(options);
  ResponseSink sink;
  ASSERT_TRUE(
      service.Submit(ServeJob(PigeonholeCyclicQuery(), shared), sink.Callback())
          .ok());
  EXPECT_TRUE(service.Shutdown(milliseconds(10'000)));
  ASSERT_EQ(sink.Count(), 1u);
  const ServeResponse& r = sink.responses[0];
  EXPECT_EQ(r.state, RequestState::kCompleted);
  ASSERT_TRUE(r.result.ok()) << r.result.error();
  EXPECT_EQ(r.result->verdict, Verdict::kExhausted);
  EXPECT_EQ(service.Stats().degraded, 1u);
}

TEST(SolveServiceTest, RetriesExhaustThenSurfaceTheTypedError) {
  auto db = Db("R(a | b), R(a | c)\nS(b | a)");
  ServiceOptions options;
  options.workers = 1;
  options.max_retries = 2;
  options.backoff.initial = milliseconds(1);
  options.backoff.jitter = 0.0;
  SolveService service(options);
  ResponseSink sink;
  ServeJob job(Q("R(x | y), not S(y | x)"), db);
  job.method = SolverMethod::kBacktracking;  // a governed, probing solver
  job.degrade_to_sampling = false;  // typed error instead of verdict
  job.fail_after_probes = 1;        // every attempt trips instantly
  ASSERT_TRUE(service.Submit(std::move(job), sink.Callback()).ok());
  // Let the retries play out before shutting down: draining suppresses
  // retries (by design), which would truncate the attempt count.
  ASSERT_TRUE(sink.WaitForCount(1)) << "request never completed";
  EXPECT_TRUE(service.Shutdown(milliseconds(10'000)));
  ASSERT_EQ(sink.Count(), 1u);
  const ServeResponse& r = sink.responses[0];
  EXPECT_EQ(r.state, RequestState::kCompleted);
  ASSERT_FALSE(r.result.ok());
  EXPECT_EQ(r.result.code(), ErrorCode::kBudgetExhausted);
  EXPECT_EQ(r.attempts, 3) << "initial attempt + max_retries";
  EXPECT_EQ(service.Stats().retries, 2u);
  EXPECT_EQ(service.Stats().failed, 1u);
}

TEST(SolveServiceTest, RetrySucceedsAfterATransientFault) {
  auto db = Db("R(a | b), R(a | c)\nS(b | a)");
  ServiceOptions options;
  options.workers = 1;
  options.max_retries = 1;
  options.backoff.initial = milliseconds(1);
  SolveService service(options);
  ResponseSink sink;
  ServeJob job(Q("R(x | y)"), db);
  job.method = SolverMethod::kBacktracking;  // a governed, probing solver
  job.degrade_to_sampling = false;
  job.fail_after_probes = 1;
  job.fault_attempts = 1;  // only the first attempt is faulted
  ASSERT_TRUE(service.Submit(std::move(job), sink.Callback()).ok());
  ASSERT_TRUE(sink.WaitForCount(1)) << "request never completed";
  EXPECT_TRUE(service.Shutdown(milliseconds(10'000)));
  ASSERT_EQ(sink.Count(), 1u);
  const ServeResponse& r = sink.responses[0];
  EXPECT_EQ(r.state, RequestState::kCompleted);
  ASSERT_TRUE(r.result.ok()) << r.result.error();
  EXPECT_EQ(r.result->verdict, Verdict::kCertain);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_EQ(service.Stats().retries, 1u);
}

TEST(SolveServiceTest, WorkerCrashIsNeverRetried) {
  // Retry-policy boundary: the sandbox's terminal codes mean deterministic
  // re-failure (a crashing solve crashes again, a capped solve breaches
  // again), so they are excluded from the retry condition — unlike the
  // genuinely transient kOverloaded and the budget codes.
  EXPECT_FALSE(IsRetryable(ErrorCode::kWorkerCrashed));
  EXPECT_FALSE(IsRetryable(ErrorCode::kResourceExhausted));
  EXPECT_FALSE(IsResourceExhaustion(ErrorCode::kWorkerCrashed));
  EXPECT_FALSE(IsResourceExhaustion(ErrorCode::kResourceExhausted));
  EXPECT_TRUE(IsRetryable(ErrorCode::kOverloaded)) << "backoff unchanged";
  EXPECT_TRUE(IsRetryable(ErrorCode::kDeadlineExceeded));

  // End to end: a generous retry allowance must not resurrect a solve that
  // segfaults its sandbox child — exactly one attempt, one typed terminal.
  auto db = Db("R(a | b), R(a | c)\nS(b | a)");
  ServiceOptions options;
  options.workers = 1;
  options.max_retries = 3;
  options.backoff.initial = milliseconds(1);
  SolveService service(options);
  ResponseSink sink;
  ServeJob job(Q("R(x | y), not S(y | x)"), db);
  job.method = SolverMethod::kBacktracking;  // a governed, probing solver
  job.degrade_to_sampling = false;
  job.isolation = IsolationMode::kFork;  // contain the injected crash
  job.crash_after_probes = 1;
  ASSERT_TRUE(service.Submit(std::move(job), sink.Callback()).ok());
  ASSERT_TRUE(sink.WaitForCount(1)) << "request never completed";
  EXPECT_TRUE(service.Shutdown(milliseconds(10'000)));
  ASSERT_EQ(sink.Count(), 1u);
  const ServeResponse& r = sink.responses[0];
  EXPECT_EQ(r.state, RequestState::kCompleted);
  ASSERT_FALSE(r.result.ok());
  EXPECT_EQ(r.result.code(), ErrorCode::kWorkerCrashed);
  EXPECT_EQ(r.attempts, 1) << "crashes are deterministic; never retried";
  EXPECT_EQ(service.Stats().retries, 0u);
  EXPECT_EQ(service.Stats().failed, 1u);
  EXPECT_EQ(service.Stats().sandbox_crashes, 1u);
}

TEST(SolveServiceTest, DegradedVerdictIsSurfacedNotRetried) {
  // With degradation on, an exhausted exact stage yields a qualified
  // sampling verdict — a completion, so the retry machinery must not run.
  Database db = PigeonholeDatabase(12);
  auto shared = std::make_shared<const Database>(std::move(db));
  ServiceOptions options;
  options.workers = 1;
  options.max_retries = 5;
  SolveService service(options);
  ResponseSink sink;
  ServeJob job(PigeonholeCyclicQuery(), shared);
  // Exhaust the exact stage by step budget, not wall-clock: a step limit
  // trips identically on a loaded or sanitized build, and the generous
  // timeout leaves sampling all the time it needs for its verdict.
  job.max_steps = 200;
  job.timeout = milliseconds(10'000);
  ASSERT_TRUE(service.Submit(std::move(job), sink.Callback()).ok());
  EXPECT_TRUE(service.Shutdown(milliseconds(20'000)));
  ASSERT_EQ(sink.Count(), 1u);
  const ServeResponse& r = sink.responses[0];
  EXPECT_EQ(r.state, RequestState::kCompleted);
  ASSERT_TRUE(r.result.ok()) << r.result.error();
  EXPECT_EQ(r.result->verdict, Verdict::kProbablyCertain);
  EXPECT_EQ(r.attempts, 1) << "degraded completions are not retried";
  EXPECT_EQ(service.Stats().retries, 0u);
  EXPECT_EQ(service.Stats().degraded, 1u);
}

TEST(SolveServiceTest, SubmitAfterShutdownIsShedAsOverloaded) {
  auto db = Db("R(a | b)");
  SolveService service(ServiceOptions{});
  EXPECT_TRUE(service.Shutdown(milliseconds(1'000)));
  ResponseSink sink;
  Result<uint64_t> id =
      service.Submit(ServeJob(Q("R(x | y)"), db), sink.Callback());
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.code(), ErrorCode::kOverloaded);
  EXPECT_EQ(sink.Count(), 0u) << "shed requests never get a callback";
  EXPECT_EQ(service.Stats().shed, 1u);
}

TEST(SolveServiceTest, ShutdownIsIdempotent) {
  SolveService service(ServiceOptions{});
  EXPECT_TRUE(service.Shutdown(milliseconds(100)));
  EXPECT_TRUE(service.Shutdown(milliseconds(100)));
  // Destructor after explicit shutdown is a no-op.
}

TEST(SolveServiceTest, CancelUnknownIdReturnsFalse) {
  SolveService service(ServiceOptions{});
  EXPECT_FALSE(service.Cancel(424242));
  (void)service.Shutdown(milliseconds(100));
}

TEST(SolveServiceTest, CancelledQueuedRequestNeverRuns) {
  // One worker pinned on an effectively endless search; a second request
  // sits in the queue, is cancelled, and must terminate with zero attempts.
  Database hard = PigeonholeDatabase(13);
  auto hard_db = std::make_shared<const Database>(std::move(hard));
  auto easy_db = Db("R(a | b)");
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 4;
  SolveService service(options);
  ResponseSink sink;
  ServeJob blocker(PigeonholeCyclicQuery(), hard_db);
  blocker.degrade_to_sampling = false;
  Result<uint64_t> blocker_id =
      service.Submit(std::move(blocker), sink.Callback());
  ASSERT_TRUE(blocker_id.ok());
  // Wait until the blocker is actually running so the next job queues.
  for (int i = 0; i < 2'000 && service.Stats().inflight == 0; ++i) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  ASSERT_EQ(service.Stats().inflight, 1u) << "blocker never started";
  Result<uint64_t> queued_id =
      service.Submit(ServeJob(Q("R(x | y)"), easy_db), sink.Callback());
  ASSERT_TRUE(queued_id.ok());
  EXPECT_TRUE(service.Cancel(queued_id.value()));
  EXPECT_TRUE(service.Cancel(blocker_id.value()));
  EXPECT_TRUE(service.Shutdown(milliseconds(20'000)));
  ASSERT_EQ(sink.Count(), 2u);
  for (const ServeResponse& r : sink.responses) {
    EXPECT_EQ(r.state, RequestState::kCancelled);
    ASSERT_FALSE(r.result.ok());
    EXPECT_EQ(r.result.code(), ErrorCode::kCancelled);
    if (r.id == queued_id.value()) {
      EXPECT_EQ(r.attempts, 0) << "cancelled while queued: never attempted";
    }
  }
  EXPECT_EQ(service.Stats().cancelled, 2u);
}

// Mixed-deadline load on one worker: a blocker occupies the worker while
// three relaxed no-deadline sleepers and one urgent submit-anchored job sit
// in the queue. Returns the service stats and the urgent job's result.
struct MixedLoadOutcome {
  ServiceStats stats;
  Result<SolveReport> urgent = Result<SolveReport>::Error(ErrorCode::kInternal,
                                                          "no response");
};

MixedLoadOutcome RunMixedDeadlineLoad(QueueDiscipline discipline) {
  auto db = Db("R(a | b), R(a | c)\nS(b | a)");
  ServiceOptions options;
  options.workers = 1;
  options.discipline = discipline;
  SolveService service(options);
  ResponseSink sink;

  // Blocker: pins the single worker for 150ms.
  ServeJob blocker(Q("R(x | y)"), db);
  blocker.chaos_sleep = milliseconds(150);
  EXPECT_TRUE(service.Submit(std::move(blocker), sink.Callback()).ok());
  for (int i = 0; i < 2'000 && service.Stats().inflight == 0; ++i) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_EQ(service.Stats().inflight, 1u) << "blocker never started";

  // Three relaxed jobs (250ms each, no deadline) queued ahead of the
  // urgent one in FIFO order.
  for (int i = 0; i < 3; ++i) {
    ServeJob relaxed(Q("R(x | y)"), db);
    relaxed.chaos_sleep = milliseconds(250);
    EXPECT_TRUE(service.Submit(std::move(relaxed), sink.Callback()).ok());
  }
  // Urgent job: 500ms budget anchored at submit time. Under FIFO it waits
  // ~150 + 3*250 = 900ms in the queue and expires before it runs; under
  // EDF it is popped first (the others sort last, having no deadline) and
  // runs at ~150ms with most of its budget intact.
  ServeJob urgent(Q("R(x | y)"), db);
  urgent.timeout = milliseconds(500);
  urgent.deadline_from_submit = true;
  urgent.degrade_to_sampling = false;  // typed error instead of a verdict
  // The governed solver probes the budget; the poly-time matcher that would
  // otherwise answer this q1-shaped query ignores deadlines entirely.
  urgent.method = SolverMethod::kBacktracking;
  Result<uint64_t> urgent_id = service.Submit(std::move(urgent),
                                              sink.Callback());
  EXPECT_TRUE(urgent_id.ok());

  EXPECT_TRUE(sink.WaitForCount(5)) << "responses missing";
  EXPECT_TRUE(service.Shutdown(milliseconds(10'000)));
  MixedLoadOutcome out;
  out.stats = service.Stats();
  for (const ServeResponse& r : sink.responses) {
    if (r.id == urgent_id.value()) out.urgent = r.result;
  }
  return out;
}

TEST(SolveServiceTest, EdfServesUrgentJobsBeforeTheyExpireInTheQueue) {
  MixedLoadOutcome fifo = RunMixedDeadlineLoad(QueueDiscipline::kFifo);
  ASSERT_FALSE(fifo.urgent.ok())
      << "FIFO must let the urgent job expire while queued";
  EXPECT_EQ(fifo.urgent.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(fifo.stats.failed, 1u);
  EXPECT_EQ(fifo.stats.completed, 4u);

  MixedLoadOutcome edf = RunMixedDeadlineLoad(QueueDiscipline::kEdf);
  ASSERT_TRUE(edf.urgent.ok())
      << "EDF must run the urgent job first: " << edf.urgent.error();
  EXPECT_EQ(edf.urgent->verdict, Verdict::kCertain);
  EXPECT_EQ(edf.stats.failed, 0u);
  EXPECT_EQ(edf.stats.completed, 5u);
}

TEST(SolveServiceTest, DestructorShutsDownAnIdleService) {
  auto db = Db("R(a | b)");
  ResponseSink sink;
  {
    ServiceOptions options;
    options.workers = 2;
    SolveService service(options);
    ASSERT_TRUE(
        service.Submit(ServeJob(Q("R(x | y)"), db), sink.Callback()).ok());
    // Give the pool a moment; the destructor's zero drain deadline then
    // cancels anything still pending — either way the response arrives.
    for (int i = 0; i < 2'000 && sink.Count() == 0; ++i) {
      std::this_thread::sleep_for(milliseconds(1));
    }
  }
  EXPECT_EQ(sink.Count(), 1u);
}

}  // namespace
}  // namespace cqa
