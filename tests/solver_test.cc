#include <gtest/gtest.h>

#include "cqa/certainty/solver.h"
#include "cqa/gen/random_db.h"
#include "cqa/query/parser.h"
#include "cqa/reductions/bpm.h"
#include "cqa/reductions/q4.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

TEST(SolverTest, AutoPicksAlgorithm1ForFoQueries) {
  Query q = Q("P(x | y), not N('c' | y)");
  Rng rng(901);
  Database db = GenerateRandomDatabaseFor(q, {}, &rng);
  Result<SolveReport> report = SolveCertainty(q, db);
  ASSERT_TRUE(report.ok()) << report.error();
  EXPECT_EQ(report->used, SolverMethod::kAlgorithm1);
  EXPECT_EQ(report->classification.cls, CertaintyClass::kFO);
}

TEST(SolverTest, AutoPicksMatchingForQ1) {
  Query q1 = MakeQ1();
  Rng rng(907);
  Database db = GenerateRandomDatabaseFor(q1, {}, &rng);
  Result<SolveReport> report = SolveCertainty(q1, db);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->used, SolverMethod::kMatchingQ1);
}

TEST(SolverTest, AutoFallsBackToBacktracking) {
  Query q4 = MakeQ4();
  Rng rng(911);
  Database db = GenerateRandomDatabaseFor(q4, {}, &rng);
  Result<SolveReport> report = SolveCertainty(q4, db);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->used, SolverMethod::kBacktracking);
}

TEST(SolverTest, AllApplicableMethodsAgree) {
  Query q = Q("P(x | y), not N(x | y)");
  Rng rng(919);
  RandomDbOptions opts;
  opts.blocks_per_relation = 3;
  for (int i = 0; i < 100; ++i) {
    Database db = GenerateRandomDatabaseFor(q, opts, &rng);
    Result<SolveReport> naive = SolveCertainty(q, db, SolverMethod::kNaive);
    ASSERT_TRUE(naive.ok());
    for (SolverMethod m :
         {SolverMethod::kRewriting, SolverMethod::kAlgorithm1,
          SolverMethod::kBacktracking, SolverMethod::kAuto}) {
      Result<SolveReport> r = SolveCertainty(q, db, m);
      ASSERT_TRUE(r.ok()) << ToString(m) << ": " << r.error();
      EXPECT_EQ(r->certain, naive->certain) << ToString(m);
    }
  }
}

TEST(SolverTest, MethodErrorsAreSurfaced) {
  Query q1 = MakeQ1();
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  Database db(s);
  // FO-only solvers refuse the cyclic q1.
  EXPECT_FALSE(SolveCertainty(q1, db, SolverMethod::kRewriting).ok());
  EXPECT_FALSE(SolveCertainty(q1, db, SolverMethod::kAlgorithm1).ok());
  // Matching solver refuses a non-q1 shape.
  EXPECT_FALSE(
      SolveCertainty(Q("R(x | y)"), db, SolverMethod::kMatchingQ1).ok());
}

TEST(SolverTest, MethodNames) {
  EXPECT_EQ(ToString(SolverMethod::kAuto), "auto");
  EXPECT_EQ(ToString(SolverMethod::kRewriting), "fo-rewriting");
  EXPECT_EQ(ToString(SolverMethod::kAlgorithm1), "algorithm1");
  EXPECT_EQ(ToString(SolverMethod::kBacktracking), "backtracking");
  EXPECT_EQ(ToString(SolverMethod::kNaive), "naive");
  EXPECT_EQ(ToString(SolverMethod::kMatchingQ1), "matching-q1");
  EXPECT_EQ(ToString(SolverMethod::kSampling), "sampling");
  EXPECT_EQ(ToString(Verdict::kCertain), "certain");
  EXPECT_EQ(ToString(Verdict::kNotCertain), "not-certain");
  EXPECT_EQ(ToString(Verdict::kProbablyCertain), "probably-certain");
  EXPECT_EQ(ToString(Verdict::kExhausted), "exhausted");
}

}  // namespace
}  // namespace cqa
