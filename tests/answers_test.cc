#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cqa/answers/cursor.h"
#include "cqa/answers/enumerator.h"
#include "cqa/base/rng.h"
#include "cqa/certainty/certain_answers.h"
#include "cqa/gen/random_db.h"
#include "cqa/gen/random_query.h"
#include "cqa/query/parser.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

Database Db(const char* text) {
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return db.value();
}

// Drives the enumerator to completion with the given chunk size and
// returns the concatenated answers (asserting span bookkeeping on the
// way: chunks tile [0, total) with no gaps and no overlaps).
std::vector<Tuple> Drain(const Query& q, const std::vector<Symbol>& vars,
                         const Database& db, uint64_t max_chunk,
                         SolverMethod method = SolverMethod::kAuto) {
  std::vector<Tuple> out;
  EnumerateOptions opts;
  opts.max_chunk = max_chunk;
  opts.method = method;
  for (int guard = 0; guard < 100'000; ++guard) {
    Result<AnswerChunk> chunk = EnumerateAnswerChunk(q, vars, db, opts);
    EXPECT_TRUE(chunk.ok()) << chunk.error();
    if (!chunk.ok()) return out;
    EXPECT_EQ(chunk->start, opts.start);
    EXPECT_FALSE(chunk->exhausted);
    out.insert(out.end(), chunk->answers.begin(), chunk->answers.end());
    if (chunk->done) {
      EXPECT_EQ(chunk->next, chunk->total);
      return out;
    }
    EXPECT_LT(chunk->start, chunk->next);
    opts.start = chunk->next;
  }
  ADD_FAILURE() << "enumeration did not terminate";
  return out;
}

TEST(AnswerEnumeratorTest, ChunkConcatenationMatchesOneShot) {
  Query q = Q("P(x | y), not N(x | y)");
  Symbol x = InternSymbol("x");
  Rng rng(4201);
  RandomDbOptions opts;
  opts.blocks_per_relation = 5;
  opts.domain_size = 4;
  for (int trial = 0; trial < 20; ++trial) {
    Database db = GenerateRandomDatabaseFor(q, opts, &rng);
    Result<CertainAnswers> one_shot = ComputeCertainAnswers(q, {x}, db);
    ASSERT_TRUE(one_shot.ok()) << one_shot.error();
    // One-shot answers sorted canonically (the enumerator's order).
    std::vector<Tuple> expected = one_shot->answers;
    std::sort(expected.begin(), expected.end(),
              [](const Tuple& a, const Tuple& b) {
                return a[0].name() < b[0].name();
              });
    for (uint64_t chunk_size : {1u, 2u, 3u, 7u, 64u}) {
      EXPECT_EQ(Drain(q, {x}, db, chunk_size), expected)
          << "chunk size " << chunk_size << "\n" << db.ToString();
    }
  }
}

TEST(AnswerEnumeratorTest, MultiVariableCanonicalOrder) {
  // Two free variables: answers must come out lexicographically by
  // (x spelling, y spelling), the first free var most significant.
  Query q = Q("R(x | y), not S(x | y)");
  Database db = Db(R"(
    R(b | v2), R(a | v1)
    R(d | v2), R(c | v1)
    S(zz | zz)
  )");
  Symbol x = InternSymbol("x"), y = InternSymbol("y");
  std::vector<Tuple> got = Drain(q, {x, y}, db, 1);
  ASSERT_EQ(got.size(), 4u);
  std::vector<Tuple> sorted = got;
  std::sort(sorted.begin(), sorted.end(), [](const Tuple& a, const Tuple& b) {
    if (a[0].name() != b[0].name()) return a[0].name() < b[0].name();
    return a[1].name() < b[1].name();
  });
  EXPECT_EQ(got, sorted);
  // Swapping the free-variable order changes the major sort key.
  std::vector<Tuple> swapped = Drain(q, {y, x}, db, 2);
  ASSERT_EQ(swapped.size(), 4u);
  EXPECT_EQ(swapped[0][0].name(), "v1");
}

TEST(AnswerEnumeratorTest, StartBeyondSpaceIsTyped) {
  Query q = Q("P(x | y), not N(x | y)");
  Database db = Db("P(k1 | a)");
  EnumerateOptions opts;
  opts.start = 99;  // candidate space has exactly one position
  Result<AnswerChunk> chunk =
      EnumerateAnswerChunk(q, {InternSymbol("x")}, db, opts);
  ASSERT_FALSE(chunk.ok());
  EXPECT_EQ(chunk.code(), ErrorCode::kParse);
}

TEST(AnswerEnumeratorTest, SamplingMethodRejected) {
  Query q = Q("P(x | y), not N(x | y)");
  Database db = Db("P(k1 | a)");
  EnumerateOptions opts;
  opts.method = SolverMethod::kSampling;
  Result<AnswerChunk> chunk =
      EnumerateAnswerChunk(q, {InternSymbol("x")}, db, opts);
  ASSERT_FALSE(chunk.ok());
  EXPECT_EQ(chunk.code(), ErrorCode::kUnsupported);
}

TEST(AnswerEnumeratorTest, FreeVarWithoutPositiveOccurrenceRejected) {
  Query q = Q("P(x | y), not N(x | y)");
  Database db = Db("P(k1 | a)");
  Result<AnswerChunk> chunk =
      EnumerateAnswerChunk(q, {InternSymbol("zonk")}, db, {});
  ASSERT_FALSE(chunk.ok());
  EXPECT_EQ(chunk.code(), ErrorCode::kUnsupported);
}

TEST(AnswerEnumeratorTest, BudgetPartialChunkIsMarkedExhausted) {
  Query q = Q("P(x | y), not N(x | y)");
  Database db = Db("P(k1 | a), P(k2 | a), P(k3 | a), P(k4 | a)");
  // Force exhaustion at every probe site in turn. Each run must end in
  // exactly one of: a typed error with nothing decided, a
  // correct-but-partial chunk marked `exhausted`, or (once the trip
  // point lies past the workload) a complete chunk — never a silently
  // short result.
  bool saw_partial = false;
  for (uint64_t trip = 1; trip < 64; ++trip) {
    Budget budget;
    budget.fail_after_probes = trip;
    EnumerateOptions opts;
    opts.max_chunk = 64;
    Result<AnswerChunk> chunk =
        EnumerateAnswerChunk(q, {InternSymbol("x")}, db, opts, &budget);
    if (!chunk.ok()) {
      EXPECT_TRUE(IsResourceExhaustion(chunk.code())) << chunk.error();
      continue;
    }
    // The decided prefix is always the true prefix, full or partial.
    ASSERT_LE(chunk->answers.size(), 4u);
    for (size_t i = 0; i < chunk->answers.size(); ++i) {
      EXPECT_EQ(chunk->answers[i][0].name(), "k" + std::to_string(i + 1));
    }
    if (chunk->exhausted) {
      saw_partial = true;
      EXPECT_FALSE(chunk->done);
      EXPECT_GT(chunk->next, 0u);
      EXPECT_LT(chunk->next, chunk->total);
    } else {
      EXPECT_TRUE(chunk->done);
      EXPECT_EQ(chunk->answers.size(), 4u);
    }
  }
  EXPECT_TRUE(saw_partial) << "no trip point produced a partial chunk";
}

TEST(AnswerEnumeratorTest, BudgetTrippedBeforeFirstCandidateIsTyped) {
  Query q = Q("P(x | y), not N(x | y)");
  Database db = Db("P(k1 | a)");
  Budget budget;
  budget.fail_after_probes = 1;
  Result<AnswerChunk> chunk =
      EnumerateAnswerChunk(q, {InternSymbol("x")}, db, {}, &budget);
  ASSERT_FALSE(chunk.ok());
  EXPECT_TRUE(IsResourceExhaustion(chunk.code()));
}

TEST(AnswerCursorTest, RoundTrip) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    AnswerCursor cursor;
    cursor.position = rng.Next();
    cursor.query_hash = rng.Next();
    cursor.fingerprint.hi = rng.Next();
    cursor.fingerprint.lo = rng.Next();
    std::string text = EncodeAnswerCursor(cursor);
    EXPECT_EQ(text.size(), 76u);
    Result<AnswerCursor> back = DecodeAnswerCursor(text);
    ASSERT_TRUE(back.ok()) << back.error();
    EXPECT_EQ(back->position, cursor.position);
    EXPECT_EQ(back->query_hash, cursor.query_hash);
    EXPECT_TRUE(back->fingerprint == cursor.fingerprint);
  }
}

TEST(AnswerCursorTest, EveryCharacterCorruptionIsCaught) {
  AnswerCursor cursor;
  cursor.position = 12'345;
  cursor.query_hash = 0xdeadbeefcafef00dull;
  cursor.fingerprint.hi = 1;
  cursor.fingerprint.lo = 2;
  std::string text = EncodeAnswerCursor(cursor);
  for (size_t i = 0; i < text.size(); ++i) {
    std::string corrupt = text;
    corrupt[i] = corrupt[i] == 'f' ? '0' : 'f';
    if (corrupt == text) continue;
    Result<AnswerCursor> back = DecodeAnswerCursor(corrupt);
    EXPECT_FALSE(back.ok()) << "flip at " << i << " went undetected";
    if (!back.ok()) EXPECT_EQ(back.code(), ErrorCode::kParse);
  }
}

TEST(AnswerCursorTest, MalformedSpellingsAreTypedNotFatal) {
  AnswerCursor cursor;
  std::string good = EncodeAnswerCursor(cursor);
  const std::string hostile[] = {
      "",
      "cqa1",
      good.substr(0, 75),
      good + "0",
      "XXXX" + good.substr(4),
      std::string(76, 'g'),
      std::string(76, '\0'),
      "cqa1" + std::string(72, 'z'),
  };
  for (const std::string& text : hostile) {
    Result<AnswerCursor> back = DecodeAnswerCursor(text);
    ASSERT_FALSE(back.ok());
    EXPECT_EQ(back.code(), ErrorCode::kParse);
  }
}

TEST(AnswerCursorTest, QueryHashSeparatesQueriesAndFreeOrders) {
  Query q1 = Q("P(x | y), not N(x | y)");
  Query q2 = Q("P(x | y), not M(x | y)");
  uint64_t h1 = AnswerQueryHash(q1, {"x"});
  EXPECT_NE(h1, AnswerQueryHash(q2, {"x"}));
  EXPECT_NE(h1, AnswerQueryHash(q1, {"y"}));
  EXPECT_NE(AnswerQueryHash(q1, {"x", "y"}), AnswerQueryHash(q1, {"y", "x"}));
  EXPECT_EQ(h1, AnswerQueryHash(Q("P(x | y), not N(x | y)"), {"x"}));
}

// Differential: the solver-backed answer set must agree with the
// first-order rewriting of Lemma 6.1 (free variables left free) on a few
// hundred random instances, and the chunked enumerator must agree with
// both under both methods.
TEST(AnswerDifferentialTest, SolverAgreesWithRewritingOnRandomInstances) {
  Rng rng(20'260'807);
  RandomQueryOptions qopts;
  qopts.max_positive = 2;
  qopts.max_negative = 2;
  qopts.max_arity = 2;
  qopts.num_vars = 3;
  RandomDbOptions dopts;
  dopts.blocks_per_relation = 3;
  dopts.domain_size = 3;
  int compared = 0;
  for (int trial = 0; trial < 600 && compared < 250; ++trial) {
    Query q = GenerateRandomQuery(qopts, &rng);
    // Free variables: every variable of the positive part (all have a
    // positive occurrence by construction).
    const SymbolSet positive_vars = q.PositiveVars();
    std::vector<Symbol> frees = positive_vars.items();
    if (frees.empty()) continue;
    Database db = GenerateRandomDatabaseFor(q, dopts, &rng);
    Result<CertainAnswers> by_rewriting =
        CertainAnswersByRewriting(q, frees, db);
    if (!by_rewriting.ok()) {
      // Outside the FO class (Theorem 4.3 with frees reified): only the
      // solver path applies; nothing to differentiate.
      ASSERT_EQ(by_rewriting.code(), ErrorCode::kUnsupported)
          << by_rewriting.error();
      continue;
    }
    Result<CertainAnswers> by_solver = ComputeCertainAnswers(q, frees, db);
    ASSERT_TRUE(by_solver.ok()) << by_solver.error();
    auto sorted = [](std::vector<Tuple> tuples) {
      std::sort(tuples.begin(), tuples.end());
      return tuples;
    };
    ASSERT_EQ(sorted(by_solver->answers), sorted(by_rewriting->answers))
        << q.ToString() << "\n" << db.ToString();
    // The streaming enumerator reproduces the same multiset in canonical
    // order under either decision engine.
    std::vector<Tuple> chunked = Drain(q, frees, db, 3);
    EXPECT_EQ(sorted(chunked), sorted(by_solver->answers))
        << q.ToString() << "\n" << db.ToString();
    EXPECT_EQ(Drain(q, frees, db, 5, SolverMethod::kRewriting), chunked)
        << q.ToString() << "\n" << db.ToString();
    ++compared;
  }
  // The generator parameters must actually exercise the rewriting class.
  EXPECT_GE(compared, 100) << "differential corpus too small";
}

}  // namespace
}  // namespace cqa
