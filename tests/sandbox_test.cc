// Fork-isolated solver sandbox: codec round-trips, exit-path → error-code
// mapping, verdict parity between in-process and forked execution across
// every engine, hard preemption of wedged solves, RSS-cap breaches, crash
// containment, and the auto-escalation policy. The concurrency-heavy end
// (fork churn under load, shutdown races, zombie accounting) lives in
// sandbox_chaos_test.cc.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cqa/gen/families.h"
#include "cqa/query/parser.h"
#include "cqa/serve/net/protocol.h"
#include "cqa/serve/sandbox/codec.h"
#include "cqa/serve/sandbox/sandbox.h"
#include "cqa/serve/service.h"

// The RSS-cap tests allocate until RLIMIT_AS makes `operator new` throw.
// Sanitizer runtimes reserve shadow address space far beyond any sane cap
// (and may abort instead of throwing), so those tests only run on plain
// builds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CQA_SANDBOX_RSS_TESTABLE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CQA_SANDBOX_RSS_TESTABLE 0
#else
#define CQA_SANDBOX_RSS_TESTABLE 1
#endif
#else
#define CQA_SANDBOX_RSS_TESTABLE 1
#endif

namespace cqa {
namespace {

using std::chrono::milliseconds;

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

Database Db(const char* text) {
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return std::move(db.value());
}

// ---------------------------------------------------------------------------
// Pipe codec

TEST(SandboxCodecTest, OkReportRoundTripsEveryField) {
  SolveReport report;
  report.certain = true;
  report.verdict = Verdict::kCertain;
  report.confidence = 0.975;
  report.samples = 42;
  report.used = SolverMethod::kBacktracking;
  report.classification.cls = CertaintyClass::kNLHard;
  report.classification.weakly_guarded = true;
  report.classification.guarded = false;
  report.classification.attack_graph_acyclic = false;
  report.classification.two_cycle = {1, 3};
  report.classification.negated_in_cycle = 1;
  report.classification.explanation = "2-cycle with one negated atom";
  SolveStage exact;
  exact.method = SolverMethod::kBacktracking;
  exact.ok = false;
  exact.error = ErrorCode::kBudgetExhausted;
  exact.steps = 1'000;
  exact.elapsed = std::chrono::microseconds(2'500);
  SolveStage sampling;
  sampling.method = SolverMethod::kSampling;
  sampling.ok = true;
  sampling.steps = 42;
  sampling.elapsed = std::chrono::microseconds(777);
  report.stages = {exact, sampling};

  std::string frame = EncodeOutcome(Result<SolveReport>(report));
  Result<SolveReport> decoded =
      Result<SolveReport>::Error(ErrorCode::kInternal, "unset");
  ASSERT_TRUE(DecodeOutcome(frame, &decoded));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->certain, report.certain);
  EXPECT_EQ(decoded->verdict, report.verdict);
  EXPECT_EQ(decoded->confidence, report.confidence);
  EXPECT_EQ(decoded->samples, report.samples);
  EXPECT_EQ(decoded->used, report.used);
  EXPECT_EQ(decoded->classification.cls, report.classification.cls);
  EXPECT_EQ(decoded->classification.weakly_guarded, true);
  EXPECT_EQ(decoded->classification.guarded, false);
  EXPECT_EQ(decoded->classification.attack_graph_acyclic, false);
  ASSERT_TRUE(decoded->classification.two_cycle.has_value());
  EXPECT_EQ(decoded->classification.two_cycle->first, 1u);
  EXPECT_EQ(decoded->classification.two_cycle->second, 3u);
  EXPECT_EQ(decoded->classification.negated_in_cycle, 1);
  EXPECT_EQ(decoded->classification.explanation,
            report.classification.explanation);
  ASSERT_EQ(decoded->stages.size(), 2u);
  EXPECT_EQ(decoded->stages[0].method, SolverMethod::kBacktracking);
  EXPECT_FALSE(decoded->stages[0].ok);
  ASSERT_TRUE(decoded->stages[0].error.has_value());
  EXPECT_EQ(*decoded->stages[0].error, ErrorCode::kBudgetExhausted);
  EXPECT_EQ(decoded->stages[0].steps, 1'000u);
  EXPECT_EQ(decoded->stages[0].elapsed.count(), 2'500);
  EXPECT_TRUE(decoded->stages[1].ok);
  EXPECT_FALSE(decoded->stages[1].error.has_value());
}

TEST(SandboxCodecTest, TypedErrorRoundTrips) {
  std::string frame = EncodeOutcome(Result<SolveReport>::Error(
      ErrorCode::kDeadlineExceeded, "wall-clock deadline exceeded"));
  Result<SolveReport> decoded =
      Result<SolveReport>::Error(ErrorCode::kInternal, "unset");
  ASSERT_TRUE(DecodeOutcome(frame, &decoded));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(decoded.error(), "wall-clock deadline exceeded");
}

TEST(SandboxCodecTest, TruncatedFramesAreDetectedNotDecoded) {
  SolveReport report;
  report.verdict = Verdict::kNotCertain;
  std::string frame = EncodeOutcome(Result<SolveReport>(report));
  Result<SolveReport> decoded =
      Result<SolveReport>::Error(ErrorCode::kInternal, "unset");
  // Every strict prefix — the states a dying child's partial write leaves
  // behind — must be rejected, never misread as a verdict.
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    std::string partial = frame.substr(0, cut);
    EXPECT_FALSE(OutcomeFrameComplete(partial, nullptr));
    EXPECT_FALSE(DecodeOutcome(partial, &decoded)) << "prefix " << cut;
  }
  size_t size = 0;
  ASSERT_TRUE(OutcomeFrameComplete(frame, &size));
  EXPECT_EQ(size, frame.size());
  EXPECT_TRUE(DecodeOutcome(frame, &decoded));
}

TEST(SandboxCodecTest, CorruptEnumValuesAreRejected) {
  SolveReport report;
  std::string frame = EncodeOutcome(Result<SolveReport>(report));
  Result<SolveReport> decoded =
      Result<SolveReport>::Error(ErrorCode::kInternal, "unset");
  std::string bad_version = frame;
  bad_version[4] = '\x7f';  // version byte, right after the length prefix
  EXPECT_FALSE(DecodeOutcome(bad_version, &decoded));
  std::string bad_verdict = frame;
  bad_verdict[6] = '\x7f';  // verdict byte of the ok arm
  EXPECT_FALSE(DecodeOutcome(bad_verdict, &decoded));
}

// ---------------------------------------------------------------------------
// Isolation mode & policy

TEST(SandboxPolicyTest, IsolationModeNamesRoundTrip) {
  for (IsolationMode m : {IsolationMode::kAuto, IsolationMode::kInproc,
                          IsolationMode::kFork}) {
    std::optional<IsolationMode> parsed = ParseIsolationMode(ToString(m));
    ASSERT_TRUE(parsed.has_value()) << ToString(m);
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(ParseIsolationMode("").has_value());
  EXPECT_FALSE(ParseIsolationMode("forked").has_value());
}

TEST(SandboxPolicyTest, ShouldIsolateTracksTheTractableIslands) {
  // FO island: poly-time rewriting, no sandbox needed.
  EXPECT_FALSE(ShouldIsolate(Q("R(x | y)")));
  EXPECT_FALSE(ShouldIsolate(ChainQuery(3)));
  // q1 island: coNP-complete in general but this *shape* solves by
  // matching in poly time, so auto policy keeps it in-process.
  EXPECT_FALSE(ShouldIsolate(PigeonholeQuery()));
  // Off-island: the extra negated atom defeats the q1 detector and the
  // attack graph is cyclic — exact solvers may go exponential.
  EXPECT_TRUE(ShouldIsolate(PigeonholeCyclicQuery()));
  EXPECT_TRUE(ShouldIsolate(CycleQuery(2)));
}

TEST(SandboxPolicyTest, WireFieldParsesAndRejectsUnknownModes) {
  Result<WireRequest> fork = DecodeRequest(
      R"js({"type":"solve","id":1,"query":"R(x | y)","isolation":"fork"})js");
  ASSERT_TRUE(fork.ok()) << fork.error();
  EXPECT_EQ(fork->isolation, IsolationMode::kFork);
  Result<WireRequest> absent =
      DecodeRequest(R"js({"type":"solve","id":2,"query":"R(x | y)"})js");
  ASSERT_TRUE(absent.ok());
  EXPECT_EQ(absent->isolation, IsolationMode::kAuto) << "absent field = auto";
  Result<WireRequest> bad = DecodeRequest(
      R"js({"type":"solve","id":3,"query":"R(x | y)","isolation":"jail"})js");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kUnsupported);
}

// ---------------------------------------------------------------------------
// Verdict parity: a forked solve must answer exactly like an in-process one

TEST(SandboxSolveTest, ForkedVerdictsMatchInprocAcrossEveryEngine) {
  Database db = Db("R(a | b), R(a | c)\nS(b | a)");
  // Per-engine fixtures: the FO-only engines get an FO query, the
  // q1-shape engine gets q1, the universal engines get the q1 instance
  // (kNotCertain on this database — the repair {R(a|b), S(b|a)} falsifies).
  struct Case {
    SolverMethod method;
    const char* query;
  } cases[] = {
      {SolverMethod::kAuto, "R(x | y), not S(y | x)"},
      {SolverMethod::kRewriting, "R(x | y)"},
      {SolverMethod::kAlgorithm1, "R(x | y)"},
      {SolverMethod::kBacktracking, "R(x | y), not S(y | x)"},
      {SolverMethod::kNaive, "R(x | y), not S(y | x)"},
      {SolverMethod::kMatchingQ1, "R(x | y), not S(y | x)"},
      {SolverMethod::kSampling, "R(x | y), not S(y | x)"},
  };
  for (const Case& c : cases) {
    Query q = Q(c.query);
    SolveOptions inproc_opts;
    inproc_opts.method = c.method;
    Result<SolveReport> inproc = SolveCertainty(q, db, inproc_opts);

    SandboxJob job;
    job.method = c.method;
    SandboxOutcome forked =
        RunSandboxedSolve(q, db, job, SandboxLimits{}, nullptr);

    ASSERT_EQ(inproc.ok(), forked.result.ok())
        << ToString(c.method) << ": "
        << (inproc.ok() ? forked.result.error() : inproc.error());
    ASSERT_TRUE(inproc.ok()) << ToString(c.method) << ": " << inproc.error();
    EXPECT_FALSE(forked.killed);
    EXPECT_FALSE(forked.crashed);
    EXPECT_EQ(forked.result->verdict, inproc->verdict) << ToString(c.method);
    EXPECT_EQ(forked.result->certain, inproc->certain) << ToString(c.method);
    EXPECT_EQ(forked.result->used, inproc->used) << ToString(c.method);
    // The sampling stage is seeded deterministically, so even approximate
    // verdicts agree exactly across the process boundary.
    EXPECT_EQ(forked.result->confidence, inproc->confidence)
        << ToString(c.method);
    EXPECT_EQ(forked.result->samples, inproc->samples) << ToString(c.method);
  }
}

TEST(SandboxSolveTest, CooperativeDeadlineCrossesThePipeAsItself) {
  // A child that *cooperatively* trips its deadline reports the same typed
  // error an in-process solve would — the sandbox adds containment, not a
  // new failure vocabulary — so retry policy is isolation-agnostic.
  Database db = PigeonholeDatabase(12);
  SandboxJob job;
  job.method = SolverMethod::kBacktracking;
  job.degrade_to_sampling = false;
  job.deadline = Budget::Clock::now() + milliseconds(50);
  SandboxLimits limits;
  limits.kill_grace = milliseconds(10'000);  // cooperation must win, not kill
  SandboxOutcome out =
      RunSandboxedSolve(PigeonholeCyclicQuery(), db, job, limits, nullptr);
  ASSERT_FALSE(out.result.ok());
  EXPECT_EQ(out.result.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_FALSE(out.killed) << "child unwound cooperatively, no SIGKILL";
  EXPECT_FALSE(out.crashed);
}

// ---------------------------------------------------------------------------
// Hard preemption

TEST(SandboxSolveTest, WedgedSolveIsReclaimedWithinTwiceTheKillGrace) {
  // The wedge blocks between budget probes — cooperative cancellation can
  // never reclaim it. The supervisor must SIGKILL at deadline + grace and
  // return within the acceptance bound of 2x the grace window.
  Database db = PigeonholeDatabase(8);
  SandboxJob job;
  job.method = SolverMethod::kBacktracking;
  job.wedge_after_probes = 1;
  const auto timeout = milliseconds(100);
  job.deadline = Budget::Clock::now() + timeout;
  SandboxLimits limits;
  limits.kill_grace = milliseconds(250);
  const auto start = Budget::Clock::now();
  SandboxOutcome out =
      RunSandboxedSolve(PigeonholeCyclicQuery(), db, job, limits, nullptr);
  const auto elapsed = Budget::Clock::now() - start;
  EXPECT_TRUE(out.killed) << "only SIGKILL reclaims a wedge";
  ASSERT_FALSE(out.result.ok());
  EXPECT_EQ(out.result.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, timeout + 2 * limits.kill_grace)
      << "reclaim must land within twice the kill grace";
}

TEST(SandboxSolveTest, CancellationKillsAWedgedChildWithoutADeadline) {
  Database db = PigeonholeDatabase(8);
  SandboxJob job;
  job.method = SolverMethod::kBacktracking;
  job.wedge_after_probes = 1;  // no deadline: only cancellation can end this
  std::atomic<bool> cancel{false};
  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(milliseconds(100));
    cancel.store(true, std::memory_order_release);
  });
  SandboxOutcome out = RunSandboxedSolve(PigeonholeCyclicQuery(), db, job,
                                         SandboxLimits{}, &cancel);
  canceller.join();
  EXPECT_TRUE(out.killed);
  ASSERT_FALSE(out.result.ok());
  EXPECT_EQ(out.result.code(), ErrorCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Crash containment

TEST(SandboxSolveTest, InjectedCrashMapsToWorkerCrashed) {
  Database db = Db("R(a | b), R(a | c)\nS(b | a)");
  SandboxJob job;
  job.method = SolverMethod::kBacktracking;
  job.crash_after_probes = 1;
  SandboxOutcome out = RunSandboxedSolve(Q("R(x | y), not S(y | x)"), db, job,
                                         SandboxLimits{}, nullptr);
  EXPECT_TRUE(out.crashed);
  EXPECT_FALSE(out.killed);
  ASSERT_FALSE(out.result.ok());
  EXPECT_EQ(out.result.code(), ErrorCode::kWorkerCrashed);
}

TEST(SandboxSolveTest, CrashedChildLeavesTheServiceServing) {
  // The containment guarantee end to end: a segfaulting solve produces
  // exactly one typed terminal, and the *same* service keeps answering
  // subsequent solves correctly from the same worker pool.
  auto db = std::make_shared<const Database>(Db("R(a | b), R(a | c)\nS(b | a)"));
  ServiceOptions options;
  options.workers = 2;
  SolveService service(options);
  std::mutex mu;
  std::vector<ServeResponse> responses;
  auto callback = [&](const ServeResponse& r) {
    std::lock_guard<std::mutex> lock(mu);
    responses.push_back(r);
  };
  ServeJob crashing(Q("R(x | y), not S(y | x)"), db);
  crashing.method = SolverMethod::kBacktracking;
  crashing.isolation = IsolationMode::kFork;
  crashing.crash_after_probes = 1;
  Result<uint64_t> crash_id = service.Submit(std::move(crashing), callback);
  ASSERT_TRUE(crash_id.ok());
  ServeJob healthy(Q("R(x | y)"), db);
  healthy.isolation = IsolationMode::kFork;
  Result<uint64_t> healthy_id = service.Submit(std::move(healthy), callback);
  ASSERT_TRUE(healthy_id.ok());
  EXPECT_TRUE(service.Shutdown(milliseconds(20'000)));
  ASSERT_EQ(responses.size(), 2u);
  for (const ServeResponse& r : responses) {
    if (r.id == crash_id.value()) {
      ASSERT_FALSE(r.result.ok());
      EXPECT_EQ(r.result.code(), ErrorCode::kWorkerCrashed);
    } else {
      ASSERT_TRUE(r.result.ok()) << r.result.error();
      EXPECT_EQ(r.result->verdict, Verdict::kCertain);
    }
  }
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.sandbox_forks, 2u);
  EXPECT_EQ(stats.sandbox_crashes, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 1u);
}

// ---------------------------------------------------------------------------
// RSS cap

#if CQA_SANDBOX_RSS_TESTABLE
TEST(SandboxSolveTest, RssBreachMapsToResourceExhausted) {
  // Every budget probe retains 16 touched MiB; under a 64 MiB headroom cap
  // the child's allocator fails within a handful of probes, long before
  // the generous deadline. The failure must surface as the typed
  // kResourceExhausted — not a crash, not a deadline.
  Database db = PigeonholeDatabase(10);
  SandboxJob job;
  job.method = SolverMethod::kBacktracking;
  job.degrade_to_sampling = false;
  job.hog_mb_per_probe = 16;
  job.deadline = Budget::Clock::now() + milliseconds(30'000);
  SandboxLimits limits;
  limits.kill_grace = milliseconds(1'000);
  limits.max_rss_mb = 64;
  SandboxOutcome out =
      RunSandboxedSolve(PigeonholeCyclicQuery(), db, job, limits, nullptr);
  EXPECT_TRUE(out.rss_breach);
  EXPECT_FALSE(out.killed);
  ASSERT_FALSE(out.result.ok());
  EXPECT_EQ(out.result.code(), ErrorCode::kResourceExhausted);
}

TEST(SandboxSolveTest, RssBreachIsNotRetriedByTheService) {
  auto db = std::make_shared<const Database>(PigeonholeDatabase(10));
  ServiceOptions options;
  options.workers = 1;
  options.max_retries = 3;
  options.backoff.initial = milliseconds(1);
  options.sandbox.max_rss_mb = 64;
  SolveService service(options);
  std::mutex mu;
  std::vector<ServeResponse> responses;
  ServeJob job(PigeonholeCyclicQuery(), db);
  job.method = SolverMethod::kBacktracking;
  job.degrade_to_sampling = false;
  job.isolation = IsolationMode::kFork;
  job.hog_mb_per_probe = 16;
  job.timeout = milliseconds(30'000);
  ASSERT_TRUE(service
                  .Submit(std::move(job),
                          [&](const ServeResponse& r) {
                            std::lock_guard<std::mutex> lock(mu);
                            responses.push_back(r);
                          })
                  .ok());
  EXPECT_TRUE(service.Shutdown(milliseconds(60'000)));
  ASSERT_EQ(responses.size(), 1u);
  ASSERT_FALSE(responses[0].result.ok());
  EXPECT_EQ(responses[0].result.code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(responses[0].attempts, 1) << "deterministic breach; no retry";
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.sandbox_rss_breaches, 1u);
  EXPECT_GT(stats.sandbox_peak_rss_kb, 0u) << "rusage high-water recorded";
}
#endif  // CQA_SANDBOX_RSS_TESTABLE

// ---------------------------------------------------------------------------
// Auto-escalation policy

TEST(SandboxSolveTest, AutoPolicyForksExactlyTheCoNpRiskQueries) {
  auto db = std::make_shared<const Database>(PigeonholeDatabase(4));
  ServiceOptions options;
  options.workers = 1;
  options.isolation = IsolationMode::kAuto;
  SolveService service(options);
  std::mutex mu;
  std::vector<ServeResponse> responses;
  auto callback = [&](const ServeResponse& r) {
    std::lock_guard<std::mutex> lock(mu);
    responses.push_back(r);
  };
  // FO query: stays in-process under auto policy.
  ASSERT_TRUE(service.Submit(ServeJob(Q("R(x | y)"), db), callback).ok());
  // q1-shaped: poly-time matching island, also in-process.
  ASSERT_TRUE(service.Submit(ServeJob(PigeonholeQuery(), db), callback).ok());
  // Off-island: must escalate to a fork.
  ASSERT_TRUE(
      service.Submit(ServeJob(PigeonholeCyclicQuery(), db), callback).ok());
  EXPECT_TRUE(service.Shutdown(milliseconds(20'000)));
  ASSERT_EQ(responses.size(), 3u);
  for (const ServeResponse& r : responses) {
    ASSERT_TRUE(r.result.ok()) << r.result.error();
  }
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.sandbox_forks, 1u)
      << "exactly the off-island query forks under auto policy";
  EXPECT_EQ(stats.completed, 3u);
}

}  // namespace
}  // namespace cqa
