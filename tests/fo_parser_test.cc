#include <gtest/gtest.h>

#include "cqa/fo/eval.h"
#include "cqa/fo/fo_parser.h"
#include "cqa/gen/random_db.h"
#include "cqa/gen/random_formula.h"
#include "cqa/rewriting/rewriter.h"
#include "cqa/query/parser.h"

namespace cqa {
namespace {

TEST(FoParserTest, BasicShapes) {
  Result<FoPtr> t = ParseFo("true");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->kind(), FoKind::kTrue);

  Result<FoPtr> atom = ParseFo("R(x | y)");
  ASSERT_TRUE(atom.ok()) << atom.error();
  EXPECT_EQ((*atom)->kind(), FoKind::kAtom);
  EXPECT_EQ((*atom)->key_len(), 1);

  Result<FoPtr> eq = ParseFo("x = 'a'");
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ((*eq)->kind(), FoKind::kEquals);

  Result<FoPtr> ne = ParseFo("x != y");
  ASSERT_TRUE(ne.ok());
  EXPECT_EQ((*ne)->kind(), FoKind::kNot);

  Result<FoPtr> q = ParseFo("exists x y. R(x | y) & !S(y | x)");
  ASSERT_TRUE(q.ok()) << q.error();
  EXPECT_EQ((*q)->kind(), FoKind::kExists);
  EXPECT_TRUE((*q)->FreeVars().empty());

  Result<FoPtr> imp =
      ParseFo("forall z. N('c' | z) -> exists x. S(x) & x != z");
  ASSERT_TRUE(imp.ok()) << imp.error();
  EXPECT_EQ((*imp)->kind(), FoKind::kForall);
  EXPECT_EQ((*imp)->child()->kind(), FoKind::kImplies);
}

TEST(FoParserTest, PrecedenceAndAssociativity) {
  // a -> b -> c parses right-associative.
  Result<FoPtr> f = ParseFo("P(x) -> Q(x) -> T(x)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->kind(), FoKind::kImplies);
  EXPECT_EQ((*f)->children()[1]->kind(), FoKind::kImplies);
  // & binds tighter than |, which binds tighter than ->.
  Result<FoPtr> g = ParseFo("P(x) & Q(x) | T(x) -> U(x)");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ((*g)->kind(), FoKind::kImplies);
  EXPECT_EQ((*g)->children()[0]->kind(), FoKind::kOr);
}

TEST(FoParserTest, Errors) {
  EXPECT_FALSE(ParseFo("").ok());
  EXPECT_FALSE(ParseFo("exists . P(x)").ok());
  EXPECT_FALSE(ParseFo("exists x P(x)").ok());  // missing '.'
  EXPECT_FALSE(ParseFo("R(x").ok());
  EXPECT_FALSE(ParseFo("(P(x)").ok());
  EXPECT_FALSE(ParseFo("P(x) extra").ok());
  EXPECT_FALSE(ParseFo("x <> y").ok());
}

TEST(FoParserTest, PrinterRoundTripsOnRandomFormulas) {
  Schema schema;
  schema.AddRelationOrDie("P", 1, 1);
  schema.AddRelationOrDie("R", 2, 1);
  Rng rng(2203);
  RandomFormulaOptions fopts;
  RandomDbOptions dopts;
  for (int trial = 0; trial < 200; ++trial) {
    FoPtr f = GenerateRandomFormula(schema, fopts, &rng);
    Result<FoPtr> back = ParseFo(f->ToString());
    ASSERT_TRUE(back.ok()) << f->ToString() << "\n" << back.error();
    Database db = GenerateRandomDatabase(schema, dopts, &rng);
    EXPECT_EQ(EvalFo(f, db), EvalFo(back.value(), db)) << f->ToString();
  }
}

TEST(FoParserTest, RewritingsRoundTrip) {
  for (const char* text :
       {"P(x | y), not N('c' | y)", "R(x | y), S(y | z)",
        "Lives(p | t), not Born(p | t)"}) {
    Result<Query> q = ParseQuery(text);
    ASSERT_TRUE(q.ok());
    Result<Rewriting> rw = RewriteCertain(q.value());
    ASSERT_TRUE(rw.ok());
    Result<FoPtr> back = ParseFo(rw->formula->ToString());
    ASSERT_TRUE(back.ok()) << rw->formula->ToString() << "\n"
                           << back.error();
    EXPECT_TRUE(Fo::Equal(rw->formula, back.value()))
        << rw->formula->ToString() << "\nvs\n"
        << back.value()->ToString();
  }
}

}  // namespace
}  // namespace cqa
