#include <gtest/gtest.h>

#include <algorithm>

#include "cqa/db/database.h"

namespace cqa {
namespace {

// The inconsistent girls/boys database of Figure 1.
Database Figure1Db() {
  Result<Database> db = Database::FromText(R"(
    R(alice | bob),   R(alice | george)
    R(maria | bob),   R(maria | john)
    S(bob | alice),   S(bob | maria)
    S(george | alice), S(george | maria)
  )");
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return db.value();
}

TEST(DatabaseTest, Figure1BlocksAndCounts) {
  Database db = Figure1Db();
  EXPECT_EQ(db.NumFacts(), 8u);
  EXPECT_EQ(db.NumBlocks(), 4u);
  EXPECT_FALSE(db.IsConsistent());
  EXPECT_EQ(db.CountRepairs(), 16u);
  for (const Database::Block& b : db.blocks()) {
    EXPECT_EQ(b.size(), 2u);
  }
}

TEST(DatabaseTest, SetSemanticsDeduplicates) {
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  Database db(s);
  EXPECT_TRUE(db.AddFact("R", {Value::Of("a"), Value::Of("b")}).value());
  EXPECT_FALSE(db.AddFact("R", {Value::Of("a"), Value::Of("b")}).value());
  EXPECT_EQ(db.NumFacts(), 1u);
  EXPECT_TRUE(db.IsConsistent());
}

TEST(DatabaseTest, AddFactValidation) {
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  Database db(s);
  EXPECT_FALSE(db.AddFact("Unknown", {Value::Of("a")}).ok());
  EXPECT_FALSE(db.AddFact("R", {Value::Of("a")}).ok());  // arity mismatch
}

TEST(DatabaseTest, ContainsAndBlockOf) {
  Database db = Figure1Db();
  Symbol r = InternSymbol("R");
  EXPECT_TRUE(db.Contains(r, {Value::Of("alice"), Value::Of("bob")}));
  EXPECT_FALSE(db.Contains(r, {Value::Of("alice"), Value::Of("john")}));
  std::optional<int> b1 = db.BlockOf(r, {Value::Of("alice"), Value::Of("bob")});
  std::optional<int> b2 =
      db.BlockOf(r, {Value::Of("alice"), Value::Of("george")});
  ASSERT_TRUE(b1.has_value());
  EXPECT_EQ(*b1, *b2);  // key-equal facts share a block
  EXPECT_FALSE(
      db.BlockOf(r, {Value::Of("alice"), Value::Of("john")}).has_value());
}

TEST(DatabaseTest, RemoveFactRebuildsBlocks) {
  Database db = Figure1Db();
  Symbol r = InternSymbol("R");
  EXPECT_TRUE(db.RemoveFact(r, {Value::Of("alice"), Value::Of("george")}));
  EXPECT_FALSE(db.RemoveFact(r, {Value::Of("alice"), Value::Of("george")}));
  EXPECT_EQ(db.NumFacts(), 7u);
  EXPECT_EQ(db.CountRepairs(), 8u);
}

TEST(DatabaseTest, ActiveDomain) {
  Database db = Figure1Db();
  std::vector<Value> adom = db.ActiveDomain();
  EXPECT_EQ(adom.size(), 5u);  // alice, maria, bob, george, john
  EXPECT_NE(std::find(adom.begin(), adom.end(), Value::Of("john")),
            adom.end());
}

TEST(DatabaseTest, AddAllMergesAndChecksSchema) {
  Database a = Figure1Db();
  Schema s;
  s.AddRelationOrDie("T", 1, 1);
  Database b(s);
  b.AddFactOrDie("T", {Value::Of("x")});
  ASSERT_TRUE(b.AddAll(a).ok());
  EXPECT_EQ(b.NumFacts(), 9u);

  Schema conflicting;
  conflicting.AddRelationOrDie("R", 3, 2);
  Database c(conflicting);
  EXPECT_FALSE(c.AddAll(a).ok());
}

TEST(DatabaseTest, CountRepairsCaps) {
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  Database db(s);
  for (int k = 0; k < 40; ++k) {
    for (int i = 0; i < 4; ++i) {
      db.AddFactOrDie("R", {Value::Of("k" + std::to_string(k)),
                            Value::Of("v" + std::to_string(i))});
    }
  }
  // 4^40 overflows; capped.
  EXPECT_EQ(db.CountRepairs(1000), 1000u);
}

TEST(DatabaseTest, FromTextInconsistentSignatureFails) {
  EXPECT_FALSE(Database::FromText("R(a | b)\nR(a, b)").ok());
}

}  // namespace
}  // namespace cqa
