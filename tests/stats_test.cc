#include <gtest/gtest.h>

#include <cmath>

#include "cqa/db/repairs.h"
#include "cqa/db/stats.h"

namespace cqa {
namespace {

Database Db(const char* text) {
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return db.value();
}

TEST(StatsTest, CountsBlocksAndViolations) {
  Database db = Db(R"(
    R(a | 1), R(a | 2), R(a | 3)
    R(b | 1)
    S(x | 1), S(x | 2)
  )");
  InconsistencyStats s = ComputeStats(db);
  EXPECT_EQ(s.facts, 6u);
  EXPECT_EQ(s.blocks, 3u);
  EXPECT_EQ(s.violating_blocks, 2u);
  EXPECT_EQ(s.max_block_size, 3u);
  EXPECT_DOUBLE_EQ(s.ViolationRate(), 2.0 / 3.0);
  // 3 * 1 * 2 repairs => log2 = log2(6).
  EXPECT_NEAR(s.log2_repairs, std::log2(6.0), 1e-9);
  EXPECT_EQ(s.block_sizes.at(1), 1u);
  EXPECT_EQ(s.block_sizes.at(2), 1u);
  EXPECT_EQ(s.block_sizes.at(3), 1u);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(StatsTest, PerRelationBreakdown) {
  Database db = Db("R(a | 1), R(a | 2)\nS(x | 1)");
  auto per = ComputeStatsPerRelation(db);
  EXPECT_EQ(per.at("R").violating_blocks, 1u);
  EXPECT_EQ(per.at("S").violating_blocks, 0u);
}

TEST(StatsTest, CertainFactsAreTheSingletonBlocks) {
  Database db = Db(R"(
    R(a | 1), R(a | 2)
    R(b | 7)
    S(x | 1)
  )");
  Database core = CertainFacts(db);
  EXPECT_EQ(core.NumFacts(), 2u);
  EXPECT_TRUE(core.Contains(InternSymbol("R"),
                            {Value::Of("b"), Value::Of("7")}));
  EXPECT_TRUE(core.Contains(InternSymbol("S"),
                            {Value::Of("x"), Value::Of("1")}));
  // Core facts are exactly those in every repair.
  ForEachRepair(db, [&](const Repair& r) {
    core.ForEachFact(InternSymbol("R"), [&](const Tuple& t) {
      EXPECT_TRUE(r.Contains(InternSymbol("R"), t));
      return true;
    });
    return true;
  });
}

TEST(StatsTest, EmptyDatabase) {
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  Database db(s);
  InconsistencyStats stats = ComputeStats(db);
  EXPECT_EQ(stats.blocks, 0u);
  EXPECT_EQ(stats.ViolationRate(), 0.0);
  EXPECT_EQ(CertainFacts(db).NumFacts(), 0u);
}

}  // namespace
}  // namespace cqa
