// The interner is the only process-global mutable state in the library;
// hammer it from several threads to check the locking.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "cqa/base/interner.h"
#include "cqa/base/value.h"

namespace cqa {
namespace {

TEST(ConcurrencyTest, ParallelInterningIsConsistent) {
  constexpr int kThreads = 8;
  constexpr int kNames = 500;
  std::vector<std::vector<Symbol>> results(kThreads);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      results[static_cast<size_t>(t)].reserve(kNames);
      for (int i = 0; i < kNames; ++i) {
        results[static_cast<size_t>(t)].push_back(
            InternSymbol("conc_" + std::to_string(i)));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Every thread resolved every name to the same symbol.
  for (int i = 0; i < kNames; ++i) {
    for (int t = 1; t < kThreads; ++t) {
      ASSERT_EQ(results[0][static_cast<size_t>(i)],
                results[static_cast<size_t>(t)][static_cast<size_t>(i)]);
    }
    EXPECT_EQ(SymbolName(results[0][static_cast<size_t>(i)]),
              "conc_" + std::to_string(i));
  }
}

TEST(ConcurrencyTest, ParallelFreshSymbolsAreDistinct) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 300;
  std::vector<std::vector<Symbol>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        results[static_cast<size_t>(t)].push_back(FreshSymbol("cz"));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::set<Symbol> all;
  for (const auto& r : results) {
    for (Symbol s : r) {
      EXPECT_TRUE(all.insert(s).second) << SymbolName(s);
    }
  }
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST(ConcurrencyTest, ValuesUsableAcrossThreads) {
  Value v = Value::Of("shared_value");
  std::vector<std::thread> threads;
  std::atomic<int> matches{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (Value::Of("shared_value") == v) matches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(matches.load(), 4000);
}

}  // namespace
}  // namespace cqa
