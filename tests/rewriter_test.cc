#include <gtest/gtest.h>

#include "cqa/certainty/naive.h"
#include "cqa/fo/eval.h"
#include "cqa/gen/poll.h"
#include "cqa/gen/random_db.h"
#include "cqa/query/parser.h"
#include "cqa/reductions/bpm.h"
#include "cqa/reductions/hall_covering.h"
#include "cqa/rewriting/rewriter.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

Database Db(const char* text) {
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return db.value();
}

// Checks the rewriting against the naive oracle on `trials` random
// databases for `q`.
void CrossValidate(const Query& q, int trials, uint64_t seed,
                   RandomDbOptions db_opts = {}) {
  Result<Rewriting> rw = RewriteCertain(q);
  ASSERT_TRUE(rw.ok()) << rw.error() << " for " << q.ToString();
  Rng rng(seed);
  for (int i = 0; i < trials; ++i) {
    Database db = GenerateRandomDatabaseFor(q, db_opts, &rng);
    Result<bool> expected = IsCertainNaive(q, db);
    ASSERT_TRUE(expected.ok());
    bool got = EvalFo(rw->formula, db);
    ASSERT_EQ(got, expected.value())
        << "query: " << q.ToString() << "\nrewriting: "
        << rw->formula->ToString() << "\ndb:\n"
        << db.ToString();
  }
}

TEST(RewriterTest, RejectsCyclicAndUnguarded) {
  EXPECT_FALSE(RewriteCertain(MakeQ1()).ok());
  EXPECT_FALSE(RewriteCertain(Q("R(x | y), S(y | x)")).ok());
  // q4: not weakly guarded.
  EXPECT_FALSE(
      RewriteCertain(Q("X(x), Y(y), not R(x | y), not S(y | x)")).ok());
}

TEST(RewriterTest, SingleAtomQuery) {
  Query q = Q("R(x | y)");
  Result<Rewriting> rw = RewriteCertain(q);
  ASSERT_TRUE(rw.ok()) << rw.error();
  // CERTAINTY(R(x|y)) just asks for a nonempty R.
  EXPECT_TRUE(EvalFo(rw->formula, Db("R(a | b), R(a | c)")));
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  EXPECT_FALSE(EvalFo(rw->formula, Database(s)));
}

TEST(RewriterTest, Example45Q3Semantics) {
  Query q3 = Q("P(x | y), not N('c' | y)");
  Result<Rewriting> rw = RewriteCertain(q3);
  ASSERT_TRUE(rw.ok()) << rw.error();
  // Certain: a P-block avoiding the N-value exists.
  EXPECT_TRUE(EvalFo(rw->formula, Db("P(k1 | a)\nP(k2 | b)\nN(c | b)")));
  // Not certain: the only P-block can be repaired to the N-value.
  EXPECT_FALSE(EvalFo(rw->formula, Db("P(k1 | b), P(k1 | a)\nN(c | b)")));
  // Not certain: N-key is a different constant... N('c', z) only fires for
  // facts with key 'c'; a 'd'-keyed fact is harmless.
  EXPECT_TRUE(EvalFo(rw->formula, Db("P(k1 | b)\nN(d | b)")));
  // No P-fact: never certain.
  EXPECT_FALSE(EvalFo(rw->formula, Db("N(c | b)")));
}

TEST(RewriterTest, Example45Q3CrossValidation) {
  CrossValidate(Q("P(x | y), not N('c' | y)"), 300, 17);
}

TEST(RewriterTest, Example611ConstantsAndRepeatedVariables) {
  // q = {P(y), ¬N(c | a, y, y)} — the proof of Lemma 6.1 notes the
  // rewriting must handle constants and repeated variables in the non-key
  // part; Example 6.11's simplified form is
  //   ∃y P(y) ∧ ∀z (N(c,a,z,z) → ∃y (P(y) ∧ y ≠ z)).
  Query q = Q("P(y), not N('c' | 'a', y, y)");
  Result<Rewriting> rw = RewriteCertain(q);
  ASSERT_TRUE(rw.ok()) << rw.error();
  // P all-key here: P(y) with key y... P is unary all-key, N is eliminated.
  EXPECT_TRUE(EvalFo(rw->formula, Db("P(u)\nP(v)\nN(c | a, v, v)")));
  EXPECT_FALSE(EvalFo(rw->formula, Db("P(v)\nN(c | a, v, v)")));
  // Mismatching constant or non-repeated values: N-fact is irrelevant.
  EXPECT_TRUE(EvalFo(rw->formula, Db("P(v)\nN(c | b, v, v)")));
  EXPECT_TRUE(EvalFo(rw->formula, Db("P(v)\nN(c | a, v, w)")));
  EXPECT_TRUE(EvalFo(rw->formula, Db("P(v)\nN(d | a, v, v)")));
}

TEST(RewriterTest, HallRewritingMatchesFigure2Semantics) {
  // Figure 2 / Example 6.12, ℓ = 3.
  Query q = MakeHallQuery(3);
  Result<Rewriting> rw = RewriteCertain(q);
  ASSERT_TRUE(rw.ok()) << rw.error();
  // Empty S: not certain.
  EXPECT_FALSE(EvalFo(rw->formula, CoveringToHallDatabase(
                                       {0, {{}, {}, {}}})));
  // Three elements, sets can cover them injectively: not certain.
  SCoveringInstance coverable{3, {{0}, {1}, {2}}};
  EXPECT_FALSE(EvalFo(rw->formula, CoveringToHallDatabase(coverable)));
  // Two sets for three elements: cannot cover; q_Hall is certain.
  SCoveringInstance uncoverable{3, {{0, 1, 2}, {0, 1, 2}, {}}};
  EXPECT_TRUE(EvalFo(rw->formula, CoveringToHallDatabase(uncoverable)));
  // Hall violation: two sets both only containing element 0, third empty.
  SCoveringInstance hall_violation{2, {{0}, {0}, {}}};
  EXPECT_TRUE(EvalFo(rw->formula, CoveringToHallDatabase(hall_violation)));
}

TEST(RewriterTest, HallRewritingGrowsExponentially) {
  // Example 6.12 remarks the rewriting length is exponential in ℓ.
  size_t prev = 0;
  for (int ell = 1; ell <= 5; ++ell) {
    Result<Rewriting> rw =
        RewriteCertain(MakeHallQuery(ell), {.simplify = false});
    ASSERT_TRUE(rw.ok());
    if (ell > 1) {
      EXPECT_GE(rw->raw_size, 2 * prev) << "ell=" << ell;
    }
    prev = rw->raw_size;
  }
}

TEST(RewriterTest, PollQueriesCrossValidation) {
  RandomDbOptions small;
  small.blocks_per_relation = 3;
  small.max_block_size = 2;
  small.domain_size = 4;
  CrossValidate(PollQa(), 200, 23, small);
  CrossValidate(PollQb(), 200, 29, small);
}

TEST(RewriterTest, GuardedNegationQuery) {
  CrossValidate(Q("P(x | y), not N(x | y)"), 300, 31);
}

TEST(RewriterTest, PositiveOnlyPathQuery) {
  // Acyclic negation-free query R(x|y), S(y|z) — classic rewritable chain.
  CrossValidate(Q("R(x | y), S(y | z)"), 300, 37);
}

TEST(RewriterTest, ConstantsInPositiveKeys) {
  CrossValidate(Q("R('v0' | y), not N(y | 'v1')"), 300, 41);
}

TEST(RewriterTest, AllKeyOnlyQuery) {
  Query q = Q("E(x, y), not F(y)");
  Result<Rewriting> rw = RewriteCertain(q);
  ASSERT_TRUE(rw.ok());
  EXPECT_EQ(rw->levels, 1);  // base case straight away
  CrossValidate(q, 100, 43);
}

TEST(RewriterTest, WeaklyGuardedNotGuardedQuery) {
  // Example 3.2's weakly-guarded-but-not-guarded query, made acyclic.
  Query q = Q(
      "R(x | y, z, u), S(y | w, z), T(x | u, w), not N(x, y, z, u, w)");
  ASSERT_TRUE(q.IsWeaklyGuarded());
  ASSERT_FALSE(q.IsGuarded());
  Result<Rewriting> rw = RewriteCertain(q);
  if (rw.ok()) {
    RandomDbOptions tiny;
    tiny.blocks_per_relation = 2;
    tiny.max_block_size = 2;
    tiny.domain_size = 3;
    CrossValidate(q, 60, 47, tiny);
  }
}

TEST(RewriterTest, SimplifiedAndRawAgree) {
  for (const char* text :
       {"P(x | y), not N('c' | y)", "R(x | y), S(y | z)",
        "P(y), not N('c' | 'a', y, y)"}) {
    Query q = Q(text);
    Result<Rewriting> raw = RewriteCertain(q, {.simplify = false});
    Result<Rewriting> simp = RewriteCertain(q, {.simplify = true});
    ASSERT_TRUE(raw.ok() && simp.ok());
    EXPECT_LE(simp->formula->Size(), raw->formula->Size());
    Rng rng(53);
    for (int i = 0; i < 60; ++i) {
      Database db = GenerateRandomDatabaseFor(q, {}, &rng);
      EXPECT_EQ(EvalFo(raw->formula, db), EvalFo(simp->formula, db))
          << text;
    }
  }
}

}  // namespace
}  // namespace cqa
