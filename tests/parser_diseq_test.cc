#include <gtest/gtest.h>

#include "cqa/certainty/naive.h"
#include "cqa/certainty/rewriting_solver.h"
#include "cqa/gen/random_db.h"
#include "cqa/query/parser.h"

namespace cqa {
namespace {

TEST(ParserDiseqTest, ParsesScalarDisequalities) {
  Result<Query> q = ParseQuery("R(x | y), y != 'b'");
  ASSERT_TRUE(q.ok()) << q.error();
  ASSERT_EQ(q->diseqs().size(), 1u);
  EXPECT_EQ(q->diseqs()[0].lhs[0], Term::Var("y"));
  EXPECT_EQ(q->diseqs()[0].rhs[0], Term::Const("b"));
  // Constant-first form.
  Result<Query> q2 = ParseQuery("R(x | y), 'b' != y");
  ASSERT_TRUE(q2.ok()) << q2.error();
  EXPECT_TRUE(q2->diseqs()[0].lhs[0].is_constant());
  // Variable-variable form.
  Result<Query> q3 = ParseQuery("R(x | y), x != y");
  ASSERT_TRUE(q3.ok()) << q3.error();
}

TEST(ParserDiseqTest, DiseqErrors) {
  EXPECT_FALSE(ParseQuery("R(x | y), != y").ok());
  EXPECT_FALSE(ParseQuery("R(x | y), y !").ok());
  EXPECT_FALSE(ParseQuery("R(x | y), z != 'a'").ok());  // unsafe variable
  EXPECT_FALSE(ParseQuery("y != 'a'").ok());            // no atoms at all
}

TEST(ParserDiseqTest, QuoteEscapingRoundTrips) {
  Result<std::vector<ParsedFact>> facts = ParseFacts("R('o''brien' | 'b')");
  ASSERT_TRUE(facts.ok()) << facts.error();
  EXPECT_EQ((*facts)[0].values[0], Value::Of("o'brien"));
}

TEST(ParserDiseqTest, DatabaseTextRoundTrip) {
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  s.AddRelationOrDie("T", 1, 1);
  Database db(s);
  db.AddFactOrDie("R", {Value::Of("o'brien"), Value::Of("x y")});
  db.AddFactOrDie("R", {Value::Of("o'brien"), Value::Of("z|w")});
  db.AddFactOrDie("T", {Value::Of("plain")});
  Result<Database> back = Database::FromText(db.ToText());
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back->NumFacts(), db.NumFacts());
  EXPECT_TRUE(back->Contains(InternSymbol("R"),
                             {Value::Of("o'brien"), Value::Of("z|w")}));
  EXPECT_EQ(back->schema().KeyLenOf(InternSymbol("R")), 1);
}

TEST(ParserDiseqTest, ParsedDiseqQuerySolvesCorrectly) {
  // q = R(x|y), y != 'v0': certain iff every repairable choice of every
  // R-block... cross-check against the definitional oracle.
  Result<Query> q = ParseQuery("R(x | y), y != 'v0'");
  ASSERT_TRUE(q.ok());
  Result<RewritingSolver> solver = RewritingSolver::Create(q.value());
  ASSERT_TRUE(solver.ok()) << solver.error();
  Rng rng(2001);
  RandomDbOptions opts;
  opts.domain_size = 3;
  for (int i = 0; i < 100; ++i) {
    Database db = GenerateRandomDatabaseFor(q.value(), opts, &rng);
    Result<bool> oracle = IsCertainNaive(q.value(), db);
    ASSERT_TRUE(oracle.ok());
    ASSERT_EQ(solver->IsCertain(db), oracle.value()) << db.ToString();
  }
}

}  // namespace
}  // namespace cqa
