#include <gtest/gtest.h>

#include "cqa/fo/eval.h"
#include "cqa/fo/normal_form.h"
#include "cqa/gen/random_db.h"
#include "cqa/gen/random_formula.h"
#include "cqa/query/parser.h"
#include "cqa/reductions/hall_covering.h"
#include "cqa/rewriting/rewriter.h"

namespace cqa {
namespace {

Term V(const char* n) { return Term::Var(n); }
Symbol S(const char* n) { return InternSymbol(n); }

bool IsNnf(const FoPtr& f) {
  switch (f->kind()) {
    case FoKind::kNot:
      return f->child()->kind() == FoKind::kAtom ||
             f->child()->kind() == FoKind::kEquals;
    case FoKind::kImplies:
      return false;
    default:
      for (const FoPtr& c : f->children()) {
        if (!IsNnf(c)) return false;
      }
      return true;
  }
}

bool IsQuantifierFree(const FoPtr& f) {
  if (f->kind() == FoKind::kExists || f->kind() == FoKind::kForall) {
    return false;
  }
  for (const FoPtr& c : f->children()) {
    if (!IsQuantifierFree(c)) return false;
  }
  return true;
}

TEST(NnfTest, PushesNegations) {
  // ¬(∀x (P(x) → Q(x)))  ⇒  ∃x (P(x) ∧ ¬Q(x)).
  FoPtr f = FoNot(FoForall(
      {S("x")}, FoImplies(FoAtom(S("P"), 1, {V("x")}),
                          FoAtom(S("Q"), 1, {V("x")}))));
  FoPtr nnf = ToNnf(f);
  EXPECT_TRUE(IsNnf(nnf));
  ASSERT_EQ(nnf->kind(), FoKind::kExists);
  EXPECT_EQ(nnf->child()->kind(), FoKind::kAnd);
}

TEST(NnfTest, PreservesSemantics) {
  Schema schema;
  schema.AddRelationOrDie("P", 1, 1);
  schema.AddRelationOrDie("R", 2, 1);
  Rng rng(1601);
  RandomFormulaOptions fopts;
  RandomDbOptions dopts;
  for (int trial = 0; trial < 150; ++trial) {
    FoPtr f = GenerateRandomFormula(schema, fopts, &rng);
    FoPtr nnf = ToNnf(f);
    EXPECT_TRUE(IsNnf(nnf)) << f->ToString();
    Database db = GenerateRandomDatabase(schema, dopts, &rng);
    EXPECT_EQ(EvalFo(f, db), EvalFo(nnf, db)) << f->ToString();
  }
}

TEST(PrenexTest, MatrixIsQuantifierFreeAndEquivalent) {
  Schema schema;
  schema.AddRelationOrDie("P", 1, 1);
  schema.AddRelationOrDie("R", 2, 1);
  Rng rng(1607);
  RandomFormulaOptions fopts;
  RandomDbOptions dopts;
  for (int trial = 0; trial < 100; ++trial) {
    FoPtr f = GenerateRandomFormula(schema, fopts, &rng);
    PrenexForm p = ToPrenex(f);
    EXPECT_TRUE(IsQuantifierFree(p.matrix)) << f->ToString();
    FoPtr back = p.ToFormula();
    EXPECT_TRUE(back->FreeVars().empty()) << f->ToString();
    Database db = GenerateRandomDatabase(schema, dopts, &rng);
    EXPECT_EQ(EvalFo(f, db), EvalFo(back, db)) << f->ToString();
  }
}

TEST(PrenexTest, AlternationsCounted) {
  PrenexForm p;
  p.prefix = {{false, S("a")}, {false, S("b")}, {true, S("c")},
              {false, S("d")}};
  EXPECT_EQ(p.Alternations(), 2);
  p.prefix = {{true, S("a")}};
  EXPECT_EQ(p.Alternations(), 0);
  p.prefix = {};
  EXPECT_EQ(p.Alternations(), 0);
}

TEST(PrenexTest, RewritingAlternationsGrowWithHallEll) {
  // The q_Hall rewritings nest one block quantification per negated atom:
  // their prenex alternation count grows with ℓ.
  int prev = -1;
  for (int ell = 1; ell <= 4; ++ell) {
    Result<Rewriting> rw = RewriteCertain(MakeHallQuery(ell));
    ASSERT_TRUE(rw.ok());
    PrenexForm p = ToPrenex(rw->formula);
    EXPECT_GE(p.Alternations(), prev) << "ell=" << ell;
    prev = p.Alternations();
  }
  EXPECT_GE(prev, 2);
}

}  // namespace
}  // namespace cqa
