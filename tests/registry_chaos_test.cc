// Chaos harness for the registry subsystem: attach/detach churn under
// concurrent solve load, exercised across shards. The invariants are the
// registry layer's contract:
//
//   1. Every accepted submission reaches EXACTLY one terminal state —
//      detach churn may shed it (typed `kDetached`) or cancel it, but can
//      never strand or double-complete it.
//   2. Cross-database isolation holds under churn: a solve accepted for
//      database X always reports X's verdict, even while X's shard is
//      being torn down and rebuilt and the sibling shard serves the same
//      query text with the opposite verdict from its own cache.
//   3. Synchronous submit failures are typed (`kDetached`/`kOverloaded`),
//      never crashes or silent drops.
//   4. Detach, shutdown, and submission may interleave arbitrarily and
//      everything still terminates.
//
// Run under the `tsan` preset (ctest -L concurrency) to check the same
// scenarios for data races.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cqa/base/rng.h"
#include "cqa/query/parser.h"
#include "cqa/registry/sharded_service.h"
#include "cqa/serve/service.h"

namespace cqa {
namespace {

using std::chrono::milliseconds;

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

std::shared_ptr<const Database> Db(const char* text) {
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return std::make_shared<const Database>(std::move(db.value()));
}

// The differential pair (see registry_test.cc): on the same query text,
// "stable" answers not-certain and "flap" answers certain, so a routing or
// cache-keying race surfaces as a wrong verdict, not just a wrong counter.
constexpr char kStableFacts[] = "R(a | b), R(a | c)\nS(b | a)";
constexpr char kFlapFacts[] = "R(a | b), R(a | c)\nS(z | z)";
constexpr char kQueryText[] = "R(x | y), not S(y | x)";

// One submission's life, shared between the submitting thread and the
// terminal callback.
struct Submission {
  Verdict expected;
  std::atomic<int> terminals{0};
  std::atomic<bool> wrong_verdict{false};
  std::atomic<int> unexpected_code{-1};
};

void Terminal(const std::shared_ptr<Submission>& sub, const ServeResponse& r) {
  sub->terminals.fetch_add(1, std::memory_order_acq_rel);
  if (r.result.ok()) {
    if (r.result->verdict != sub->expected) sub->wrong_verdict.store(true);
    return;
  }
  switch (r.result.code()) {
    case ErrorCode::kDetached:    // shed from a detaching shard's queue
    case ErrorCode::kCancelled:   // drain deadline or explicit cancel
      break;
    default:
      sub->unexpected_code.store(static_cast<int>(r.result.code()));
  }
}

TEST(RegistryChaosTest, AttachDetachChurnUnderConcurrentLoad) {
  ShardedServiceOptions options;
  options.shard.workers = 2;
  options.shard.queue_capacity = 8;
  options.shard.cache_entries = 64;  // churn the per-shard caches too
  options.detach_drain = milliseconds(2'000);
  ShardedSolveService service(options);
  ASSERT_TRUE(service.Attach("stable", Db(kStableFacts)).ok());
  ASSERT_TRUE(service.Attach("flap", Db(kFlapFacts)).ok());

  Query query = Q(kQueryText);
  std::mutex subs_mu;
  std::vector<std::shared_ptr<Submission>> subs;
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> refused{0};
  std::atomic<bool> bad_refusal{false};

  constexpr int kSubmitters = 3;
  constexpr int kPerThread = 150;
  std::atomic<bool> churn_done{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x5eed'0000u + static_cast<uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        // "" resolves to "stable" (the first attach, never detached, so
        // the default never moves); "ghost" is never attached.
        const char* names[] = {"stable", "flap", "", "ghost"};
        const char* name = names[rng.Next() % 4];
        auto sub = std::make_shared<Submission>();
        sub->expected = (name[0] == 'f') ? Verdict::kCertain
                                         : Verdict::kNotCertain;
        ServeJob job(query, nullptr);
        Result<uint64_t> id = service.Submit(
            name, std::move(job),
            [sub](const ServeResponse& r) { Terminal(sub, r); });
        if (id.ok()) {
          accepted.fetch_add(1);
          std::lock_guard<std::mutex> lock(subs_mu);
          subs.push_back(sub);
        } else {
          refused.fetch_add(1);
          if (id.code() != ErrorCode::kDetached &&
              id.code() != ErrorCode::kOverloaded) {
            bad_refusal.store(true);
          }
        }
      }
    });
  }

  // Admin churn: tear the flap shard down and rebuild it, repeatedly,
  // while the submitters race it.
  threads.emplace_back([&] {
    for (int cycle = 0; cycle < 20; ++cycle) {
      Result<DetachOutcome> out = service.Detach("flap");
      if (!out.ok()) {
        EXPECT_EQ(out.code(), ErrorCode::kUnsupported) << out.error();
      }
      Result<DatabaseRegistry::Entry> back =
          service.Attach("flap", Db(kFlapFacts));
      if (!back.ok()) {
        EXPECT_EQ(back.code(), ErrorCode::kUnsupported) << back.error();
      }
      std::this_thread::sleep_for(milliseconds(1));
    }
    churn_done.store(true);
  });

  // Cancellation noise: ids are per-shard and recycle across re-attaches;
  // Cancel must stay safe whatever (name, id) pair it is handed.
  threads.emplace_back([&] {
    Rng rng(0xca9ce1u);
    while (!churn_done.load()) {
      const char* names[] = {"stable", "flap", "ghost"};
      (void)service.Cancel(names[rng.Next() % 3], 1 + rng.Next() % 64);
      std::this_thread::sleep_for(milliseconds(1));
    }
  });

  for (auto& t : threads) t.join();
  EXPECT_TRUE(service.Shutdown(milliseconds(5'000)));

  EXPECT_FALSE(bad_refusal.load())
      << "synchronous refusals must be kDetached or kOverloaded";
  uint64_t delivered = 0;
  {
    std::lock_guard<std::mutex> lock(subs_mu);
    for (const auto& sub : subs) {
      int n = sub->terminals.load();
      EXPECT_EQ(n, 1) << "a submission terminated " << n << " times";
      delivered += static_cast<uint64_t>(n > 0);
      EXPECT_FALSE(sub->wrong_verdict.load())
          << "a shard served the other database's verdict";
      EXPECT_EQ(sub->unexpected_code.load(), -1);
    }
  }
  EXPECT_EQ(delivered, accepted.load())
      << "accepted and terminated must balance exactly";
  EXPECT_EQ(accepted.load() + refused.load(),
            static_cast<uint64_t>(kSubmitters) * kPerThread);
  // The stable shard survived the churn untouched.
  Result<ServiceStats> stable = service.StatsFor("stable");
  ASSERT_TRUE(stable.ok());
  EXPECT_GT(stable->completed, 0u);
}

TEST(RegistryChaosTest, DetachRacingShutdownTerminates) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ShardedServiceOptions options;
    options.shard.workers = 2;
    options.shard.queue_capacity = 8;
    options.detach_drain = milliseconds(1'000);
    auto service = std::make_unique<ShardedSolveService>(options);
    ASSERT_TRUE(service->Attach("a", Db(kStableFacts)).ok());
    ASSERT_TRUE(service->Attach("b", Db(kFlapFacts)).ok());

    Query query = Q(kQueryText);
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> terminals{0};
    std::atomic<bool> stop{false};
    std::thread submitter([&] {
      Rng rng(seed);
      while (!stop.load()) {
        ServeJob job(query, nullptr);
        Result<uint64_t> id = service->Submit(
            rng.Next() % 2 == 0 ? "a" : "b", std::move(job),
            [&](const ServeResponse&) { terminals.fetch_add(1); });
        if (id.ok()) accepted.fetch_add(1);
      }
    });
    std::thread detacher([&] {
      std::this_thread::sleep_for(milliseconds(seed % 3));
      (void)service->Detach("b");
    });
    std::this_thread::sleep_for(milliseconds(2 * seed));
    EXPECT_TRUE(service->Shutdown(milliseconds(5'000)));
    stop.store(true);
    submitter.join();
    detacher.join();
    EXPECT_EQ(terminals.load(), accepted.load());
    // Post-shutdown: everything fails typed, nothing crashes.
    ServeJob late(query, nullptr);
    Result<uint64_t> rejected =
        service->Submit("a", std::move(late), [](const ServeResponse&) {});
    EXPECT_FALSE(rejected.ok());
    service.reset();  // second (destructor) shutdown must be a no-op
  }
}

}  // namespace
}  // namespace cqa
