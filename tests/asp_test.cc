// Structural tests for the ASP export (no ASP solver is available offline,
// so we validate the program text: groundable shape, one choice rule per
// relation, correct literal signs, safety of the sat rule).

#include <gtest/gtest.h>

#include "cqa/export/asp.h"
#include "cqa/query/parser.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(AspExportTest, Q1Program) {
  Query q1 = Q("R(x | y), not S(y | x)");
  Result<Database> db = Database::FromText(R"(
    R(alice | bob), R(alice | george)
    S(bob | alice)
  )");
  ASSERT_TRUE(db.ok());
  Result<std::string> program = ToAspProgram(q1, db.value());
  ASSERT_TRUE(program.ok()) << program.error();
  const std::string& p = program.value();

  // All three facts exported.
  EXPECT_EQ(CountOccurrences(p, "f_r(\"alice\""), 2u);
  EXPECT_EQ(CountOccurrences(p, "f_s(\"bob\", \"alice\")."), 1u);
  // One choice rule per relation, with a local head variable.
  EXPECT_EQ(CountOccurrences(p, "1 { in_r(X1, Y2) : f_r(X1, Y2) } 1"), 1u);
  EXPECT_EQ(CountOccurrences(p, "1 { in_s(X1, Y2) : f_s(X1, Y2) } 1"), 1u);
  // The sat rule matches q over the repair: positive in_r, negated in_s
  // with the crossed variable pattern.
  EXPECT_NE(p.find("sat :- in_r("), std::string::npos);
  EXPECT_NE(p.find("not in_s("), std::string::npos);
  // Certainty-as-unsat constraint present.
  EXPECT_NE(p.find(":- sat."), std::string::npos);
}

TEST(AspExportTest, ConstantsAreQuotedAndEscaped) {
  Query q = Q("S(x), not N1('c' | x)");
  Schema s;
  ASSERT_TRUE(q.RegisterInto(&s).ok());
  Database db(s);
  db.AddFactOrDie("S", {Value::Of("has \"quote\"")});
  db.AddFactOrDie("N1", {Value::Of("c"), Value::Of("x\\y")});
  Result<std::string> program = ToAspProgram(q, db);
  ASSERT_TRUE(program.ok());
  EXPECT_NE(program->find("f_s(\"has \\\"quote\\\"\")."), std::string::npos);
  EXPECT_NE(program->find("\"x\\\\y\""), std::string::npos);
  // The constant key of N1 appears in the sat rule as a quoted constant.
  EXPECT_NE(program->find("not in_n1(\"c\", "), std::string::npos);
}

TEST(AspExportTest, SafetyInSatRule) {
  // Every variable of a negated literal also occurs in a positive literal
  // of the rule body (clingo safety) — guaranteed by query safety; check
  // the variable mangling is consistent across literals.
  Query q = Q("R(x | y), not S(y | x)");
  Schema s;
  ASSERT_TRUE(q.RegisterInto(&s).ok());
  Result<std::string> program = ToAspProgram(q, Database(s));
  ASSERT_TRUE(program.ok());
  // Extract the sat rule line.
  size_t pos = program->find("sat :- ");
  ASSERT_NE(pos, std::string::npos);
  std::string rule = program->substr(pos, program->find('\n', pos) - pos);
  // The same two variable tokens appear in both literals (crossed order).
  size_t in_r = rule.find("in_r(");
  size_t in_s = rule.find("in_s(");
  ASSERT_NE(in_r, std::string::npos);
  ASSERT_NE(in_s, std::string::npos);
  std::string r_args = rule.substr(in_r + 5, rule.find(')', in_r) - in_r - 5);
  std::string s_args = rule.substr(in_s + 5, rule.find(')', in_s) - in_s - 5);
  // Crossed: "Va, Vb" vs "Vb, Va".
  auto comma = r_args.find(", ");
  std::string v1 = r_args.substr(0, comma);
  std::string v2 = r_args.substr(comma + 2);
  EXPECT_EQ(s_args, v2 + ", " + v1);
}

TEST(AspExportTest, RejectsDiseqsAndReified) {
  Query q = Q("R(x | y)").WithDiseq(
      Diseq{{Term::Var("x")}, {Term::Const("a")}});
  Schema s;
  ASSERT_TRUE(q.RegisterInto(&s).ok());
  EXPECT_FALSE(ToAspProgram(q, Database(s)).ok());
}

}  // namespace
}  // namespace cqa
