#include <gtest/gtest.h>

#include "cqa/certainty/backtracking.h"
#include "cqa/certainty/naive.h"
#include "cqa/db/eval.h"
#include "cqa/gen/random_db.h"
#include "cqa/gen/random_query.h"
#include "cqa/query/parser.h"
#include "cqa/reductions/bpm.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

TEST(WitnessTest, Figure1FalsifyingRepair) {
  Result<Database> db = Database::FromText(R"(
    R(alice | bob), R(alice | george), R(maria | bob), R(maria | john)
    S(bob | alice), S(bob | maria), S(george | alice), S(george | maria)
  )");
  ASSERT_TRUE(db.ok());
  Query q1 = MakeQ1();
  Result<std::optional<Database>> witness =
      FindFalsifyingRepair(q1, db.value());
  ASSERT_TRUE(witness.ok()) << witness.error();
  ASSERT_TRUE(witness->has_value());
  const Database& repair = **witness;
  EXPECT_TRUE(repair.IsConsistent());
  EXPECT_EQ(repair.NumFacts(), db->NumBlocks());  // maximal: one per block
  EXPECT_FALSE(Satisfies(q1, repair));
}

TEST(WitnessTest, NoWitnessWhenCertain) {
  Result<Database> db = Database::FromText("R(a | b)\nS(zzz | w)");
  ASSERT_TRUE(db.ok());
  Result<std::optional<Database>> witness =
      FindFalsifyingRepair(MakeQ1(), db.value());
  ASSERT_TRUE(witness.ok());
  EXPECT_FALSE(witness->has_value());
}

TEST(WitnessTest, WitnessesAreValidOnRandomInstances) {
  Rng rng(2301);
  RandomQueryOptions qopts;
  RandomDbOptions dopts;
  dopts.blocks_per_relation = 3;
  int falsified = 0;
  for (int trial = 0; trial < 150; ++trial) {
    Query q = GenerateRandomQuery(qopts, &rng);
    Database db = GenerateRandomDatabaseFor(q, dopts, &rng);
    Result<std::optional<Database>> witness = FindFalsifyingRepair(q, db);
    ASSERT_TRUE(witness.ok()) << witness.error();
    Result<bool> oracle = IsCertainNaive(q, db);
    ASSERT_TRUE(oracle.ok());
    ASSERT_EQ(witness->has_value(), !oracle.value()) << q.ToString();
    if (witness->has_value()) {
      ++falsified;
      const Database& repair = **witness;
      EXPECT_TRUE(repair.IsConsistent());
      EXPECT_EQ(repair.NumFacts(), db.NumBlocks());
      EXPECT_FALSE(Satisfies(q, repair))
          << q.ToString() << "\nwitness:\n" << repair.ToString()
          << "\ndb:\n" << db.ToString();
      // Every witness fact comes from the database.
      for (const RelationSchema& rs : repair.schema().relations()) {
        for (const Tuple& t : repair.FactsOf(rs.name)) {
          EXPECT_TRUE(db.Contains(rs.name, t));
        }
      }
    }
  }
  EXPECT_GT(falsified, 20);
}

TEST(WitnessTest, WorksWithCyclicQueries) {
  // q0's falsifying repairs via the exact search.
  Query q0 = Q("R(x | y), S(y | x)");
  Result<Database> db = Database::FromText(R"(
    R(a | b), R(a | c)
    S(b | a), S(b | z)
  )");
  ASSERT_TRUE(db.ok());
  Result<std::optional<Database>> witness =
      FindFalsifyingRepair(q0, db.value());
  ASSERT_TRUE(witness.ok());
  ASSERT_TRUE(witness->has_value());
  EXPECT_FALSE(Satisfies(q0, **witness));
}

}  // namespace
}  // namespace cqa
