#include <gtest/gtest.h>

#include <set>

#include "cqa/db/repairs.h"

namespace cqa {
namespace {

Database SmallDb() {
  Result<Database> db = Database::FromText(R"(
    R(a | 1), R(a | 2), R(a | 3)
    S(b | 1), S(b | 2)
  )");
  EXPECT_TRUE(db.ok());
  return db.value();
}

TEST(RepairsTest, EnumeratesAllDistinctRepairs) {
  Database db = SmallDb();
  std::set<std::string> seen;
  ForEachRepair(db, [&](const Repair& r) {
    seen.insert(r.ToString());
    return true;
  });
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(db.CountRepairs(), 6u);
}

TEST(RepairsTest, EmptyDatabaseHasOneRepair) {
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  Database db(s);
  int count = 0;
  ForEachRepair(db, [&](const Repair&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
}

TEST(RepairsTest, EarlyStop) {
  Database db = SmallDb();
  int count = 0;
  bool completed = ForEachRepair(db, [&](const Repair&) {
    ++count;
    return count < 3;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 3);
}

TEST(RepairsTest, RepairsAreConsistentAndMaximal) {
  Database db = SmallDb();
  ForEachRepair(db, [&](const Repair& r) {
    Database materialised = r.ToDatabase();
    EXPECT_TRUE(materialised.IsConsistent());
    // One fact per block.
    EXPECT_EQ(materialised.NumFacts(), db.NumBlocks());
    return true;
  });
}

TEST(RepairsTest, ContainsMatchesChoice) {
  Database db = SmallDb();
  Symbol rel = InternSymbol("R");
  ForEachRepair(db, [&](const Repair& r) {
    int present = 0;
    for (int i = 1; i <= 3; ++i) {
      if (r.Contains(rel, {Value::Of("a"), Value::Of(std::to_string(i))})) {
        ++present;
      }
    }
    EXPECT_EQ(present, 1);  // exactly one fact of the block
    EXPECT_FALSE(r.Contains(rel, {Value::Of("zz"), Value::Of("1")}));
    return true;
  });
}

TEST(RepairsTest, ForEachFactYieldsOnePerBlock) {
  Database db = SmallDb();
  ForEachRepair(db, [&](const Repair& r) {
    int count = 0;
    r.ForEachFact(InternSymbol("R"), [&](const Tuple&) {
      ++count;
      return true;
    });
    EXPECT_EQ(count, 1);
    return true;
  });
}

TEST(RepairsTest, RandomRepairIsValid) {
  Database db = SmallDb();
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    Repair r = RandomRepair(db, &rng);
    EXPECT_TRUE(r.ToDatabase().IsConsistent());
  }
}

TEST(RepairsTest, ConsistentDatabaseIsItsOwnRepair) {
  Result<Database> db = Database::FromText("R(a | 1)\nS(b | 2)");
  ASSERT_TRUE(db.ok());
  int count = 0;
  ForEachRepair(db.value(), [&](const Repair& r) {
    ++count;
    EXPECT_TRUE(r.Contains(InternSymbol("R"), {Value::Of("a"), Value::Of("1")}));
    return true;
  });
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace cqa
