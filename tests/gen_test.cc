#include <gtest/gtest.h>

#include "cqa/attack/classification.h"
#include "cqa/gen/poll.h"
#include "cqa/gen/random_db.h"
#include "cqa/gen/random_query.h"
#include "cqa/query/parser.h"

namespace cqa {
namespace {

TEST(RandomDbTest, DeterministicForSeed) {
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  Rng a(5), b(5);
  Database da = GenerateRandomDatabase(s, {}, &a);
  Database db = GenerateRandomDatabase(s, {}, &b);
  EXPECT_EQ(da.ToString(), db.ToString());
}

TEST(RandomDbTest, RespectsKnobs) {
  Schema s;
  s.AddRelationOrDie("R", 3, 2);
  RandomDbOptions opts;
  opts.blocks_per_relation = 10;
  opts.min_block_size = 2;
  opts.max_block_size = 2;
  opts.domain_size = 50;  // large domain: block keys rarely collide
  Rng rng(7);
  Database db = GenerateRandomDatabase(s, opts, &rng);
  EXPECT_GT(db.NumFacts(), 10u);
  for (const Database::Block& block : db.blocks()) {
    EXPECT_LE(block.size(), 4u);  // merges can at most double here
  }
}

TEST(RandomDbTest, IncludesQueryConstants) {
  Result<Query> q = ParseQuery("N('c' | x), P(x | y)");
  ASSERT_TRUE(q.ok());
  Rng rng(11);
  bool saw_c = false;
  for (int i = 0; i < 30 && !saw_c; ++i) {
    Database db = GenerateRandomDatabaseFor(q.value(), {}, &rng);
    for (Value v : db.ActiveDomain()) {
      if (v == Value::Of("c")) saw_c = true;
    }
  }
  EXPECT_TRUE(saw_c);
}

TEST(RandomQueryTest, AlwaysValidAndGuarded) {
  Rng rng(13);
  RandomQueryOptions opts;
  for (int i = 0; i < 300; ++i) {
    Query q = GenerateRandomQuery(opts, &rng);
    EXPECT_GE(q.PositiveIndices().size(), 1u);
    EXPECT_TRUE(q.IsWeaklyGuarded()) << q.ToString();
    // Re-validating never fails.
    EXPECT_TRUE(Query::Make(q.literals()).ok());
  }
}

TEST(RandomQueryTest, ProducesBothClasses) {
  Rng rng(17);
  RandomQueryOptions opts;
  int fo = 0, hard = 0;
  for (int i = 0; i < 300; ++i) {
    Classification c = Classify(GenerateRandomQuery(opts, &rng));
    if (c.cls == CertaintyClass::kFO) ++fo;
    if (c.cls == CertaintyClass::kLHard || c.cls == CertaintyClass::kNLHard) {
      ++hard;
    }
  }
  EXPECT_GT(fo, 0);
  EXPECT_GT(hard, 0);
}

TEST(PollTest, SchemaAndQueriesConsistent) {
  Schema s = PollSchema();
  for (const Query& q : {PollQ1(), PollQ2(), PollQa(), PollQb()}) {
    Schema copy = s;
    EXPECT_TRUE(q.RegisterInto(&copy).ok()) << q.ToString();
  }
}

TEST(PollTest, GeneratedDataMatchesSchema) {
  Rng rng(19);
  PollDbOptions opts;
  opts.num_persons = 20;
  opts.num_towns = 5;
  Database db = GeneratePollDatabase(opts, &rng);
  EXPECT_GE(db.NumFacts(InternSymbol("Born")), 20u);
  EXPECT_GE(db.NumFacts(InternSymbol("Lives")), 20u);
  EXPECT_GE(db.NumFacts(InternSymbol("Mayor")), 5u);
  // With inconsistency 0.3 and 45+ draws, some block should be violated.
  EXPECT_FALSE(db.IsConsistent());
  // Likes is all-key, hence always consistent on its own.
  for (const Database::Block& b : db.blocks()) {
    if (b.relation == InternSymbol("Likes")) {
      EXPECT_EQ(b.size(), 1u);
    }
  }
}

TEST(PollTest, ZeroInconsistencyIsConsistent) {
  Rng rng(23);
  PollDbOptions opts;
  opts.inconsistency = 0.0;
  Database db = GeneratePollDatabase(opts, &rng);
  EXPECT_TRUE(db.IsConsistent());
}

}  // namespace
}  // namespace cqa
