// Durability tests for the write-ahead delta journal (src/cqa/delta/
// journal.*) and the crash-recovery contract of ShardedSolveService:
//
//  * on-disk format: append/replay roundtrip, CRC rejection, torn-tail
//    truncation at EVERY byte offset of a multi-record journal — the
//    recovered state must equal a clean application of exactly the record
//    prefix that fits, with verdict parity across every solver engine;
//  * fault injection: clean append failure (nothing written, delta
//    rejected) and mid-write tear (the kill -9 on-disk image), both
//    recovered from on restart;
//  * restart semantics: journal replay over the base snapshot restores the
//    acknowledged fingerprint, seeds idempotency ids, and rejects a wrong
//    base snapshot instead of serving a silently diverged database.

#include <gtest/gtest.h>

#include <stdlib.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cqa/cache/fingerprint.h"
#include "cqa/certainty/solver.h"
#include "cqa/db/database.h"
#include "cqa/delta/delta.h"
#include "cqa/delta/journal.h"
#include "cqa/query/parser.h"
#include "cqa/registry/sharded_service.h"

namespace cqa {
namespace {

Database DbVal(const char* text) {
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return std::move(db.value());
}

DeltaOp Ins(const char* rel, std::vector<std::string> values) {
  DeltaOp op;
  op.insert = true;
  op.relation = rel;
  op.values = std::move(values);
  return op;
}

DeltaOp Del(const char* rel, std::vector<std::string> values) {
  DeltaOp op;
  op.insert = false;
  op.relation = rel;
  op.values = std::move(values);
  return op;
}

FactDelta Delta(std::string id, std::vector<DeltaOp> ops) {
  FactDelta d;
  d.id = std::move(id);
  d.ops = std::move(ops);
  return d;
}

struct TempDir {
  std::string path;
  TempDir() {
    char buf[] = "/tmp/cqa_journal_test_XXXXXX";
    char* made = mkdtemp(buf);
    EXPECT_NE(made, nullptr);
    path = made != nullptr ? made : "/tmp";
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
}

constexpr char kBase[] = "R(a | b), R(a | c)\nS(b | a)\nT(x | y)";
constexpr char kQuery[] = "R(x | y), not S(y | x)";

// A small scripted history whose deltas change the query's verdict along
// the way (so prefix confusion cannot fingerprint-collide into passing).
std::vector<FactDelta> ScriptedDeltas() {
  return {
      Delta("d1", {Ins("R", {"d", "e"})}),
      Delta("d2", {Del("S", {"b", "a"})}),          // flips kQuery to certain
      Delta("d3", {Ins("S", {"e", "d"}), Ins("T", {"t2", "u2"})}),
      Delta("d4", {Del("R", {"d", "e"})}),
      Delta("d5", {Ins("S", {"b", "a"}), Del("T", {"x", "y"})}),
  };
}

// Applies `deltas` to a fresh base snapshot, returning every intermediate
// epoch's fingerprint (index 0 = base, i = after delta i-1) and the final
// database.
std::pair<std::vector<DbFingerprint>, std::shared_ptr<const Database>>
CleanHistory(const std::vector<FactDelta>& deltas) {
  auto current = std::make_shared<const Database>(DbVal(kBase));
  std::vector<DbFingerprint> fps = {FingerprintDatabase(*current)};
  for (const FactDelta& d : deltas) {
    Result<DeltaApplyOutcome> out = ApplyDeltaToDatabase(*current, d);
    EXPECT_TRUE(out.ok()) << out.error();
    current = out->db;
    fps.push_back(out->fingerprint);
  }
  return {fps, current};
}

// The full engine roster: recovered and clean databases must agree on
// every engine's outcome (verdict when it answers, error code when the
// query is outside the engine's fragment).
const SolverMethod kAllMethods[] = {
    SolverMethod::kAuto,       SolverMethod::kRewriting,
    SolverMethod::kAlgorithm1, SolverMethod::kBacktracking,
    SolverMethod::kNaive,      SolverMethod::kMatchingQ1,
    SolverMethod::kSampling,
};

void ExpectVerdictParity(const Database& recovered, const Database& clean) {
  Result<Query> q = ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());
  for (SolverMethod m : kAllMethods) {
    Result<SolveReport> a = SolveCertainty(*q, recovered, m);
    Result<SolveReport> b = SolveCertainty(*q, clean, m);
    ASSERT_EQ(a.ok(), b.ok()) << "engine " << ToString(m);
    if (a.ok()) {
      EXPECT_EQ(a->verdict, b->verdict) << "engine " << ToString(m);
    } else {
      EXPECT_EQ(a.code(), b.code()) << "engine " << ToString(m);
    }
  }
}

// ---------------------------------------------------------------------------
// Format

TEST(JournalFormatTest, AppendReplayRoundtrip) {
  TempDir dir;
  const std::string path = dir.path + "/roundtrip.journal";
  std::vector<FactDelta> deltas = ScriptedDeltas();
  auto [fps, final_db] = CleanHistory(deltas);
  {
    Result<std::unique_ptr<DeltaJournal>> journal =
        DeltaJournal::Open(path, JournalOptions{});
    ASSERT_TRUE(journal.ok()) << journal.error();
    for (size_t i = 0; i < deltas.size(); ++i) {
      Result<bool> appended = (*journal)->Append(deltas[i], fps[i + 1]);
      ASSERT_TRUE(appended.ok()) << appended.error();
    }
    // kAlways: every acked record was fsynced before the ack.
    EXPECT_EQ((*journal)->fsyncs(), deltas.size());
    EXPECT_EQ((*journal)->appends(), deltas.size());
  }
  Result<JournalReplay> replay = ReplayJournalFile(path, false);
  ASSERT_TRUE(replay.ok()) << replay.error();
  EXPECT_FALSE(replay->truncated_tail);
  ASSERT_EQ(replay->records.size(), deltas.size());
  for (size_t i = 0; i < deltas.size(); ++i) {
    const JournalRecord& rec = replay->records[i];
    EXPECT_EQ(rec.delta.id, deltas[i].id);
    EXPECT_EQ(rec.fp_after, fps[i + 1]);
    ASSERT_EQ(rec.delta.ops.size(), deltas[i].ops.size());
    for (size_t j = 0; j < deltas[i].ops.size(); ++j) {
      EXPECT_EQ(rec.delta.ops[j].insert, deltas[i].ops[j].insert);
      EXPECT_EQ(rec.delta.ops[j].relation, deltas[i].ops[j].relation);
      EXPECT_EQ(rec.delta.ops[j].values, deltas[i].ops[j].values);
    }
  }
}

TEST(JournalFormatTest, MissingFileIsAnEmptyJournal) {
  TempDir dir;
  Result<JournalReplay> replay =
      ReplayJournalFile(dir.path + "/never-written.journal", true);
  ASSERT_TRUE(replay.ok()) << replay.error();
  EXPECT_TRUE(replay->records.empty());
  EXPECT_FALSE(replay->truncated_tail);
}

// The crash differential: for EVERY byte offset a kill -9 could leave the
// file at, the parsed prefix must be exactly the records that fit whole,
// and replaying them over the base snapshot must land on the fingerprint
// acknowledged for that prefix.
TEST(JournalFormatTest, EveryTruncationOffsetRecoversTheAckedPrefix) {
  TempDir dir;
  const std::string path = dir.path + "/cut.journal";
  std::vector<FactDelta> deltas = ScriptedDeltas();
  auto [fps, final_db] = CleanHistory(deltas);

  std::vector<uint64_t> boundaries = {0};  // end offset of record i
  {
    JournalOptions fast;
    fast.fsync = FsyncPolicy::kNever;
    Result<std::unique_ptr<DeltaJournal>> journal =
        DeltaJournal::Open(path, fast);
    ASSERT_TRUE(journal.ok()) << journal.error();
    for (size_t i = 0; i < deltas.size(); ++i) {
      ASSERT_TRUE((*journal)->Append(deltas[i], fps[i + 1]).ok());
      boundaries.push_back((*journal)->bytes_written());
    }
  }
  const std::string bytes = ReadFileBytes(path);
  ASSERT_EQ(bytes.size(), boundaries.back());

  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    JournalReplay replay = ParseJournalBytes(
        std::string_view(bytes.data(), cut));
    // Number of whole records below the cut.
    size_t expected = 0;
    while (expected + 1 < boundaries.size() &&
           boundaries[expected + 1] <= cut) {
      ++expected;
    }
    ASSERT_EQ(replay.records.size(), expected) << "cut at " << cut;
    EXPECT_EQ(replay.valid_bytes, boundaries[expected]) << "cut at " << cut;
    EXPECT_EQ(replay.truncated_tail, cut != boundaries[expected])
        << "cut at " << cut;

    // Recovery lands on the acked prefix's fingerprint (checked at every
    // cut; O(1) per record thanks to the incremental digest).
    auto recovered = std::make_shared<const Database>(DbVal(kBase));
    for (const JournalRecord& rec : replay.records) {
      Result<DeltaApplyOutcome> out = ApplyDeltaToDatabase(*recovered, rec.delta);
      ASSERT_TRUE(out.ok()) << out.error();
      EXPECT_EQ(out->fingerprint, rec.fp_after);
      recovered = out->db;
    }
    EXPECT_EQ(FingerprintDatabase(*recovered), fps[expected])
        << "cut at " << cut;
  }

  // Verdict parity at each record boundary: the recovered database answers
  // like a clean application of the same prefix, on every engine.
  auto clean = std::make_shared<const Database>(DbVal(kBase));
  JournalReplay full = ParseJournalBytes(bytes);
  auto recovered = std::make_shared<const Database>(DbVal(kBase));
  ExpectVerdictParity(*recovered, *clean);
  for (size_t i = 0; i < full.records.size(); ++i) {
    Result<DeltaApplyOutcome> r =
        ApplyDeltaToDatabase(*recovered, full.records[i].delta);
    Result<DeltaApplyOutcome> c = ApplyDeltaToDatabase(*clean, deltas[i]);
    ASSERT_TRUE(r.ok() && c.ok());
    recovered = r->db;
    clean = c->db;
    ExpectVerdictParity(*recovered, *clean);
  }
}

TEST(JournalFormatTest, RandomCorruptionNeverCrashesAndYieldsAPrefix) {
  TempDir dir;
  const std::string path = dir.path + "/corrupt.journal";
  std::vector<FactDelta> deltas = ScriptedDeltas();
  auto [fps, final_db] = CleanHistory(deltas);
  {
    JournalOptions fast;
    fast.fsync = FsyncPolicy::kNever;
    Result<std::unique_ptr<DeltaJournal>> journal =
        DeltaJournal::Open(path, fast);
    ASSERT_TRUE(journal.ok());
    for (size_t i = 0; i < deltas.size(); ++i) {
      ASSERT_TRUE((*journal)->Append(deltas[i], fps[i + 1]).ok());
    }
  }
  const std::string clean_bytes = ReadFileBytes(path);
  std::mt19937_64 rng(0x5eed5eedull);
  for (int trial = 0; trial < 500; ++trial) {
    std::string bytes = clean_bytes;
    size_t pos = rng() % bytes.size();
    bytes[pos] = static_cast<char>(rng());
    JournalReplay replay = ParseJournalBytes(bytes);
    // A flipped byte can only shorten the valid prefix (or, for a benign
    // same-value write, leave it alone) — and every surviving record must
    // still replay to its own recorded fingerprint.
    EXPECT_LE(replay.records.size(), deltas.size());
    auto db = std::make_shared<const Database>(DbVal(kBase));
    for (const JournalRecord& rec : replay.records) {
      Result<DeltaApplyOutcome> out = ApplyDeltaToDatabase(*db, rec.delta);
      if (!out.ok()) break;  // corrupted ops that still pass CRC are
                             // impossible; schema says otherwise → stop
      EXPECT_EQ(out->fingerprint, rec.fp_after);
      db = out->db;
    }
  }
}

TEST(JournalChaosTest, CleanAppendFailureWritesNothing) {
  TempDir dir;
  const std::string path = dir.path + "/fail.journal";
  JournalOptions chaos;
  chaos.fsync = FsyncPolicy::kNever;
  chaos.fail_after_appends = 1;
  Result<std::unique_ptr<DeltaJournal>> journal =
      DeltaJournal::Open(path, chaos);
  ASSERT_TRUE(journal.ok());
  Database base = DbVal(kBase);
  DbFingerprint fp = FingerprintDatabase(base);
  ASSERT_TRUE((*journal)->Append(Delta("a", {Ins("R", {"1", "2"})}), fp).ok());
  const uint64_t after_first = (*journal)->bytes_written();
  Result<bool> second =
      (*journal)->Append(Delta("b", {Ins("R", {"3", "4"})}), fp);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ((*journal)->bytes_written(), after_first);
  JournalReplay replay = ParseJournalBytes(ReadFileBytes(path));
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].delta.id, "a");
  EXPECT_FALSE(replay.truncated_tail);
}

TEST(JournalChaosTest, TornAppendLeavesARecoverablePrefix) {
  TempDir dir;
  const std::string path = dir.path + "/tear.journal";
  JournalOptions chaos;
  chaos.fsync = FsyncPolicy::kNever;
  chaos.tear_after_appends = 1;
  chaos.tear_keep_bytes = 6;  // half a header: the torn image of kill -9
  Result<std::unique_ptr<DeltaJournal>> journal =
      DeltaJournal::Open(path, chaos);
  ASSERT_TRUE(journal.ok());
  Database base = DbVal(kBase);
  DbFingerprint fp = FingerprintDatabase(base);
  ASSERT_TRUE((*journal)->Append(Delta("a", {Ins("R", {"1", "2"})}), fp).ok());
  ASSERT_FALSE(
      (*journal)->Append(Delta("b", {Ins("R", {"3", "4"})}), fp).ok());

  // Replay with truncation recovers record "a" and cuts the torn bytes so
  // the next append restarts at a record boundary.
  Result<JournalReplay> replay = ReplayJournalFile(path, true);
  ASSERT_TRUE(replay.ok()) << replay.error();
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_TRUE(replay->truncated_tail);
  EXPECT_EQ(std::filesystem::file_size(path), replay->valid_bytes);

  Result<std::unique_ptr<DeltaJournal>> reopened =
      DeltaJournal::Open(path, JournalOptions{});
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE(
      (*reopened)->Append(Delta("b", {Ins("R", {"3", "4"})}), fp).ok());
  JournalReplay after = ParseJournalBytes(ReadFileBytes(path));
  ASSERT_EQ(after.records.size(), 2u);
  EXPECT_EQ(after.records[1].delta.id, "b");
}

// ---------------------------------------------------------------------------
// Group fsync

// Concurrent appliers under kGroup share fsyncs: with enough overlap the
// number of fsyncs is strictly smaller than the number of acked deltas,
// and every ack still implies a covering fsync ran first.
TEST(JournalGroupFsyncTest, ConcurrentAcksShareFsyncs) {
  TempDir dir;
  const std::string path = dir.path + "/group.journal";
  JournalOptions group;
  group.fsync = FsyncPolicy::kGroup;
  group.group_max_delay = std::chrono::milliseconds(20);
  group.group_max_batch = 64;
  Result<std::unique_ptr<DeltaJournal>> journal =
      DeltaJournal::Open(path, group);
  ASSERT_TRUE(journal.ok()) << journal.error();
  Database base = DbVal(kBase);
  DbFingerprint fp = FingerprintDatabase(base);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 16;
  std::mutex append_mu;  // stands in for the shard's delta lock
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t seq = 0;
        {
          std::lock_guard<std::mutex> lock(append_mu);
          std::string id = "t" + std::to_string(t) + "-" + std::to_string(i);
          Result<bool> appended = (*journal)->Append(
              Delta(id, {Ins("T", {id, "v"})}), fp, /*epoch=*/1);
          if (!appended.ok()) {
            ++failures;
            return;
          }
          seq = (*journal)->appends();
        }
        // Ack gate, outside the lock: this is where batching happens.
        if (!(*journal)->WaitDurable(seq).ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);
  EXPECT_EQ((*journal)->appends(), uint64_t{kThreads * kPerThread});
  EXPECT_GE((*journal)->fsyncs(), 1u);
  // A fully serialized schedule (one CPU, unlucky scheduler) can pay one
  // fsync per ack, so the hard bound is <=; BurstThenFlushSharesOneFsync
  // below asserts the amortization deterministically.
  EXPECT_LE((*journal)->fsyncs(), uint64_t{kThreads * kPerThread});
  // Everything acked is durable.
  EXPECT_EQ((*journal)->durable_bytes(), (*journal)->bytes_written());
  JournalReplay replay = ParseJournalBytes(ReadFileBytes(path));
  EXPECT_EQ(replay.records.size(), size_t{kThreads * kPerThread});
  EXPECT_FALSE(replay.truncated_tail);
}

// Deterministic fsync amortization: a burst of appends with no durability
// waiter stays in the batch window, and the single flush barrier at the
// end covers the whole burst with (essentially) one fsync. The batcher
// flushes early only when a waiter is registered AND no new append
// arrived since the last wakeup, so an ack-less burst coalesces fully.
TEST(JournalGroupFsyncTest, BurstThenFlushSharesOneFsync) {
  TempDir dir;
  const std::string path = dir.path + "/burst.journal";
  JournalOptions group;
  group.fsync = FsyncPolicy::kGroup;
  group.group_max_delay = std::chrono::milliseconds(200);
  group.group_max_batch = 64;
  Result<std::unique_ptr<DeltaJournal>> journal =
      DeltaJournal::Open(path, group);
  ASSERT_TRUE(journal.ok()) << journal.error();
  Database base = DbVal(kBase);
  DbFingerprint fp = FingerprintDatabase(base);
  constexpr int kBurst = 16;
  for (int i = 0; i < kBurst; ++i) {
    std::string id = "b" + std::to_string(i);
    ASSERT_TRUE(
        (*journal)->Append(Delta(id, {Ins("T", {id, "v"})}), fp, 1).ok());
  }
  ASSERT_TRUE((*journal)->FlushDurable().ok());
  EXPECT_EQ((*journal)->appends(), uint64_t{kBurst});
  EXPECT_EQ((*journal)->durable_bytes(), (*journal)->bytes_written());
  // One covering fsync in the common case; a scheduler stall longer than
  // the 200ms window could split the burst, so allow a little slack.
  EXPECT_LE((*journal)->fsyncs(), 4u)
      << "an ack-less burst should coalesce into ~one fsync";
}

// The power-loss differential for group mode: truncate the file to
// `durable_bytes()` (what stable storage is guaranteed to hold) and check
// every *acked* record survives. Unacked appends past the durable mark may
// die — that is the documented trade — but they were never acknowledged.
TEST(JournalGroupFsyncTest, AckedRecordsSurviveTruncationToDurableBytes) {
  TempDir dir;
  const std::string path = dir.path + "/powerloss.journal";
  Database base = DbVal(kBase);
  DbFingerprint fp = FingerprintDatabase(base);
  std::vector<std::string> acked_ids;
  uint64_t durable_mark = 0;
  {
    JournalOptions group;
    group.fsync = FsyncPolicy::kGroup;
    group.group_max_delay = std::chrono::milliseconds(1);
    Result<std::unique_ptr<DeltaJournal>> journal =
        DeltaJournal::Open(path, group);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 10; ++i) {
      std::string id = "g" + std::to_string(i);
      ASSERT_TRUE(
          (*journal)->Append(Delta(id, {Ins("T", {id, "v"})}), fp, 1).ok());
      ASSERT_TRUE((*journal)->WaitDurable((*journal)->appends()).ok());
      acked_ids.push_back(id);
    }
    durable_mark = (*journal)->durable_bytes();
    // One more append, NOT waited on: possibly lost, never acked.
    ASSERT_TRUE(
        (*journal)->Append(Delta("unacked", {Ins("T", {"u", "v"})}), fp, 1)
            .ok());
  }
  // Simulate power loss: only the durable prefix reaches the platter.
  std::string bytes = ReadFileBytes(path);
  ASSERT_GE(bytes.size(), durable_mark);
  WriteFileBytes(path, bytes.substr(0, durable_mark));

  Result<JournalReplay> replay = ReplayJournalFile(path, true);
  ASSERT_TRUE(replay.ok());
  ASSERT_GE(replay->records.size(), acked_ids.size());
  for (size_t i = 0; i < acked_ids.size(); ++i) {
    EXPECT_EQ(replay->records[i].delta.id, acked_ids[i]);
  }
}

// A failed batched fsync is sticky: the waiter gets kInternal (the delta
// must not be acked) and the journal poisons further appends — better a
// loud failure than an unbounded unsynced tail silently growing.
TEST(JournalGroupFsyncTest, FailedGroupFsyncIsStickyAndRefusesAcks) {
  TempDir dir;
  JournalOptions chaos;
  chaos.fsync = FsyncPolicy::kGroup;
  chaos.group_max_delay = std::chrono::milliseconds(1);
  chaos.fail_after_fsyncs = 1;
  Result<std::unique_ptr<DeltaJournal>> journal =
      DeltaJournal::Open(dir.path + "/sticky.journal", chaos);
  ASSERT_TRUE(journal.ok());
  Database base = DbVal(kBase);
  DbFingerprint fp = FingerprintDatabase(base);

  ASSERT_TRUE(
      (*journal)->Append(Delta("ok", {Ins("T", {"a", "b"})}), fp, 1).ok());
  ASSERT_TRUE((*journal)->WaitDurable((*journal)->appends()).ok());

  ASSERT_TRUE(
      (*journal)->Append(Delta("doomed", {Ins("T", {"c", "d"})}), fp, 2).ok());
  Result<bool> wait = (*journal)->WaitDurable((*journal)->appends());
  ASSERT_FALSE(wait.ok()) << "acked a record whose fsync failed";
  EXPECT_EQ(wait.code(), ErrorCode::kInternal);

  // Sticky: later appends are refused outright.
  Result<bool> later =
      (*journal)->Append(Delta("later", {Ins("T", {"e", "f"})}), fp, 3);
  EXPECT_FALSE(later.ok());
}

// Reset (compaction) truncates bytes but never the sequence domain: a
// WaitDurable captured before a concurrent Reset still completes.
TEST(JournalGroupFsyncTest, ResetDoesNotStrandDurabilityWaiters) {
  TempDir dir;
  JournalOptions group;
  group.fsync = FsyncPolicy::kGroup;
  group.group_max_delay = std::chrono::milliseconds(1);
  Result<std::unique_ptr<DeltaJournal>> journal =
      DeltaJournal::Open(dir.path + "/reset.journal", group);
  ASSERT_TRUE(journal.ok());
  Database base = DbVal(kBase);
  DbFingerprint fp = FingerprintDatabase(base);

  ASSERT_TRUE(
      (*journal)->Append(Delta("a", {Ins("T", {"1", "2"})}), fp, 1).ok());
  const uint64_t seq = (*journal)->appends();
  ASSERT_TRUE((*journal)->FlushDurable().ok());
  ASSERT_TRUE((*journal)->Reset().ok());
  EXPECT_EQ((*journal)->bytes_written(), 0u);
  // The pre-compaction sequence is still (vacuously) durable.
  EXPECT_TRUE((*journal)->WaitDurable(seq).ok());
  // And the journal keeps accepting appends from a record boundary.
  ASSERT_TRUE(
      (*journal)->Append(Delta("b", {Ins("T", {"3", "4"})}), fp, 2).ok());
  EXPECT_TRUE((*journal)->WaitDurable((*journal)->appends()).ok());
  JournalReplay replay =
      ParseJournalBytes(ReadFileBytes(dir.path + "/reset.journal"));
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].delta.id, "b");
}

// ---------------------------------------------------------------------------
// Service-level recovery

ShardedServiceOptions JournaledOptions(const std::string& dir) {
  ShardedServiceOptions options;
  options.shard.workers = 2;
  options.shard.cache_entries = 64;
  options.journal_dir = dir;
  options.journal.fsync = FsyncPolicy::kNever;  // tests; kAlways in prod
  return options;
}

TEST(JournalRecoveryTest, RestartReplaysAckedDeltasAndSeedsIdempotency) {
  TempDir dir;
  std::vector<FactDelta> deltas = ScriptedDeltas();
  DbFingerprint acked_fp;
  {
    ShardedSolveService service(JournaledOptions(dir.path));
    ASSERT_TRUE(service.Attach("main", DbVal(kBase)).ok());
    for (const FactDelta& d : deltas) {
      Result<DeltaOutcome> out = service.ApplyDelta("main", d);
      ASSERT_TRUE(out.ok()) << out.error();
      acked_fp = out->fingerprint;
    }
    // No detach, no shutdown handshake: the service dies like a crashed
    // process (the journal is already on disk).
  }
  {
    ShardedSolveService service(JournaledOptions(dir.path));
    Result<DatabaseRegistry::Entry> attached =
        service.Attach("main", DbVal(kBase));  // the base snapshot
    ASSERT_TRUE(attached.ok()) << attached.error();
    EXPECT_EQ(attached->fingerprint, acked_fp);

    Result<ServiceStats> stats = service.StatsFor("main");
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->epoch, deltas.size());
    EXPECT_EQ(stats->deltas_applied, 0u) << "replay is not an application";

    // Replayed ids are idempotent: re-sending an acked delta is a no-op.
    Result<DeltaOutcome> dup = service.ApplyDelta("main", deltas[1]);
    ASSERT_TRUE(dup.ok()) << dup.error();
    EXPECT_FALSE(dup->applied);
    EXPECT_EQ(dup->fingerprint, acked_fp);

    // And genuinely new deltas continue the journal.
    Result<DeltaOutcome> fresh =
        service.ApplyDelta("main", Delta("d6", {Ins("T", {"n", "m"})}));
    ASSERT_TRUE(fresh.ok()) << fresh.error();
    EXPECT_TRUE(fresh->applied);
    EXPECT_EQ(fresh->epoch, deltas.size() + 1);
  }
}

TEST(JournalRecoveryTest, WrongBaseSnapshotFailsAttachInsteadOfDiverging) {
  TempDir dir;
  {
    ShardedSolveService service(JournaledOptions(dir.path));
    ASSERT_TRUE(service.Attach("main", DbVal(kBase)).ok());
    ASSERT_TRUE(
        service.ApplyDelta("main", Delta("d1", {Ins("R", {"z", "w"})})).ok());
  }
  {
    ShardedSolveService service(JournaledOptions(dir.path));
    // Different base: the replayed fingerprints cannot match the journal's
    // recorded ones — attaching must fail loudly, not serve wrong data.
    Result<DatabaseRegistry::Entry> attached =
        service.Attach("main", DbVal("R(a | b)"));
    ASSERT_FALSE(attached.ok());
    EXPECT_EQ(attached.code(), ErrorCode::kInternal);
  }
}

TEST(JournalRecoveryTest, CrashMidApplyRecoversToTheAckedPrefix) {
  TempDir dir;
  DbFingerprint fp_after_first;
  {
    ShardedServiceOptions chaos = JournaledOptions(dir.path);
    chaos.journal.tear_after_appends = 1;  // 2nd append dies mid-write
    chaos.journal.tear_keep_bytes = 9;
    ShardedSolveService service(chaos);
    ASSERT_TRUE(service.Attach("main", DbVal(kBase)).ok());

    Result<DeltaOutcome> first =
        service.ApplyDelta("main", Delta("d1", {Ins("R", {"p", "q"})}));
    ASSERT_TRUE(first.ok()) << first.error();
    fp_after_first = first->fingerprint;

    // The torn append: write-ahead means the delta is rejected and the
    // epoch unchanged — the ack never went out, so nothing is owed.
    Result<DeltaOutcome> torn =
        service.ApplyDelta("main", Delta("d2", {Del("S", {"b", "a"})}));
    ASSERT_FALSE(torn.ok());
    EXPECT_EQ(torn.code(), ErrorCode::kInternal);
    Result<ServiceStats> stats = service.StatsFor("main");
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->epoch, 1u);
  }
  {
    ShardedSolveService service(JournaledOptions(dir.path));
    Result<DatabaseRegistry::Entry> attached =
        service.Attach("main", DbVal(kBase));
    ASSERT_TRUE(attached.ok()) << attached.error();
    EXPECT_EQ(attached->fingerprint, fp_after_first)
        << "recovered exactly the acked prefix, not the torn delta";
    Result<ServiceStats> stats = service.StatsFor("main");
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->epoch, 1u);

    // The verdict set matches a clean application of the acked prefix.
    auto clean = std::make_shared<const Database>(DbVal(kBase));
    Result<DeltaApplyOutcome> clean_first =
        ApplyDeltaToDatabase(*clean, Delta("d1", {Ins("R", {"p", "q"})}));
    ASSERT_TRUE(clean_first.ok());
    Result<DatabaseRegistry::Entry> entry = service.registry().Get("main");
    ASSERT_TRUE(entry.ok());
    ExpectVerdictParity(*entry->db, *clean_first->db);
  }
}

TEST(JournalRecoveryTest, JournalCountersSurfaceInShardStats) {
  TempDir dir;
  ShardedServiceOptions options = JournaledOptions(dir.path);
  options.journal.fsync = FsyncPolicy::kAlways;
  ShardedSolveService service(options);
  ASSERT_TRUE(service.Attach("main", DbVal(kBase)).ok());
  ASSERT_TRUE(
      service.ApplyDelta("main", Delta("d1", {Ins("R", {"j", "k"})})).ok());
  Result<ServiceStats> stats = service.StatsFor("main");
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->journal_bytes, 0u);
  EXPECT_GE(stats->journal_fsyncs, 1u);
  EXPECT_EQ(stats->deltas_applied, 1u);
}

}  // namespace
}  // namespace cqa
