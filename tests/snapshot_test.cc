// Epoch snapshots and journal compaction (src/cqa/delta/snapshot.*, and
// the snapshot/recovery pipeline of ShardedSolveService):
//
//  * on-disk format: roundtrip, missing-file fallback, refusal of corrupt
//    or truncated files (never a silent fall-back over a bad snapshot);
//  * bounded recovery: attach after a snapshot loads snapshot + journal
//    tail only, landing on the acknowledged fingerprint with verdict
//    parity against a never-crashed history on every solver engine;
//  * crash-drill matrix at every stage boundary of the snapshot pipeline
//    (temp-file tear, die-before-rename, die-before-journal-truncate) —
//    each must recover to exactly the acked state;
//  * the sliding idempotency window: bounded memory, persistence across
//    snapshots and restarts, and the regression that an in-window
//    duplicate re-acks with applied:false instead of double-applying.

#include <gtest/gtest.h>

#include <stdlib.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cqa/cache/fingerprint.h"
#include "cqa/certainty/solver.h"
#include "cqa/db/database.h"
#include "cqa/delta/delta.h"
#include "cqa/delta/journal.h"
#include "cqa/delta/snapshot.h"
#include "cqa/query/parser.h"
#include "cqa/registry/sharded_service.h"

namespace cqa {
namespace {

Database DbVal(const char* text) {
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return std::move(db.value());
}

DeltaOp Ins(const char* rel, std::vector<std::string> values) {
  DeltaOp op;
  op.insert = true;
  op.relation = rel;
  op.values = std::move(values);
  return op;
}

[[maybe_unused]] DeltaOp Del(const char* rel,
                             std::vector<std::string> values) {
  DeltaOp op;
  op.insert = false;
  op.relation = rel;
  op.values = std::move(values);
  return op;
}

FactDelta Delta(std::string id, std::vector<DeltaOp> ops) {
  FactDelta d;
  d.id = std::move(id);
  d.ops = std::move(ops);
  return d;
}

struct TempDir {
  std::string path;
  TempDir() {
    char buf[] = "/tmp/cqa_snapshot_test_XXXXXX";
    char* made = mkdtemp(buf);
    EXPECT_NE(made, nullptr);
    path = made != nullptr ? made : "/tmp";
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
}

constexpr char kBase[] = "R(a | b), R(a | c)\nS(b | a)\nT(x | y)";
constexpr char kQuery[] = "R(x | y), not S(y | x)";

const SolverMethod kAllMethods[] = {
    SolverMethod::kAuto,       SolverMethod::kRewriting,
    SolverMethod::kAlgorithm1, SolverMethod::kBacktracking,
    SolverMethod::kNaive,      SolverMethod::kMatchingQ1,
    SolverMethod::kSampling,
};

void ExpectVerdictParity(const Database& recovered, const Database& clean) {
  Result<Query> q = ParseQuery(kQuery);
  ASSERT_TRUE(q.ok());
  for (SolverMethod m : kAllMethods) {
    Result<SolveReport> a = SolveCertainty(*q, recovered, m);
    Result<SolveReport> b = SolveCertainty(*q, clean, m);
    ASSERT_EQ(a.ok(), b.ok()) << "engine " << ToString(m);
    if (a.ok()) {
      EXPECT_EQ(a->verdict, b->verdict) << "engine " << ToString(m);
    } else {
      EXPECT_EQ(a.code(), b.code()) << "engine " << ToString(m);
    }
  }
}

// A delta stream long enough to cross snapshot boundaries; delta i toggles
// T facts so every epoch's fingerprint is distinct.
std::vector<FactDelta> Stream(size_t n) {
  std::vector<FactDelta> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Delta("s" + std::to_string(i),
                        {Ins("T", {"k" + std::to_string(i), "v"})}));
  }
  return out;
}

ShardedServiceOptions Opts(const std::string& dir) {
  ShardedServiceOptions options;
  options.shard.workers = 2;
  options.shard.cache_entries = 64;
  options.journal_dir = dir;
  options.journal.fsync = FsyncPolicy::kNever;  // tests; kAlways in prod
  return options;
}

// ---------------------------------------------------------------------------
// File format

TEST(SnapshotFormatTest, WriteReadRoundtrip) {
  TempDir dir;
  const std::string path = dir.path + "/db.snapshot";
  SnapshotData data;
  data.epoch = 42;
  Database db = DbVal(kBase);
  data.fingerprint = FingerprintDatabase(db);
  data.facts = db.ToText();
  data.delta_ids = {{"d1", 40}, {"d2", 41}, {"d3", 42}};

  Result<uint64_t> written = WriteSnapshotFile(path, data, SnapshotPolicy{});
  ASSERT_TRUE(written.ok()) << written.error();
  EXPECT_EQ(*written, std::filesystem::file_size(path));

  Result<SnapshotReadResult> read = ReadSnapshotFile(path);
  ASSERT_TRUE(read.ok()) << read.error();
  ASSERT_TRUE(read->found);
  EXPECT_EQ(read->file_bytes, *written);
  EXPECT_EQ(read->data.epoch, 42u);
  EXPECT_EQ(read->data.fingerprint, data.fingerprint);
  EXPECT_EQ(read->data.delta_ids, data.delta_ids);
  Result<Database> reloaded = Database::FromText(read->data.facts);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(FingerprintDatabase(*reloaded), data.fingerprint);
}

TEST(SnapshotFormatTest, MissingFileIsNotFoundNotAnError) {
  TempDir dir;
  Result<SnapshotReadResult> read =
      ReadSnapshotFile(dir.path + "/never.snapshot");
  ASSERT_TRUE(read.ok()) << read.error();
  EXPECT_FALSE(read->found);
  EXPECT_EQ(read->file_bytes, 0u);
}

TEST(SnapshotFormatTest, CorruptionIsRefusedLoudly) {
  TempDir dir;
  const std::string path = dir.path + "/db.snapshot";
  SnapshotData data;
  data.epoch = 7;
  Database db = DbVal(kBase);
  data.fingerprint = FingerprintDatabase(db);
  data.facts = db.ToText();
  ASSERT_TRUE(WriteSnapshotFile(path, data, SnapshotPolicy{}).ok());
  const std::string clean = ReadFileBytes(path);

  // Flip one byte at every offset: every corruption must be detected (bad
  // magic, bad length, or CRC mismatch) — never parse into wrong data.
  for (size_t pos = 0; pos < clean.size(); ++pos) {
    std::string bytes = clean;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x5a);
    WriteFileBytes(path, bytes);
    Result<SnapshotReadResult> read = ReadSnapshotFile(path);
    ASSERT_FALSE(read.ok()) << "corruption at offset " << pos << " accepted";
    EXPECT_EQ(read.code(), ErrorCode::kInternal);
  }

  // Truncations too (a torn snapshot write that skipped the temp-file
  // protocol would look like this).
  for (size_t cut : {size_t{0}, size_t{4}, size_t{9}, clean.size() - 1}) {
    WriteFileBytes(path, clean.substr(0, cut));
    Result<SnapshotReadResult> read = ReadSnapshotFile(path);
    ASSERT_FALSE(read.ok()) << "truncation at " << cut << " accepted";
  }
}

// ---------------------------------------------------------------------------
// DeltaIdWindow

TEST(DeltaIdWindowTest, SlidingEvictionKeepsTheMostRecentIds) {
  DeltaIdWindow window(3);
  window.Insert("a", 1);
  window.Insert("b", 2);
  window.Insert("c", 3);
  ASSERT_NE(window.Find("a"), nullptr);
  window.Insert("d", 4);  // evicts "a", the oldest
  EXPECT_EQ(window.Find("a"), nullptr);
  ASSERT_NE(window.Find("b"), nullptr);
  EXPECT_EQ(*window.Find("b"), 2u);
  EXPECT_EQ(window.size(), 3u);

  // Re-inserting a present id refreshes the epoch without re-aging it:
  // "b" is still the oldest and goes next.
  window.Insert("b", 9);
  EXPECT_EQ(*window.Find("b"), 9u);
  window.Insert("e", 5);
  EXPECT_EQ(window.Find("b"), nullptr);

  std::vector<std::pair<std::string, uint64_t>> items = window.Items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items.front().first, "c");  // oldest first
  EXPECT_EQ(items.back().first, "e");
}

TEST(DeltaIdWindowTest, MemoryIsBoundedUnderALongStream) {
  DeltaIdWindow window(64);
  for (int i = 0; i < 10'000; ++i) {
    window.Insert("id" + std::to_string(i), static_cast<uint64_t>(i));
  }
  EXPECT_EQ(window.size(), 64u);
  EXPECT_EQ(window.Find("id0"), nullptr);
  EXPECT_NE(window.Find("id9999"), nullptr);
}

// ---------------------------------------------------------------------------
// Service-level: snapshot + bounded recovery

TEST(SnapshotRecoveryTest, AttachLoadsSnapshotPlusTailOnly) {
  TempDir dir;
  std::vector<FactDelta> deltas = Stream(8);
  DbFingerprint final_fp;
  uint64_t journal_after_snapshot = 0;
  {
    ShardedSolveService service(Opts(dir.path));
    ASSERT_TRUE(service.Attach("main", DbVal(kBase)).ok());
    // 5 deltas, snapshot, 3 more: recovery must replay only the 3.
    for (size_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(service.ApplyDelta("main", deltas[i]).ok());
    }
    Result<SnapshotOutcome> snap = service.Snapshot("main");
    ASSERT_TRUE(snap.ok()) << snap.error();
    EXPECT_EQ(snap->epoch, 5u);
    EXPECT_GT(snap->journal_bytes_before, 0u);
    EXPECT_EQ(snap->journal_bytes_after, 0u) << "journal truncated";
    EXPECT_GT(snap->snapshot_bytes, 0u);
    for (size_t i = 5; i < deltas.size(); ++i) {
      Result<DeltaOutcome> out = service.ApplyDelta("main", deltas[i]);
      ASSERT_TRUE(out.ok());
      final_fp = out->fingerprint;
    }
    journal_after_snapshot =
        std::filesystem::file_size(dir.path + "/main.journal");
    EXPECT_GT(journal_after_snapshot, 0u);
  }
  {
    // The journal on disk holds only the 3-record tail; a full-history
    // journal would be strictly longer. Recovery over it must land on the
    // final acked fingerprint at epoch 8.
    ShardedSolveService service(Opts(dir.path));
    Result<DatabaseRegistry::Entry> attached =
        service.Attach("main", DbVal(kBase));
    ASSERT_TRUE(attached.ok()) << attached.error();
    EXPECT_EQ(attached->fingerprint, final_fp);
    Result<ServiceStats> stats = service.StatsFor("main");
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->epoch, 8u);
    EXPECT_EQ(stats->snapshot_epoch, 5u) << "recovered from the snapshot";
    EXPECT_GT(stats->snapshot_bytes, 0u);

    // Verdict parity against a clean, never-crashed application.
    auto clean = std::make_shared<const Database>(DbVal(kBase));
    for (const FactDelta& d : deltas) {
      Result<DeltaApplyOutcome> out = ApplyDeltaToDatabase(*clean, d);
      ASSERT_TRUE(out.ok());
      clean = out->db;
    }
    Result<DatabaseRegistry::Entry> entry = service.registry().Get("main");
    ASSERT_TRUE(entry.ok());
    ExpectVerdictParity(*entry->db, *clean);
  }
}

TEST(SnapshotRecoveryTest, BaseFactsAreIgnoredOnceASnapshotExists) {
  TempDir dir;
  {
    ShardedSolveService service(Opts(dir.path));
    ASSERT_TRUE(service.Attach("main", DbVal(kBase)).ok());
    ASSERT_TRUE(
        service.ApplyDelta("main", Delta("d1", {Ins("R", {"n", "m"})})).ok());
    ASSERT_TRUE(service.Snapshot("main").ok());
  }
  {
    // Recovery starts from the snapshot, so even a *different* base facts
    // argument attaches fine — the snapshot, not the caller, is the source
    // of truth once it exists.
    ShardedSolveService service(Opts(dir.path));
    Result<DatabaseRegistry::Entry> attached =
        service.Attach("main", DbVal("R(zzz | qqq)"));
    ASSERT_TRUE(attached.ok()) << attached.error();
    Result<ServiceStats> stats = service.StatsFor("main");
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->epoch, 1u);
  }
}

TEST(SnapshotRecoveryTest, CorruptSnapshotRefusesAttach) {
  TempDir dir;
  {
    ShardedSolveService service(Opts(dir.path));
    ASSERT_TRUE(service.Attach("main", DbVal(kBase)).ok());
    ASSERT_TRUE(
        service.ApplyDelta("main", Delta("d1", {Ins("R", {"n", "m"})})).ok());
    ASSERT_TRUE(service.Snapshot("main").ok());
  }
  const std::string snap_path = dir.path + "/main.snapshot";
  std::string bytes = ReadFileBytes(snap_path);
  bytes[bytes.size() / 2] ^= 0x40;
  WriteFileBytes(snap_path, bytes);
  {
    ShardedSolveService service(Opts(dir.path));
    Result<DatabaseRegistry::Entry> attached =
        service.Attach("main", DbVal(kBase));
    ASSERT_FALSE(attached.ok()) << "served from a corrupt snapshot";
    EXPECT_EQ(attached.code(), ErrorCode::kInternal);
  }
}

TEST(SnapshotRecoveryTest, SnapshotWithoutJournalDirIsUnsupported) {
  ShardedServiceOptions options;
  options.shard.workers = 1;
  ShardedSolveService service(options);
  ASSERT_TRUE(service.Attach("main", DbVal(kBase)).ok());
  Result<SnapshotOutcome> snap = service.Snapshot("main");
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.code(), ErrorCode::kUnsupported);
}

TEST(SnapshotRecoveryTest, AutomaticSnapshotByDeltaCount) {
  TempDir dir;
  ShardedServiceOptions options = Opts(dir.path);
  options.snapshot.every_deltas = 3;
  ShardedSolveService service(options);
  ASSERT_TRUE(service.Attach("main", DbVal(kBase)).ok());
  std::vector<FactDelta> deltas = Stream(7);
  for (const FactDelta& d : deltas) {
    ASSERT_TRUE(service.ApplyDelta("main", d).ok());
  }
  Result<ServiceStats> stats = service.StatsFor("main");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->snapshots_taken, 2u) << "after deltas 3 and 6";
  EXPECT_EQ(stats->snapshot_epoch, 6u);
  // The journal holds only the tail written after the last auto-snapshot.
  Result<JournalReplay> tail =
      ReplayJournalFile(dir.path + "/main.journal", false);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->records.size(), 1u);
}

TEST(SnapshotRecoveryTest, AutomaticSnapshotByJournalBytes) {
  TempDir dir;
  ShardedServiceOptions options = Opts(dir.path);
  options.snapshot.every_journal_bytes = 1;  // every delta crosses it
  ShardedSolveService service(options);
  ASSERT_TRUE(service.Attach("main", DbVal(kBase)).ok());
  ASSERT_TRUE(
      service.ApplyDelta("main", Delta("d1", {Ins("T", {"q", "r"})})).ok());
  Result<ServiceStats> stats = service.StatsFor("main");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->snapshots_taken, 1u);
  EXPECT_EQ(std::filesystem::file_size(dir.path + "/main.journal"), 0u);
}

// ---------------------------------------------------------------------------
// Crash-drill matrix: die at every stage boundary of the snapshot pipeline.

// Stage 1: torn temp-file write. The temp is garbage, the real snapshot
// path untouched — recovery replays the full journal as if no snapshot was
// ever attempted.
TEST(SnapshotCrashDrillTest, TornTempWriteLeavesOldStateRecoverable) {
  TempDir dir;
  std::vector<FactDelta> deltas = Stream(4);
  DbFingerprint acked_fp;
  {
    ShardedServiceOptions chaos = Opts(dir.path);
    chaos.snapshot.tear_temp_write = true;
    chaos.snapshot.tear_temp_keep_bytes = 10;
    ShardedSolveService service(chaos);
    ASSERT_TRUE(service.Attach("main", DbVal(kBase)).ok());
    for (const FactDelta& d : deltas) {
      Result<DeltaOutcome> out = service.ApplyDelta("main", d);
      ASSERT_TRUE(out.ok());
      acked_fp = out->fingerprint;
    }
    Result<SnapshotOutcome> snap = service.Snapshot("main");
    ASSERT_FALSE(snap.ok()) << "the drill injects a mid-write death";
    Result<ServiceStats> stats = service.StatsFor("main");
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->snapshots_failed, 1u);
    EXPECT_GT(stats->journal_bytes, 0u) << "journal not truncated";
  }
  EXPECT_FALSE(std::filesystem::exists(dir.path + "/main.snapshot"));
  {
    ShardedSolveService service(Opts(dir.path));
    Result<DatabaseRegistry::Entry> attached =
        service.Attach("main", DbVal(kBase));
    ASSERT_TRUE(attached.ok()) << attached.error();
    EXPECT_EQ(attached->fingerprint, acked_fp);
  }
}

// Stage 2: complete temp write, death before rename. Same recovery story;
// additionally a later snapshot attempt must succeed over the stale temp.
TEST(SnapshotCrashDrillTest, DeathBeforeRenameKeepsThePreviousSnapshot) {
  TempDir dir;
  std::vector<FactDelta> deltas = Stream(4);
  DbFingerprint acked_fp;
  {
    ShardedSolveService service(Opts(dir.path));
    ASSERT_TRUE(service.Attach("main", DbVal(kBase)).ok());
    ASSERT_TRUE(service.ApplyDelta("main", deltas[0]).ok());
    ASSERT_TRUE(service.Snapshot("main").ok());  // snapshot at epoch 1
  }
  const std::string committed = ReadFileBytes(dir.path + "/main.snapshot");
  {
    ShardedServiceOptions chaos = Opts(dir.path);
    chaos.snapshot.fail_before_rename = true;
    ShardedSolveService service(chaos);
    ASSERT_TRUE(service.Attach("main", DbVal(kBase)).ok());
    for (size_t i = 1; i < deltas.size(); ++i) {
      Result<DeltaOutcome> out = service.ApplyDelta("main", deltas[i]);
      ASSERT_TRUE(out.ok());
      acked_fp = out->fingerprint;
    }
    ASSERT_FALSE(service.Snapshot("main").ok());
  }
  // The epoch-1 snapshot is still the committed one.
  EXPECT_EQ(ReadFileBytes(dir.path + "/main.snapshot"), committed);
  {
    ShardedSolveService service(Opts(dir.path));
    Result<DatabaseRegistry::Entry> attached =
        service.Attach("main", DbVal(kBase));
    ASSERT_TRUE(attached.ok()) << attached.error();
    EXPECT_EQ(attached->fingerprint, acked_fp);
    // And a clean snapshot attempt now succeeds, overwriting the stale tmp.
    Result<SnapshotOutcome> snap = service.Snapshot("main");
    ASSERT_TRUE(snap.ok()) << snap.error();
    EXPECT_EQ(snap->epoch, deltas.size());
  }
}

// Stage 3: rename committed, death before the journal truncate — the
// double-apply hazard. The journal still holds records the snapshot
// already covers; epoch stamps make replay skip them instead of applying
// them twice on top of the snapshot.
TEST(SnapshotCrashDrillTest, LostTruncateDoesNotDoubleApply) {
  TempDir dir;
  std::vector<FactDelta> deltas = Stream(5);
  DbFingerprint acked_fp;
  {
    ShardedServiceOptions chaos = Opts(dir.path);
    chaos.snapshot.fail_before_truncate = true;
    ShardedSolveService service(chaos);
    ASSERT_TRUE(service.Attach("main", DbVal(kBase)).ok());
    for (size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(service.ApplyDelta("main", deltas[i]).ok());
    }
    Result<SnapshotOutcome> snap = service.Snapshot("main");
    ASSERT_FALSE(snap.ok()) << "drill dies between rename and truncate";
    // Keep writing after the half-finished snapshot, like a daemon that
    // hit a transient truncate failure and carried on.
    for (size_t i = 3; i < deltas.size(); ++i) {
      Result<DeltaOutcome> out = service.ApplyDelta("main", deltas[i]);
      ASSERT_TRUE(out.ok());
      acked_fp = out->fingerprint;
    }
  }
  // The journal on disk still holds ALL records (nothing was truncated),
  // while the snapshot covers the first 3 — exactly the overlap replay
  // must skip.
  Result<JournalReplay> replay =
      ReplayJournalFile(dir.path + "/main.journal", false);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records.size(), deltas.size());
  Result<SnapshotReadResult> snap_file =
      ReadSnapshotFile(dir.path + "/main.snapshot");
  ASSERT_TRUE(snap_file.ok());
  ASSERT_TRUE(snap_file->found);
  EXPECT_EQ(snap_file->data.epoch, 3u);
  {
    ShardedSolveService service(Opts(dir.path));
    Result<DatabaseRegistry::Entry> attached =
        service.Attach("main", DbVal(kBase));
    ASSERT_TRUE(attached.ok()) << attached.error();
    EXPECT_EQ(attached->fingerprint, acked_fp)
        << "overlapping records were double-applied or dropped";
    Result<ServiceStats> stats = service.StatsFor("main");
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->epoch, deltas.size());

    auto clean = std::make_shared<const Database>(DbVal(kBase));
    for (const FactDelta& d : deltas) {
      Result<DeltaApplyOutcome> out = ApplyDeltaToDatabase(*clean, d);
      ASSERT_TRUE(out.ok());
      clean = out->db;
    }
    Result<DatabaseRegistry::Entry> entry = service.registry().Get("main");
    ASSERT_TRUE(entry.ok());
    ExpectVerdictParity(*entry->db, *clean);
  }
}

// ---------------------------------------------------------------------------
// Idempotency window across snapshots and restarts

TEST(SnapshotIdempotencyTest, InWindowDuplicateReAcksAcrossSnapshotRestart) {
  TempDir dir;
  std::vector<FactDelta> deltas = Stream(4);
  DbFingerprint acked_fp;
  {
    ShardedSolveService service(Opts(dir.path));
    ASSERT_TRUE(service.Attach("main", DbVal(kBase)).ok());
    for (const FactDelta& d : deltas) {
      Result<DeltaOutcome> out = service.ApplyDelta("main", d);
      ASSERT_TRUE(out.ok());
      acked_fp = out->fingerprint;
    }
    // Compaction removes the journal records carrying these ids; only the
    // snapshot's persisted window can remember them now.
    ASSERT_TRUE(service.Snapshot("main").ok());
  }
  {
    ShardedSolveService service(Opts(dir.path));
    ASSERT_TRUE(service.Attach("main", DbVal(kBase)).ok());
    // REGRESSION: a duplicate of a compacted-away delta must re-ack with
    // applied:false (epoch unchanged), not apply a second time.
    Result<DeltaOutcome> dup = service.ApplyDelta("main", deltas[1]);
    ASSERT_TRUE(dup.ok()) << dup.error();
    EXPECT_FALSE(dup->applied);
    EXPECT_EQ(dup->epoch, deltas.size());
    EXPECT_EQ(dup->fingerprint, acked_fp);
  }
}

TEST(SnapshotIdempotencyTest, WindowIsSlidingNotUnbounded) {
  TempDir dir;
  ShardedServiceOptions options = Opts(dir.path);
  options.delta_id_window = 4;
  ShardedSolveService service(options);
  ASSERT_TRUE(service.Attach("main", DbVal(kBase)).ok());
  std::vector<FactDelta> deltas = Stream(6);
  for (const FactDelta& d : deltas) {
    ASSERT_TRUE(service.ApplyDelta("main", d).ok());
  }
  // "s5" is within the 4-entry window: idempotent re-ack.
  Result<DeltaOutcome> recent = service.ApplyDelta("main", deltas[5]);
  ASSERT_TRUE(recent.ok());
  EXPECT_FALSE(recent->applied);
  // "s0" slid out of the window: the service no longer remembers it, so it
  // applies as a new delta. That is the documented retry horizon — exact
  // duplicate suppression within the last `delta_id_window` applications.
  Result<DeltaOutcome> ancient = service.ApplyDelta("main", deltas[0]);
  ASSERT_TRUE(ancient.ok());
  EXPECT_TRUE(ancient->applied);
  EXPECT_EQ(ancient->epoch, 7u);
}

TEST(SnapshotIdempotencyTest, WindowCapacityAppliesToSnapshotPersistence) {
  TempDir dir;
  ShardedServiceOptions options = Opts(dir.path);
  options.delta_id_window = 3;
  std::vector<FactDelta> deltas = Stream(5);
  {
    ShardedSolveService service(options);
    ASSERT_TRUE(service.Attach("main", DbVal(kBase)).ok());
    for (const FactDelta& d : deltas) {
      ASSERT_TRUE(service.ApplyDelta("main", d).ok());
    }
    ASSERT_TRUE(service.Snapshot("main").ok());
  }
  Result<SnapshotReadResult> snap =
      ReadSnapshotFile(dir.path + "/main.snapshot");
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(snap->found);
  ASSERT_EQ(snap->data.delta_ids.size(), 3u) << "window cap persisted";
  EXPECT_EQ(snap->data.delta_ids.front().first, "s2");
  EXPECT_EQ(snap->data.delta_ids.back().first, "s4");
  {
    ShardedSolveService service(options);
    ASSERT_TRUE(service.Attach("main", DbVal(kBase)).ok());
    Result<DeltaOutcome> dup = service.ApplyDelta("main", deltas[4]);
    ASSERT_TRUE(dup.ok());
    EXPECT_FALSE(dup->applied) << "in-window id forgotten across restart";
  }
}

}  // namespace
}  // namespace cqa
