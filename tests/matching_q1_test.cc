#include <gtest/gtest.h>

#include "cqa/certainty/matching_q1.h"
#include "cqa/certainty/naive.h"
#include "cqa/gen/random_db.h"
#include "cqa/query/parser.h"
#include "cqa/reductions/bpm.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

TEST(MatchingQ1Test, ShapeDetection) {
  EXPECT_TRUE(DetectQ1Shape(MakeQ1()).has_value());
  // Renamed relations/variables still match.
  EXPECT_TRUE(DetectQ1Shape(Q("Knows(g | b), not Liked(b | g)")).has_value());
  // Reversed literal order.
  EXPECT_EQ(DetectQ1Shape(Q("not S(y | x), R(x | y)")).value(), 1u);
  // Non-matching shapes.
  EXPECT_FALSE(DetectQ1Shape(Q("R(x | y), not S(x | y)")).has_value());
  EXPECT_FALSE(DetectQ1Shape(Q("R(x | y), S(y | x)")).has_value());
  EXPECT_FALSE(DetectQ1Shape(Q("R(x | y), not S(y | 'c')")).has_value());
  EXPECT_FALSE(DetectQ1Shape(Q("R(x, y), not S(y | x)")).has_value());
  EXPECT_FALSE(
      DetectQ1Shape(Q("R(x | y), not S(y | x), not T(y | x)")).has_value());
}

TEST(MatchingQ1Test, Figure1Database) {
  // Example 1.1: Alice–George / Maria–Bob is a perfect matching, so q1 is
  // not certain.
  Result<Database> db = Database::FromText(R"(
    R(alice | bob), R(alice | george), R(maria | bob), R(maria | john)
    S(bob | alice), S(bob | maria), S(george | alice), S(george | maria)
  )");
  ASSERT_TRUE(db.ok());
  std::optional<bool> certain = IsCertainQ1ByMatching(MakeQ1(), db.value());
  ASSERT_TRUE(certain.has_value());
  EXPECT_FALSE(*certain);
}

TEST(MatchingQ1Test, AgreesWithNaiveOnRandomDatabases) {
  Query q1 = MakeQ1();
  Rng rng(401);
  RandomDbOptions opts;
  opts.blocks_per_relation = 4;
  opts.max_block_size = 3;
  opts.domain_size = 5;
  for (int i = 0; i < 500; ++i) {
    Database db = GenerateRandomDatabaseFor(q1, opts, &rng);
    std::optional<bool> got = IsCertainQ1ByMatching(q1, db);
    ASSERT_TRUE(got.has_value());
    Result<bool> expected = IsCertainNaive(q1, db);
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ(*got, expected.value()) << db.ToString();
  }
}

TEST(MatchingQ1Test, EmptyRIsNotCertain) {
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  s.AddRelationOrDie("S", 2, 1);
  Database db(s);
  EXPECT_FALSE(IsCertainQ1ByMatching(MakeQ1(), db).value());
}

TEST(MatchingQ1Test, RefusesOtherShapes) {
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  Database db(s);
  EXPECT_FALSE(IsCertainQ1ByMatching(Q("R(x | y)"), db).has_value());
}

}  // namespace
}  // namespace cqa
