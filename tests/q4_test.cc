#include <gtest/gtest.h>

#include "cqa/base/rng.h"
#include "cqa/certainty/naive.h"
#include "cqa/query/parser.h"
#include "cqa/reductions/q4.h"

namespace cqa {
namespace {

// Random q4 instance with |X| = m, |Y| = n and random R/S facts over (and
// slightly beyond) X × Y.
Database RandomQ4Db(Rng* rng, int m, int n, double p) {
  Schema s;
  s.AddRelationOrDie("X", 1, 1);
  s.AddRelationOrDie("Y", 1, 1);
  s.AddRelationOrDie("R", 2, 1);
  s.AddRelationOrDie("S", 2, 1);
  Database db(s);
  auto a = [](int i) { return Value::Of("qa" + std::to_string(i)); };
  auto b = [](int i) { return Value::Of("qb" + std::to_string(i)); };
  for (int i = 0; i < m; ++i) db.AddFactOrDie("X", {a(i)});
  for (int j = 0; j < n; ++j) db.AddFactOrDie("Y", {b(j)});
  // R and S facts, including some with keys outside X/Y.
  for (int i = 0; i < m + 1; ++i) {
    for (int j = 0; j < n + 1; ++j) {
      if (rng->Chance(p)) db.AddFactOrDie("R", {a(i), b(j)});
      if (rng->Chance(p)) db.AddFactOrDie("S", {b(j), a(i)});
    }
  }
  return db;
}

TEST(Q4Test, EmptySides) {
  Schema s;
  s.AddRelationOrDie("X", 1, 1);
  s.AddRelationOrDie("Y", 1, 1);
  s.AddRelationOrDie("R", 2, 1);
  s.AddRelationOrDie("S", 2, 1);
  Database db(s);
  EXPECT_FALSE(IsCertainQ4(db));
  db.AddFactOrDie("X", {Value::Of("a")});
  EXPECT_FALSE(IsCertainQ4(db));  // Y still empty
}

TEST(Q4Test, Figure3CountingCase) {
  // Fig. 3: m = 3, n = 2; since 3·2 > 3+2 every repair satisfies q4 no
  // matter what R and S contain.
  Result<Database> db = Database::FromText(R"(
    X(a1), X(a2), X(a3)
    Y(b1), Y(b2)
    R(a1 | b1), R(a1 | b2), R(a2 | b1), R(a3 | b2)
    S(b1 | a2), S(b2 | a1), S(b2 | a3)
  )");
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(IsCertainQ4(db.value()));
  Result<bool> naive = IsCertainNaive(MakeQ4(), db.value());
  ASSERT_TRUE(naive.ok());
  EXPECT_TRUE(naive.value());
}

TEST(Q4Test, DegenerateTwoByTwo) {
  // m = n = 2 with the exact falsifying pattern of Example 7.1.
  Result<Database> db = Database::FromText(R"(
    X(a1), X(a2)
    Y(b1), Y(b2)
    R(a1 | b1), R(a2 | b2)
    S(b1 | a2), S(b2 | a1)
  )");
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE(IsCertainQ4(db.value()));
  EXPECT_FALSE(IsCertainNaive(MakeQ4(), db.value()).value());
}

TEST(Q4Test, SweepAgainstNaiveOracle) {
  Query q4 = MakeQ4();
  Rng rng(809);
  for (int m = 0; m <= 3; ++m) {
    for (int n = 0; n <= 3; ++n) {
      for (int trial = 0; trial < 40; ++trial) {
        Database db = RandomQ4Db(&rng, m, n, 0.45);
        Result<bool> expected = IsCertainNaive(q4, db);
        ASSERT_TRUE(expected.ok());
        ASSERT_EQ(IsCertainQ4(db), expected.value())
            << "m=" << m << " n=" << n << "\n" << db.ToString();
      }
    }
  }
}

TEST(Q4Test, LargerCountingRegimeAgainstOracle) {
  Query q4 = MakeQ4();
  Rng rng(811);
  for (int trial = 0; trial < 20; ++trial) {
    Database db = RandomQ4Db(&rng, 3, 3, 0.5);
    Result<bool> expected = IsCertainNaive(q4, db);
    if (!expected.ok()) continue;  // too many repairs
    EXPECT_EQ(IsCertainQ4(db), expected.value());
  }
}

}  // namespace
}  // namespace cqa
