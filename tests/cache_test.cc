// Cache-consistency battery for the result cache (src/cqa/cache/):
//
//  * unit coverage of the building blocks — database fingerprinting, the
//    alpha-canonical query key, the sharded LRU `ResultCache`, and the
//    per-worker `WarmState` memos;
//  * a differential test over >= 1000 generated (query, database)
//    instances: verdicts served through a cache-and-warm-state-enabled
//    `SolveService` (miss, then hit) must be identical to a cold
//    `SolveCertainty` call, across every solver engine;
//  * the cacheability property: degraded verdicts (probably-certain /
//    exhausted, forced with `fail_after_probes`) and budget-exhaustion
//    errors are never stored — a retry with a larger budget re-solves.
//
// The concurrent end (single-flight coalescing, promotion on leader
// cancellation) lives in cache_chaos_test.cc.

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "cqa/base/interner.h"
#include "cqa/cache/fingerprint.h"
#include "cqa/delta/delta.h"
#include "cqa/cache/query_key.h"
#include "cqa/cache/result_cache.h"
#include "cqa/cache/warm_state.h"
#include "cqa/certainty/solver.h"
#include "cqa/db/database.h"
#include "cqa/gen/families.h"
#include "cqa/gen/random_db.h"
#include "cqa/gen/random_query.h"
#include "cqa/query/parser.h"
#include "cqa/serve/service.h"
#include "cqa/serve/stats.h"

namespace cqa {
namespace {

using std::chrono::milliseconds;

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

std::shared_ptr<const Database> Db(const char* text) {
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return std::make_shared<const Database>(std::move(db.value()));
}

// Submits one job and blocks until its terminal response (cache hits are
// delivered synchronously inside Submit; everything else within the
// shutdown-free wait below).
ServeResponse SolveVia(SolveService* service, ServeJob job) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  ServeResponse out;
  Result<uint64_t> id =
      service->Submit(std::move(job), [&](const ServeResponse& r) {
        std::lock_guard<std::mutex> lock(mu);
        out = r;
        done = true;
        cv.notify_one();
      });
  EXPECT_TRUE(id.ok()) << (id.ok() ? "" : id.error());
  std::unique_lock<std::mutex> lock(mu);
  cv.wait_for(lock, std::chrono::seconds(120), [&] { return done; });
  EXPECT_TRUE(done) << "request never completed";
  return out;
}

// ---------------------------------------------------------------------------
// DbFingerprint

TEST(FingerprintTest, DeterministicAndContentSensitive) {
  auto a = Db("R(a | b), R(a | c)\nS(b | a)");
  auto b = Db("R(a | b), R(a | c)\nS(b | a)");
  auto c = Db("R(a | b), R(a | d)\nS(b | a)");
  DbFingerprint fa = FingerprintDatabase(*a);
  EXPECT_TRUE(fa.valid());
  EXPECT_EQ(fa, FingerprintDatabase(*a)) << "same instance, same digest";
  EXPECT_EQ(fa, FingerprintDatabase(*b)) << "equal content, same digest";
  EXPECT_NE(fa, FingerprintDatabase(*c)) << "one value changed";
  EXPECT_EQ(fa.ToHex().size(), 32u);
}

TEST(FingerprintTest, InsensitiveToFactAndRelationOrder) {
  // The canonical form sorts relations and facts, so spelling order in the
  // source text must not matter.
  auto a = Db("R(a | b), R(a | c)\nS(b | a)");
  auto b = Db("S(b | a)\nR(a | c), R(a | b)");
  EXPECT_EQ(FingerprintDatabase(*a), FingerprintDatabase(*b));
}

TEST(FingerprintTest, DistinguishesValueBoundaries) {
  // Length-prefixed rendering: ("ab","c") and ("a","bc") must not collide.
  auto a = Db("R(ab | c)");
  auto b = Db("R(a | bc)");
  EXPECT_NE(FingerprintDatabase(*a), FingerprintDatabase(*b));
}

// ---------------------------------------------------------------------------
// CanonicalQueryKey

TEST(QueryKeyTest, AlphaRenamedQueriesShareAKey) {
  Query a = Q("R(x | y), not S(y | x)");
  Query b = Q("R(u | v), not S(v | u)");
  EXPECT_EQ(CanonicalQueryKey(a), CanonicalQueryKey(b));
}

TEST(QueryKeyTest, AtomOrderIsCanonicalized) {
  Query a = Q("R(x | y), S(y | z)");
  Query b = Q("S(y | z), R(x | y)");
  EXPECT_EQ(CanonicalQueryKey(a), CanonicalQueryKey(b));
}

TEST(QueryKeyTest, DistinctStructuresGetDistinctKeys) {
  EXPECT_NE(CanonicalQueryKey(Q("R(x | y)")),
            CanonicalQueryKey(Q("R(x | x)")));
  EXPECT_NE(CanonicalQueryKey(Q("R(x | y)")),
            CanonicalQueryKey(Q("R(x | 'a')")))
      << "a constant is not a variable";
  EXPECT_EQ(CanonicalQueryKey(Q("R(x | a)")), CanonicalQueryKey(Q("R(x | y)")))
      << "unquoted names in query position are variables (alpha-equivalent)";
  EXPECT_NE(CanonicalQueryKey(Q("R(x | y), not S(y | x)")),
            CanonicalQueryKey(Q("R(x | y), S(y | x)")))
      << "polarity is part of the key";
  EXPECT_NE(CanonicalQueryKey(Q("R(x | y), S(y | x)")),
            CanonicalQueryKey(Q("R(x | y), S(x | y)")))
      << "join structure is part of the key";
}

TEST(QueryKeyTest, ConstantSpellingsCannotForgeSeparators) {
  // The parser accepts embedded quotes via doubling ('a'',''b' is the
  // constant a','b), so a constant can spell the key's own separators.
  // Length-prefixed rendering keeps the key injective: these two queries
  // would collide on 'a','b','c' under naive quoting, and a collision is
  // a wrong verdict served from the shared cache.
  EXPECT_NE(CanonicalQueryKey(Q("R('x' | 'a'',''b', 'c')")),
            CanonicalQueryKey(Q("R('x' | 'a', 'b'',''c')")));
}

TEST(QueryKeyTest, MethodAndFingerprintSeparateCacheSlots) {
  auto db = Db("R(a | b)");
  DbFingerprint fp = FingerprintDatabase(*db);
  Query q = Q("R(x | y)");
  CacheKey aut = MakeCacheKey(fp, SolverMethod::kAuto, q);
  CacheKey bt = MakeCacheKey(fp, SolverMethod::kBacktracking, q);
  EXPECT_NE(aut.text, bt.text);
  auto db2 = Db("R(a | c)");
  CacheKey other = MakeCacheKey(FingerprintDatabase(*db2),
                                SolverMethod::kAuto, q);
  EXPECT_NE(aut.text, other.text);
}

// ---------------------------------------------------------------------------
// ResultCache

SolveReport ExactReport(Verdict v) {
  SolveReport r;
  r.verdict = v;
  r.certain = v == Verdict::kCertain;
  r.confidence = 1.0;
  return r;
}

TEST(ResultCacheTest, InsertLookupRoundTrip) {
  ResultCache cache(8, 1);
  auto db = Db("R(a | b)");
  CacheKey key =
      MakeCacheKey(FingerprintDatabase(*db), SolverMethod::kAuto, Q("R(x | y)"));
  EXPECT_FALSE(cache.Lookup(key).has_value());
  EXPECT_TRUE(cache.Insert(key, ExactReport(Verdict::kCertain)));
  std::optional<SolveReport> hit = cache.Lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->verdict, Verdict::kCertain);
  CacheStats s = cache.Stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ResultCacheTest, DegradedVerdictsAreRejected) {
  ResultCache cache(8, 1);
  auto db = Db("R(a | b)");
  CacheKey key =
      MakeCacheKey(FingerprintDatabase(*db), SolverMethod::kAuto, Q("R(x | y)"));
  EXPECT_FALSE(IsCacheableReport(ExactReport(Verdict::kProbablyCertain)));
  EXPECT_FALSE(IsCacheableReport(ExactReport(Verdict::kExhausted)));
  EXPECT_TRUE(IsCacheableReport(ExactReport(Verdict::kNotCertain)));
  EXPECT_FALSE(cache.Insert(key, ExactReport(Verdict::kProbablyCertain)));
  EXPECT_FALSE(cache.Insert(key, ExactReport(Verdict::kExhausted)));
  EXPECT_FALSE(cache.Lookup(key).has_value());
  CacheStats s = cache.Stats();
  EXPECT_EQ(s.rejected, 2u);
  EXPECT_EQ(s.entries, 0u);
}

TEST(ResultCacheTest, LruEvictionUnderCapacity) {
  ResultCache cache(2, 1);  // one shard, two entries
  auto db = Db("R(a | b)");
  DbFingerprint fp = FingerprintDatabase(*db);
  CacheKey k1 = MakeCacheKey(fp, SolverMethod::kAuto, Q("R(x | y)"));
  CacheKey k2 = MakeCacheKey(fp, SolverMethod::kAuto, Q("R(x | x)"));
  CacheKey k3 = MakeCacheKey(fp, SolverMethod::kAuto, Q("R(x | 'a')"));
  EXPECT_TRUE(cache.Insert(k1, ExactReport(Verdict::kCertain)));
  EXPECT_TRUE(cache.Insert(k2, ExactReport(Verdict::kNotCertain)));
  // Touch k1 so k2 is the LRU victim.
  EXPECT_TRUE(cache.Lookup(k1).has_value());
  EXPECT_TRUE(cache.Insert(k3, ExactReport(Verdict::kCertain)));
  EXPECT_TRUE(cache.Lookup(k1).has_value()) << "recently used survives";
  EXPECT_FALSE(cache.Lookup(k2).has_value()) << "LRU tail evicted";
  EXPECT_TRUE(cache.Lookup(k3).has_value());
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_EQ(cache.Stats().entries, 2u);
}

TEST(ResultCacheTest, ConfiguredCapacityIsHonouredAcrossShards) {
  // 10 entries over 8 shards: a floor-only split would silently cap the
  // cache at 8 entries; the remainder spreads over the first shards so
  // the per-shard capacities sum to the configured bound.
  ResultCache cache(10, 8);
  EXPECT_EQ(cache.max_entries(), 10u);
  ResultCache one(1, 8);
  EXPECT_EQ(one.max_entries(), 1u);
}

// ---------------------------------------------------------------------------
// WarmState

TEST(WarmStateTest, ClassificationMemoHitsOnAlphaVariants) {
  WarmState warm;
  Query a = Q("R(x | y), not S(y | x)");
  Query b = Q("R(u | v), not S(v | u)");
  std::string key = CanonicalQueryKey(a);
  ASSERT_EQ(key, CanonicalQueryKey(b));
  const Classification& ca = warm.ClassifyMemo(key, a);
  const Classification& cb = warm.ClassifyMemo(key, b);
  EXPECT_EQ(&ca, &cb) << "second call must be a memo hit";
  EXPECT_EQ(warm.stats().classification_misses, 1u);
  EXPECT_EQ(warm.stats().classification_hits, 1u);
}

TEST(WarmStateTest, BindDatabaseClearsTheArenaOnlyOnChange) {
  WarmState warm;
  auto a = Db("R(a | b)");
  auto b = Db("R(a | c)");
  warm.BindDatabase(FingerprintDatabase(*a));
  (*warm.Algo1Arena())["probe"] = true;
  warm.BindDatabase(FingerprintDatabase(*a));
  EXPECT_EQ(warm.Algo1Arena()->size(), 1u) << "same database keeps the arena";
  warm.BindDatabase(FingerprintDatabase(*b));
  EXPECT_TRUE(warm.Algo1Arena()->empty()) << "new database clears the arena";
  EXPECT_EQ(warm.stats().arena_resets, 1u);
}

TEST(WarmStateTest, ArenaCapBoundsLongRunningWorkers) {
  // The Algorithm-1 arena obeys max_entries like the other memo maps: a
  // daemon worker fronting one immutable database never changes
  // fingerprint, so without the cap its arena would grow without bound.
  WarmState warm(/*max_entries=*/2);
  auto db = Db("R(a | b)");
  warm.BindDatabase(FingerprintDatabase(*db));
  (*warm.Algo1Arena())["p1"] = true;
  (*warm.Algo1Arena())["p2"] = true;  // under the cap at hand-out
  EXPECT_TRUE(warm.Algo1Arena()->empty())
      << "an over-full arena must be cleared at the next hand-out";
  EXPECT_EQ(warm.stats().arena_resets, 1u);
}

// ---------------------------------------------------------------------------
// Differential: cached path == cold path

TEST(CacheDifferentialTest, ServiceAgreesWithColdSolveOnGeneratedInstances) {
  // >= 1000 generated (query, database) instances, each solved cold via
  // SolveCertainty and twice through a cache+warm-state service (the first
  // a miss that fills the slot, the second a hit served from it). All
  // three verdicts must coincide.
  constexpr int kInstances = 1000;
  Rng rng(0xd1ff5eed);
  RandomQueryOptions qopts;
  RandomDbOptions dopts;
  dopts.blocks_per_relation = 3;
  dopts.max_block_size = 2;
  dopts.domain_size = 4;

  ServiceOptions options;
  options.workers = 4;
  options.cache_entries = 4 * kInstances;  // no evictions mid-test
  options.warm_state = true;
  SolveService service(options);

  uint64_t verdict_counts[2] = {0, 0};  // certain / not-certain, for honesty
  for (int i = 0; i < kInstances; ++i) {
    Query q = GenerateRandomQuery(qopts, &rng);
    auto db = std::make_shared<const Database>(
        GenerateRandomDatabaseFor(q, dopts, &rng));
    Result<SolveReport> cold = SolveCertainty(q, *db, SolverMethod::kAuto);
    ASSERT_TRUE(cold.ok()) << cold.error();
    ASSERT_TRUE(cold->verdict == Verdict::kCertain ||
                cold->verdict == Verdict::kNotCertain)
        << "ungoverned cold solve must be exact";
    ++verdict_counts[cold->verdict == Verdict::kCertain ? 0 : 1];
    for (int round = 0; round < 2; ++round) {
      ServeResponse r = SolveVia(&service, ServeJob(q, db));
      ASSERT_EQ(r.state, RequestState::kCompleted) << "instance " << i;
      ASSERT_TRUE(r.result.ok()) << r.result.error();
      EXPECT_EQ(r.result->verdict, cold->verdict)
          << "instance " << i << " round " << round;
    }
  }
  ServiceStats s = service.Stats();
  // Every second submission is served from the cache; first submissions
  // can hit too when the generator repeats an earlier (query, database).
  EXPECT_GE(s.cache_hits + s.cache_coalesced,
            static_cast<uint64_t>(kInstances));
  EXPECT_GT(verdict_counts[0], 0u) << "degenerate workload: nothing certain";
  EXPECT_GT(verdict_counts[1], 0u) << "degenerate workload: nothing refuted";
  EXPECT_TRUE(service.Shutdown(milliseconds(10'000)));
}

TEST(CacheDifferentialTest, EveryEngineAgreesCachedVsCold) {
  // A smaller sweep across every solver engine, methods that reject a
  // query included: the cached path must reproduce the cold path's typed
  // error as well as its verdict (errors are never cached, so both
  // submissions re-solve and must fail identically).
  const SolverMethod kMethods[] = {
      SolverMethod::kAuto,         SolverMethod::kRewriting,
      SolverMethod::kAlgorithm1,   SolverMethod::kBacktracking,
      SolverMethod::kNaive,        SolverMethod::kMatchingQ1,
      SolverMethod::kSampling,
  };
  Rng rng(0xe9);
  RandomQueryOptions qopts;
  qopts.max_positive = 2;
  qopts.max_negative = 1;
  RandomDbOptions dopts;
  dopts.blocks_per_relation = 2;
  dopts.max_block_size = 2;
  dopts.domain_size = 3;

  ServiceOptions options;
  options.workers = 2;
  options.cache_entries = 4096;
  options.warm_state = true;
  SolveService service(options);

  for (int i = 0; i < 25; ++i) {
    Query q = GenerateRandomQuery(qopts, &rng);
    auto db = std::make_shared<const Database>(
        GenerateRandomDatabaseFor(q, dopts, &rng));
    for (SolverMethod m : kMethods) {
      Result<SolveReport> cold = SolveCertainty(q, *db, m);
      for (int round = 0; round < 2; ++round) {
        ServeJob job(q, db);
        job.method = m;
        ServeResponse r = SolveVia(&service, std::move(job));
        ASSERT_EQ(r.state, RequestState::kCompleted)
            << ToString(m) << " instance " << i;
        ASSERT_EQ(r.result.ok(), cold.ok())
            << ToString(m) << " instance " << i << " round " << round;
        if (cold.ok()) {
          EXPECT_EQ(r.result->verdict, cold->verdict)
              << ToString(m) << " instance " << i << " round " << round;
        } else {
          EXPECT_EQ(r.result.code(), cold.code())
              << ToString(m) << " instance " << i << " round " << round;
        }
      }
    }
  }
  EXPECT_TRUE(service.Shutdown(milliseconds(10'000)));
}

TEST(CacheDifferentialTest, AlphaRenamedQueriesHitTheSameSlot) {
  auto db = Db("R(a | b), R(a | c)\nS(b | a)");
  ServiceOptions options;
  options.workers = 1;
  options.cache_entries = 16;
  SolveService service(options);
  ServeResponse first =
      SolveVia(&service, ServeJob(Q("R(x | y), not S(y | x)"), db));
  ASSERT_TRUE(first.result.ok());
  ServeResponse second =
      SolveVia(&service, ServeJob(Q("R(u | v), not S(v | u)"), db));
  ASSERT_TRUE(second.result.ok());
  EXPECT_EQ(second.result->verdict, first.result->verdict);
  ServiceStats s = service.Stats();
  EXPECT_EQ(s.cache_misses, 1u);
  EXPECT_EQ(s.cache_hits, 1u) << "the alpha-variant must be a hit";
  EXPECT_EQ(s.cache_entries, 1u) << "both spellings share one slot";
  EXPECT_TRUE(service.Shutdown(milliseconds(10'000)));
}

TEST(CacheDifferentialTest, BypassPolicySkipsLookupAndStore)  {
  auto db = Db("R(a | b), R(a | c)");
  ServiceOptions options;
  options.workers = 1;
  options.cache_entries = 16;
  SolveService service(options);
  ServeJob job(Q("R(x | y)"), db);
  job.cache = CachePolicy::kBypass;
  for (int i = 0; i < 3; ++i) {
    ServeResponse r = SolveVia(&service, job);
    ASSERT_TRUE(r.result.ok());
    EXPECT_EQ(r.result->verdict, Verdict::kCertain);
  }
  ServiceStats s = service.Stats();
  EXPECT_EQ(s.cache_bypass, 3u);
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.cache_misses, 0u);
  EXPECT_EQ(s.cache_entries, 0u) << "bypassed results must not be stored";
  EXPECT_TRUE(service.Shutdown(milliseconds(10'000)));
}

// ---------------------------------------------------------------------------
// Cacheability property: degraded and failed solves never stick

TEST(CachePropertyTest, DegradedVerdictIsNotCachedAndRetryResolves) {
  // First submission: fault injection exhausts the exact stage, the kAuto
  // path degrades to a qualified verdict. That verdict must not be cached:
  // the clean resubmission re-solves and reports the exact verdict. The
  // cyclic pigeonhole query forces the governed backtracking solver — a
  // q1-shaped query would be answered by the ungoverned poly-time matcher
  // before the injected fault could bite.
  auto db = std::make_shared<const Database>(PigeonholeDatabase(6));
  Query q = PigeonholeCyclicQuery();
  Result<SolveReport> cold = SolveCertainty(q, *db, SolverMethod::kAuto);
  ASSERT_TRUE(cold.ok()) << cold.error();

  ServiceOptions options;
  options.workers = 1;
  options.cache_entries = 16;
  SolveService service(options);

  ServeJob faulted(q, db);
  faulted.method = SolverMethod::kAuto;
  faulted.fail_after_probes = 1;  // trip the budget instantly, every stage
  ServeResponse degraded = SolveVia(&service, std::move(faulted));
  ASSERT_EQ(degraded.state, RequestState::kCompleted);
  ASSERT_TRUE(degraded.result.ok()) << degraded.result.error();
  ASSERT_TRUE(degraded.result->verdict == Verdict::kProbablyCertain ||
              degraded.result->verdict == Verdict::kExhausted)
      << "fault injection should have degraded the verdict, got "
      << ToString(degraded.result->verdict);
  EXPECT_EQ(service.Stats().cache_entries, 0u)
      << "a degraded verdict must never be stored";

  ServeResponse clean = SolveVia(&service, ServeJob(q, db));
  ASSERT_TRUE(clean.result.ok());
  EXPECT_EQ(clean.result->verdict, cold->verdict)
      << "the retry with full budget must re-solve exactly";
  ServiceStats s = service.Stats();
  EXPECT_EQ(s.cache_hits, 0u)
      << "nothing was cached, so nothing can have hit";
  EXPECT_EQ(s.cache_misses, 2u);
  EXPECT_EQ(s.cache_entries, 1u) << "only the exact verdict is stored";
  EXPECT_TRUE(service.Shutdown(milliseconds(10'000)));
}

TEST(CachePropertyTest, BudgetExhaustedErrorIsNotCached) {
  // Degradation off: the faulted solve fails with a typed error. Errors
  // are not SolveReports and must never be cached — the clean retry gets
  // the exact verdict, not a replay of the failure.
  auto db = Db("R(a | b), R(a | c)");
  ServiceOptions options;
  options.workers = 1;
  options.cache_entries = 16;
  SolveService service(options);

  ServeJob faulted(Q("R(x | y)"), db);
  faulted.method = SolverMethod::kBacktracking;
  faulted.degrade_to_sampling = false;
  faulted.fail_after_probes = 1;
  ServeResponse failed = SolveVia(&service, std::move(faulted));
  ASSERT_EQ(failed.state, RequestState::kCompleted);
  ASSERT_FALSE(failed.result.ok());
  EXPECT_EQ(failed.result.code(), ErrorCode::kBudgetExhausted);
  EXPECT_EQ(service.Stats().cache_entries, 0u);

  ServeJob clean(Q("R(x | y)"), db);
  clean.method = SolverMethod::kBacktracking;
  ServeResponse ok = SolveVia(&service, std::move(clean));
  ASSERT_TRUE(ok.result.ok()) << ok.result.error();
  EXPECT_EQ(ok.result->verdict, Verdict::kCertain);
  // And the now-cached exact verdict serves a third submission.
  ServeJob again(Q("R(x | y)"), db);
  again.method = SolverMethod::kBacktracking;
  ServeResponse hit = SolveVia(&service, std::move(again));
  ASSERT_TRUE(hit.result.ok());
  EXPECT_EQ(hit.result->verdict, Verdict::kCertain);
  EXPECT_EQ(service.Stats().cache_hits, 1u);
  EXPECT_TRUE(service.Shutdown(milliseconds(10'000)));
}

TEST(CachePropertyTest, SamplingRefutationIsCacheable) {
  // kNotCertain from the sampling engine is a definitive refutation (a
  // falsifying repair was exhibited), so it may be cached like any exact
  // verdict; a probably-certain sampling verdict may not.
  SolveReport refuted;
  refuted.verdict = Verdict::kNotCertain;
  refuted.used = SolverMethod::kSampling;
  EXPECT_TRUE(IsCacheableReport(refuted));
  SolveReport probably;
  probably.verdict = Verdict::kProbablyCertain;
  probably.used = SolverMethod::kSampling;
  probably.confidence = 0.99;
  EXPECT_FALSE(IsCacheableReport(probably));
}

// ---------------------------------------------------------------------------
// Delta fingerprint maintenance (the property the epoch-aware cache key
// stands on: the incremental digest IS the content digest)

DeltaOp RandomOp(std::mt19937_64& rng) {
  static const char* kRelations[] = {"R", "S", "T"};
  static const char* kValues[] = {"a", "b", "c", "d", "e", "f"};
  DeltaOp op;
  op.insert = (rng() & 1) != 0;
  op.relation = kRelations[rng() % 3];
  op.values = {kValues[rng() % 6], kValues[rng() % 6]};
  return op;
}

TEST(FingerprintDeltaPropertyTest, IncrementalMatchesFromScratchOn1000Deltas) {
  auto current = Db("R(a | b)\nS(b | a)\nT(x | y)");
  std::mt19937_64 rng(0xd1fffe7a5ull);
  for (int round = 0; round < 1000; ++round) {
    FactDelta delta;
    delta.id = "round-" + std::to_string(round);
    size_t ops = 1 + rng() % 8;
    for (size_t i = 0; i < ops; ++i) delta.ops.push_back(RandomOp(rng));
    Result<DeltaApplyOutcome> out = ApplyDeltaToDatabase(*current, delta);
    ASSERT_TRUE(out.ok()) << out.error();
    // From-scratch oracle: serialise the new epoch, load it cold, digest.
    Result<Database> rebuilt = Database::FromText(out->db->ToText());
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.error();
    ASSERT_EQ(out->fingerprint, FingerprintDatabase(rebuilt.value()))
        << "incremental digest diverged at round " << round;
    current = out->db;
  }
}

TEST(FingerprintDeltaPropertyTest, InsertThenDeleteRestoresTheExactDigest) {
  auto base = Db("R(a | b)\nS(b | a)\nT(x | y)");
  const DbFingerprint base_fp = FingerprintDatabase(*base);
  std::mt19937_64 rng(0xabcdef12ull);
  std::shared_ptr<const Database> current = base;
  for (int round = 0; round < 200; ++round) {
    // A batch of random inserts of facts not currently present...
    std::vector<DeltaOp> inserts;
    const size_t target = 1 + rng() % 5;
    while (inserts.size() < target) {
      DeltaOp op = RandomOp(rng);
      op.insert = true;
      Tuple t = {Value::Of(op.values[0]), Value::Of(op.values[1])};
      if (current->Contains(InternSymbol(op.relation), t)) continue;
      bool dup = false;
      for (const DeltaOp& seen : inserts) {
        dup |= seen.relation == op.relation && seen.values == op.values;
      }
      if (!dup) inserts.push_back(std::move(op));
    }
    FactDelta forward;
    forward.id = "fwd-" + std::to_string(round);
    forward.ops = inserts;
    Result<DeltaApplyOutcome> grown = ApplyDeltaToDatabase(*current, forward);
    ASSERT_TRUE(grown.ok()) << grown.error();
    ASSERT_EQ(grown->inserted, inserts.size());
    ASSERT_NE(grown->fingerprint, base_fp);

    // ...then the inverse deletes: the digest must return EXACTLY (the
    // XOR lane is self-inverse, the additive lane subtracts — any drift
    // here would poison every future cache key).
    FactDelta inverse;
    inverse.id = "inv-" + std::to_string(round);
    for (const DeltaOp& op : inserts) {
      DeltaOp del = op;
      del.insert = false;
      inverse.ops.push_back(std::move(del));
    }
    Result<DeltaApplyOutcome> restored =
        ApplyDeltaToDatabase(*grown->db, inverse);
    ASSERT_TRUE(restored.ok()) << restored.error();
    EXPECT_EQ(restored->fingerprint, base_fp)
        << "digest not restored at round " << round;
    current = base;  // keep rounds independent and the database small
  }
}

// ---------------------------------------------------------------------------
// ResultCache::OnDatabaseDelta

TEST(ResultCacheDeltaTest, RekeysDisjointAndDropsIntersectingEntries) {
  ResultCache cache(16, 2);
  auto old_db = Db("R(a | b)\nS(b | a)\nU(u | v)");
  auto new_db = Db("R(a | b)\nU(u | v)");
  const DbFingerprint old_fp = FingerprintDatabase(*old_db);
  const DbFingerprint new_fp = FingerprintDatabase(*new_db);

  Query touches_s = Q("R(x | y), not S(y | x)");
  Query avoids_s = Q("U(x | y)");
  CacheKey k_touch = MakeCacheKey(old_fp, SolverMethod::kAuto, touches_s);
  CacheKey k_avoid = MakeCacheKey(old_fp, SolverMethod::kAuto, avoids_s);
  ASSERT_TRUE(cache.Insert(k_touch, ExactReport(Verdict::kNotCertain)));
  ASSERT_TRUE(cache.Insert(k_avoid, ExactReport(Verdict::kCertain)));

  auto [invalidated, rekeyed] =
      cache.OnDatabaseDelta(old_fp, new_fp, {"S"});
  EXPECT_EQ(invalidated, 1u);
  EXPECT_EQ(rekeyed, 1u);

  // The S-free entry serves hits under the NEW fingerprint without ever
  // being re-inserted; nothing answers under the old one.
  EXPECT_TRUE(cache.Lookup(MakeCacheKey(new_fp, SolverMethod::kAuto, avoids_s))
                  .has_value());
  EXPECT_FALSE(
      cache.Lookup(MakeCacheKey(new_fp, SolverMethod::kAuto, touches_s))
          .has_value());
  EXPECT_FALSE(cache.Lookup(k_avoid).has_value());
  EXPECT_FALSE(cache.Lookup(k_touch).has_value());

  CacheStats s = cache.Stats();
  EXPECT_EQ(s.invalidated, 1u);
  EXPECT_EQ(s.rekeyed, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ResultCacheDeltaTest, ForeignFingerprintsAreLeftAlone) {
  ResultCache cache(16, 2);
  auto db_a = Db("R(a | b)");
  auto db_b = Db("S(b | a)");
  const DbFingerprint fp_a = FingerprintDatabase(*db_a);
  const DbFingerprint fp_b = FingerprintDatabase(*db_b);
  CacheKey other = MakeCacheKey(fp_b, SolverMethod::kAuto, Q("S(x | y)"));
  ASSERT_TRUE(cache.Insert(other, ExactReport(Verdict::kCertain)));

  // A delta on database A must not disturb entries of database B, even
  // though they share one cache (sibling shards in one service).
  auto new_db_a = Db("R(a | b), R(a | c)");
  cache.OnDatabaseDelta(fp_a, FingerprintDatabase(*new_db_a), {"R"});
  EXPECT_TRUE(cache.Lookup(other).has_value());
}

}  // namespace
}  // namespace cqa
