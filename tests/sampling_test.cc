#include <gtest/gtest.h>

#include "cqa/certainty/naive.h"
#include "cqa/certainty/sampling.h"
#include "cqa/gen/random_db.h"
#include "cqa/query/parser.h"
#include "cqa/reductions/bpm.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

TEST(SamplingTest, RefutationIsSound) {
  // Whenever sampling refutes, exact solving must also answer false.
  Query q1 = MakeQ1();
  Rng rng(1401);
  RandomDbOptions opts;
  opts.blocks_per_relation = 3;
  for (int trial = 0; trial < 100; ++trial) {
    Database db = GenerateRandomDatabaseFor(q1, opts, &rng);
    Rng sample_rng(trial);
    SampleEstimate est = EstimateCertainty(q1, db, 64, &sample_rng);
    bool exact = IsCertainNaive(q1, db).value();
    if (est.refuted) {
      EXPECT_FALSE(exact) << db.ToString();
    }
    if (exact) {
      EXPECT_FALSE(est.refuted);
      EXPECT_EQ(est.SatisfyingFraction(), 1.0);
    }
  }
}

TEST(SamplingTest, FindsCounterexamplesWithHighProbability) {
  // A database where exactly half the repairs falsify: one R-block of two
  // facts, one of which is S-covered.
  Result<Database> db = Database::FromText(R"(
    R(a | b), R(a | c)
    S(b | a)
  )");
  ASSERT_TRUE(db.ok());
  Query q1 = MakeQ1();
  Rng rng(7);
  SampleEstimate est = EstimateCertainty(q1, db.value(), 64, &rng);
  EXPECT_TRUE(est.refuted);  // P[miss in 64 draws] = 2^-64
}

TEST(SamplingTest, FractionApproximatesExactCount) {
  Query q = Q("P(x | y), not N(x | y)");
  Rng rng(1409);
  RandomDbOptions opts;
  opts.blocks_per_relation = 4;
  int checked = 0;
  for (int trial = 0; trial < 60 && checked < 20; ++trial) {
    Database db = GenerateRandomDatabaseFor(q, opts, &rng);
    Result<RepairCount> exact = CountSatisfyingRepairs(q, db);
    ASSERT_TRUE(exact.ok());
    if (exact->satisfying != exact->total) continue;  // want certain=true
    ++checked;
    Rng sample_rng(trial * 31 + 1);
    SampleEstimate est = EstimateCertainty(q, db, 200, &sample_rng);
    EXPECT_FALSE(est.refuted);
    EXPECT_EQ(est.samples, 200u);
  }
  EXPECT_GE(checked, 5);
}

TEST(SamplingTest, EmptyDatabaseSingleRepair) {
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  Database db(s);
  Rng rng(1);
  SampleEstimate est = EstimateCertainty(Q("R(x | y)"), db, 10, &rng);
  EXPECT_TRUE(est.refuted);  // the empty repair falsifies R(x|y)
  EXPECT_EQ(est.samples, 1u);
}

}  // namespace
}  // namespace cqa
