// Edge-case sweeps for the rewriting construction: shapes that stress the
// constants / repeated-variables / shared-variables handling in the
// positive and negative elimination cases of Lemma 6.1.

#include <gtest/gtest.h>

#include "cqa/certainty/naive.h"
#include "cqa/fo/eval.h"
#include "cqa/gen/random_db.h"
#include "cqa/query/parser.h"
#include "cqa/rewriting/algorithm1.h"
#include "cqa/rewriting/rewriter.h"

namespace cqa {
namespace {

class RewriterEdgeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RewriterEdgeTest, MatchesOracleEverywhere) {
  Result<Query> q = ParseQuery(GetParam());
  ASSERT_TRUE(q.ok()) << q.error();
  Result<Rewriting> rw = RewriteCertain(q.value());
  if (!rw.ok()) {
    // Outside the FO fragment: the oracle is still checked against the
    // interpreter refusing consistently.
    Schema s;
    ASSERT_TRUE(q->RegisterInto(&s).ok());
    EXPECT_FALSE(IsCertainAlgorithm1(q.value(), Database(s)).ok());
    return;
  }
  Rng rng(std::hash<std::string>{}(GetParam()));
  RandomDbOptions opts;
  opts.blocks_per_relation = 2;
  opts.max_block_size = 2;
  opts.domain_size = 3;
  for (int i = 0; i < 120; ++i) {
    Database db = GenerateRandomDatabaseFor(q.value(), opts, &rng);
    Result<bool> oracle = IsCertainNaive(q.value(), db);
    ASSERT_TRUE(oracle.ok());
    ASSERT_EQ(EvalFo(rw->formula, db), oracle.value())
        << GetParam() << "\n" << rw->formula->ToString() << "\n"
        << db.ToString();
    Result<bool> a1 = IsCertainAlgorithm1(q.value(), db);
    ASSERT_TRUE(a1.ok()) << a1.error();
    ASSERT_EQ(a1.value(), oracle.value()) << GetParam() << "\n"
                                          << db.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    TrickyShapes, RewriterEdgeTest,
    ::testing::Values(
        // Repeated variable inside a positive key.
        "R(x, x | y), not N(x | y)",
        // Repeated variable spanning key and value of the positive atom.
        "R(x | x, y), not N(x | y)",
        // Constant in the positive key.
        "R('v0' | y), not N(y | 'v1')",
        // Constant in the negated value position.
        "P(x | y), not N(x | 'v0')",
        // Repeated variable in the negated value part (Example 6.11 shape).
        "P(y), not N('v0' | y, y)",
        // Negated atom whose key is a non-key variable of the positive atom.
        "P(x | y), not N(y | x)",
        // Two negated atoms sharing their variables.
        "P(x | y), not N1(x | y), not N2(x | y)",
        // Negated atom over a subset of a wide positive atom.
        "W(x | y, z), not N(x | z)",
        // All-key positive with ground negated atom.
        "E(x, y), not N('v0' | 'v1')",
        // Chain feeding a negated atom at the end.
        "R(x | y), S(y | z), not N(y | z)",
        // Unary everything.
        "U(x), not N1(x), not N2(x)",
        // Wide keys.
        "K(x, y | z), not N(x, y | z)"));

}  // namespace
}  // namespace cqa
