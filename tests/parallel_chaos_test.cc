// Chaos harness for component-decomposed parallel solving. The scenarios
// here are the ones the differential suite cannot reach: external
// cancellation landing mid-component-fanout, a deadline expiring while
// straggler components are still searching, and service shutdown racing
// in-flight parallel solves. The invariants:
//
//   1. A tripped parent budget (cancel token or deadline) surfaces as the
//      matching typed error — kCancelled / kDeadlineExceeded — never a
//      wrong verdict, and the solve returns promptly (stride-granular).
//   2. A definitive answer beats a straggler: one cheap certain component
//      resolves the OR and cancels its unbounded siblings.
//   3. SolveCertainParallel never leaks pool tasks: every component task
//      joins before the call returns, so stack-local budgets and databases
//      can be destroyed immediately after — repeated here in a tight loop
//      so a leaked task tripping on freed state would surface.
//   4. Under the service, every accepted parallel request reaches exactly
//      one terminal state even when Shutdown races the fan-out.
//
// Run under the `tsan` preset (ctest -L concurrency) to check the same
// scenarios for data races.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cqa/base/budget.h"
#include "cqa/gen/families.h"
#include "cqa/parallel/decompose.h"
#include "cqa/parallel/parallel_solver.h"
#include "cqa/query/parser.h"
#include "cqa/serve/service.h"

namespace cqa {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// `copies` value-disjoint pigeonhole cores (each one a component of its
// own, prefixed so the interner cannot merge them). Every core is certain;
// k >= 12 makes a single core's search effectively unbounded, so a solve
// over only hard cores finishes via budget trip or cancellation, never on
// its own. With `easy_cores` > 0, that many k=2 cores (certain, decided in
// microseconds) are appended — the short-circuit targets.
Database MultiPigeonhole(int copies, int k, int easy_cores = 0) {
  Schema schema;
  schema.AddRelationOrDie("R", 2, 1);
  schema.AddRelationOrDie("S", 2, 1);
  schema.AddRelationOrDie("T", 2, 1);
  Database db(std::move(schema));
  auto add_core = [&db](const std::string& prefix, int kk) {
    for (int i = 1; i <= kk; ++i) {
      Value a = Value::Of(prefix + "a" + std::to_string(i));
      for (int j = 1; j < kk; ++j) {
        Value b = Value::Of(prefix + "b" + std::to_string(j));
        db.AddFactOrDie("R", {a, b});
        db.AddFactOrDie("S", {b, a});
      }
    }
  };
  for (int c = 0; c < copies; ++c) {
    add_core("hard" + std::to_string(c) + "_", k);
  }
  for (int e = 0; e < easy_cores; ++e) {
    add_core("easy" + std::to_string(e) + "_", 2);
  }
  return db;
}

TEST(ParallelChaosTest, CancellationMidFanoutReturnsTypedErrorPromptly) {
  // Four unbounded components saturate the width-4 pool; the cancel token
  // flips from another thread while every worker is mid-search. The loop
  // re-runs the scenario so a component task leaked past the join — one
  // still holding the stack-local budget or database — would fault or race
  // on the next iteration's state.
  Query q = PigeonholeCyclicQuery();
  for (int round = 0; round < 4; ++round) {
    Database db = MultiPigeonhole(4, 12 + round);
    ASSERT_GE(DecomposeData(q, db).size(), 4u);
    std::atomic<bool> cancel{false};
    Budget budget;
    budget.cancel = &cancel;
    ParallelOptions popts;
    popts.parallelism = 4;
    popts.budget = &budget;
    std::thread trigger([&cancel] {
      std::this_thread::sleep_for(milliseconds(30));
      cancel.store(true);
    });
    auto start = steady_clock::now();
    Result<ParallelReport> r = SolveCertainParallel(q, db, popts);
    auto elapsed = std::chrono::duration_cast<milliseconds>(
        steady_clock::now() - start);
    trigger.join();
    ASSERT_FALSE(r.ok()) << "round " << round
                         << ": unbounded search cannot finish";
    EXPECT_EQ(r.code(), ErrorCode::kCancelled) << "round " << round;
    // Cancellation latency is poll + stride granular; the bound is loose
    // but rules out any component running to exhaustion.
    EXPECT_LT(elapsed.count(), 30'000) << "round " << round;
  }
}

TEST(ParallelChaosTest, DeadlineExpiryWithStragglersSurfacesAsTypedError) {
  // All components are unbounded and the parent deadline is short: the
  // waiting thread's poll must trip the component stop tokens and the
  // overall result must be the deadline's typed error, not a hang until
  // some component finishes (none ever would).
  Query q = PigeonholeCyclicQuery();
  Database db = MultiPigeonhole(6, 12);
  Budget budget = Budget::WithTimeout(milliseconds(60));
  ParallelOptions popts;
  popts.parallelism = 3;  // fewer workers than components: some still queued
  popts.budget = &budget;
  auto start = steady_clock::now();
  Result<ParallelReport> r = SolveCertainParallel(q, db, popts);
  auto elapsed =
      std::chrono::duration_cast<milliseconds>(steady_clock::now() - start);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_LT(elapsed.count(), 30'000);
}

TEST(ParallelChaosTest, CertainComponentShortCircuitsUnboundedSiblings) {
  // One k=2 core decides the OR in microseconds while five unbounded
  // siblings are still fanned out; the verdict must arrive long before the
  // generous deadline by cancelling the stragglers, and it must be the
  // exact sequential answer (certain).
  Query q = PigeonholeCyclicQuery();
  Database db = MultiPigeonhole(5, 12, /*easy_cores=*/1);
  Budget budget = Budget::WithTimeout(milliseconds(120'000));
  ParallelOptions popts;
  popts.parallelism = 8;
  popts.budget = &budget;
  auto start = steady_clock::now();
  Result<ParallelReport> r = SolveCertainParallel(q, db, popts);
  auto elapsed =
      std::chrono::duration_cast<milliseconds>(steady_clock::now() - start);
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_TRUE(r->certain);
  EXPECT_EQ(r->components, 6);
  EXPECT_LT(elapsed.count(), 60'000)
      << "short-circuit must not wait for the unbounded siblings";
}

// ---------------------------------------------------------------------------
// Service-level: shutdown racing parallel solves

// Thread-safe terminal-state ledger keyed by request id (the serve_chaos
// idiom).
class Ledger {
 public:
  void Record(const ServeResponse& r) {
    std::lock_guard<std::mutex> lock(mu_);
    ++callbacks_[r.id];
    responses_[r.id] = r;
  }

  size_t CheckExactlyOnce() {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, n] : callbacks_) {
      EXPECT_EQ(n, 1) << "request " << id << " completed " << n << " times";
    }
    return callbacks_.size();
  }

  std::map<uint64_t, ServeResponse> Responses() {
    std::lock_guard<std::mutex> lock(mu_);
    return responses_;
  }

 private:
  std::mutex mu_;
  std::map<uint64_t, int> callbacks_;
  std::map<uint64_t, ServeResponse> responses_;
};

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

TEST(ParallelChaosTest, ShutdownRacingParallelSolvesTerminatesExactlyOnce) {
  // Workers run width-8 parallel fan-outs over unbounded components when
  // Shutdown lands with a drain deadline far too short to finish anything.
  // Shutdown must cancel through the parallel layer (worker budget ->
  // component stop tokens), every accepted request must reach exactly one
  // terminal state, and no component task may outlive the service.
  auto hard_db =
      std::make_shared<const Database>(MultiPigeonhole(6, 12));
  auto easy_db =
      std::make_shared<const Database>(MultiPigeonhole(0, 0, /*easy=*/3));
  Query hard_q = PigeonholeCyclicQuery();

  ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 64;
  options.parallelism = 8;
  SolveService service(options);

  Ledger ledger;
  auto cb = [&ledger](const ServeResponse& r) { ledger.Record(r); };

  uint64_t accepted = 0;
  for (int i = 0; i < 24; ++i) {
    ServeJob job = [&]() -> ServeJob {
      if (i % 3 == 0) {
        ServeJob j(Q("R(x | y), not S(y | x)"), easy_db);
        j.method = SolverMethod::kBacktracking;
        return j;  // decomposes, finishes instantly
      }
      ServeJob j(hard_q, hard_db);  // unbounded parallel fan-out
      j.method = SolverMethod::kBacktracking;
      j.degrade_to_sampling = false;
      return j;
    }();
    Result<uint64_t> id = service.Submit(std::move(job), cb);
    if (id.ok()) ++accepted;
  }

  auto start = steady_clock::now();
  bool drained = service.Shutdown(milliseconds(50));
  auto elapsed =
      std::chrono::duration_cast<milliseconds>(steady_clock::now() - start);
  EXPECT_FALSE(drained) << "unbounded parallel solves cannot drain in 50ms";
  EXPECT_LT(elapsed.count(), 30'000) << "shutdown took implausibly long";

  EXPECT_EQ(ledger.CheckExactlyOnce(), accepted);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed + stats.failed + stats.cancelled, accepted);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_GT(stats.cancelled, 0u) << "the unbounded fan-outs must be cancelled";
  // Any easy request that did complete must carry the exact verdict.
  for (const auto& [id, r] : ledger.Responses()) {
    if (r.state == RequestState::kCompleted && r.result.ok() &&
        r.result->components > 0) {
      EXPECT_TRUE(r.result->verdict == Verdict::kCertain ||
                  r.result->verdict == Verdict::kNotCertain)
          << "parallel path must never emit an approximate verdict";
    }
  }
}

}  // namespace
}  // namespace cqa
