// Sandbox chaos: fork churn under concurrent load, shutdown racing
// in-flight children, and zombie accounting. Runs under the tsan preset
// (label `concurrency`); the invariants here are the ones a data race or a
// missed reap would break:
//
//  * every accepted submission gets exactly one terminal callback, no
//    matter how its child died;
//  * after Shutdown returns, the test process has no children left —
//    every fork was reaped synchronously by its supervisor (zero
//    zombies), even for children SIGKILLed mid-solve.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cqa/gen/families.h"
#include "cqa/query/parser.h"
#include "cqa/serve/sandbox/sandbox.h"
#include "cqa/serve/service.h"

namespace cqa {
namespace {

using std::chrono::milliseconds;

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

// Sound because RunSandboxedSolve reaps its child synchronously (blocking
// wait4 after the kill) before returning: once every request is terminal
// and Shutdown has joined the workers, no supervisor is mid-reap.
void ExpectNoChildProcesses(const char* where) {
  int status = 0;
  pid_t pid = waitpid(-1, &status, WNOHANG);
  EXPECT_EQ(pid, -1) << where << ": unreaped child pid " << pid;
  if (pid == -1) {
    EXPECT_EQ(errno, ECHILD) << where;
  }
}

struct Sink {
  std::mutex mu;
  std::vector<ServeResponse> responses;
  SolveService::Callback Callback() {
    return [this](const ServeResponse& r) {
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(r);
    };
  }
  size_t Count() {
    std::lock_guard<std::mutex> lock(mu);
    return responses.size();
  }
};

TEST(SandboxChaosTest, ForkChurnUnderConcurrentLoadDeliversEveryTerminal) {
  auto small = std::make_shared<const Database>([] {
    Result<Database> db = Database::FromText("R(a | b), R(a | c)\nS(b | a)");
    EXPECT_TRUE(db.ok());
    return std::move(db.value());
  }());
  auto hard = std::make_shared<const Database>(PigeonholeDatabase(8));

  ServiceOptions options;
  options.workers = 4;
  options.queue_capacity = 256;
  options.isolation = IsolationMode::kFork;  // every solve forks
  options.sandbox.kill_grace = milliseconds(250);
  SolveService service(options);
  Sink sink;

  const int kRounds = 8;
  size_t accepted = 0, expected_crashes = 0, expected_kills = 0;
  for (int i = 0; i < kRounds; ++i) {
    // A fast clean solve, a crashing solve, and a wedged solve with a
    // short deadline — every exit path of the supervisor, interleaved
    // across four workers at once.
    ServeJob clean(Q("R(x | y)"), small);
    if (service.Submit(std::move(clean), sink.Callback()).ok()) ++accepted;

    ServeJob crashing(Q("R(x | y), not S(y | x)"), small);
    crashing.method = SolverMethod::kBacktracking;
    crashing.crash_after_probes = 1;
    if (service.Submit(std::move(crashing), sink.Callback()).ok()) {
      ++accepted;
      ++expected_crashes;
    }

    ServeJob wedged(PigeonholeCyclicQuery(), hard);
    wedged.method = SolverMethod::kBacktracking;
    wedged.wedge_after_probes = 1;
    wedged.timeout = milliseconds(50);
    if (service.Submit(std::move(wedged), sink.Callback()).ok()) {
      ++accepted;
      ++expected_kills;
    }
  }
  ASSERT_GT(accepted, 0u);
  EXPECT_TRUE(service.Shutdown(milliseconds(120'000)));

  EXPECT_EQ(sink.Count(), accepted) << "exactly one terminal per submission";
  size_t ok = 0, crashed = 0, deadline = 0;
  {
    std::lock_guard<std::mutex> lock(sink.mu);
    for (const ServeResponse& r : sink.responses) {
      if (r.result.ok()) {
        ++ok;
      } else if (r.result.code() == ErrorCode::kWorkerCrashed) {
        ++crashed;
      } else if (r.result.code() == ErrorCode::kDeadlineExceeded) {
        ++deadline;
      } else {
        ADD_FAILURE() << "unexpected terminal: " << r.result.error();
      }
    }
  }
  EXPECT_EQ(ok, accepted - expected_crashes - expected_kills);
  EXPECT_EQ(crashed, expected_crashes);
  EXPECT_EQ(deadline, expected_kills);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.sandbox_forks, accepted);
  EXPECT_EQ(stats.sandbox_crashes, expected_crashes);
  EXPECT_GE(stats.sandbox_kills, expected_kills);
  ExpectNoChildProcesses("after churn shutdown");
}

TEST(SandboxChaosTest, ShutdownRacingInFlightChildrenKillsAndReapsAll) {
  auto hard = std::make_shared<const Database>(PigeonholeDatabase(8));
  ServiceOptions options;
  options.workers = 4;
  options.isolation = IsolationMode::kFork;
  options.sandbox.kill_grace = milliseconds(250);
  SolveService service(options);
  Sink sink;

  // Wedged children with no deadline: only the shutdown drain's forced
  // cancellation can end them, and only via SIGKILL.
  const int kWedged = 6;
  size_t accepted = 0;
  for (int i = 0; i < kWedged; ++i) {
    ServeJob wedged(PigeonholeCyclicQuery(), hard);
    wedged.method = SolverMethod::kBacktracking;
    wedged.wedge_after_probes = 1;
    if (service.Submit(std::move(wedged), sink.Callback()).ok()) ++accepted;
  }
  ASSERT_GT(accepted, 0u);
  // Give workers a moment to pop and fork, then shut down with a drain
  // window far shorter than "forever": the drain must *force* the kills.
  std::this_thread::sleep_for(milliseconds(150));
  EXPECT_FALSE(service.Shutdown(milliseconds(100)))
      << "wedged children cannot drain cleanly";

  EXPECT_EQ(sink.Count(), accepted);
  {
    std::lock_guard<std::mutex> lock(sink.mu);
    for (const ServeResponse& r : sink.responses) {
      EXPECT_FALSE(r.result.ok());
      // In-flight children die as kCancelled; requests still queued when
      // the drain expired never forked and are cancelled too.
      EXPECT_EQ(r.state, RequestState::kCancelled)
          << ToString(r.state) << ": " << r.result.error();
    }
  }
  ExpectNoChildProcesses("after racing shutdown");
}

TEST(SandboxChaosTest, CancellationStormWhileForking) {
  // Cancel every request from a separate thread while workers are forking
  // and supervising: exercises the cancel -> SIGKILL -> reap path racing
  // normal completion. Terminal accounting must still be exact.
  auto small = std::make_shared<const Database>([] {
    Result<Database> db = Database::FromText("R(a | b), R(a | c)\nS(b | a)");
    EXPECT_TRUE(db.ok());
    return std::move(db.value());
  }());
  auto hard = std::make_shared<const Database>(PigeonholeDatabase(8));
  ServiceOptions options;
  options.workers = 4;
  options.queue_capacity = 256;
  options.isolation = IsolationMode::kFork;
  options.sandbox.kill_grace = milliseconds(250);
  SolveService service(options);
  Sink sink;

  std::vector<uint64_t> ids;
  for (int i = 0; i < 16; ++i) {
    ServeJob job(i % 2 == 0 ? Q("R(x | y)") : PigeonholeCyclicQuery(),
                 i % 2 == 0 ? small : hard);
    if (i % 2 == 1) {
      job.method = SolverMethod::kBacktracking;
      job.wedge_after_probes = 1;  // cancellation is the only way out
    }
    Result<uint64_t> id = service.Submit(std::move(job), sink.Callback());
    if (id.ok()) ids.push_back(id.value());
  }
  std::thread storm([&] {
    std::this_thread::sleep_for(milliseconds(50));
    for (uint64_t id : ids) service.Cancel(id);
  });
  storm.join();
  EXPECT_TRUE(service.Shutdown(milliseconds(120'000)));

  EXPECT_EQ(sink.Count(), ids.size());
  {
    std::lock_guard<std::mutex> lock(sink.mu);
    for (const ServeResponse& r : sink.responses) {
      // Fast solves may beat the storm (completed), wedged ones cannot
      // (cancelled) — but each is terminal exactly once, and nothing
      // surfaces as a crash or an untyped error.
      if (!r.result.ok()) {
        EXPECT_EQ(r.result.code(), ErrorCode::kCancelled)
            << r.result.error();
      }
    }
  }
  ExpectNoChildProcesses("after cancellation storm");
}

}  // namespace
}  // namespace cqa
