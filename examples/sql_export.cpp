// Exporting consistent first-order rewritings as SQL: the practical payoff
// of Theorem 4.3 is that certain answers become a single SQL query over the
// inconsistent instance — no repair enumeration, no solver, just a database
// engine. This example emits a complete, self-contained SQL script (DDL +
// inserts + the rewriting) for Example 4.6's query qa.

#include <cstdio>

#include "cqa/fo/sql.h"
#include "cqa/gen/poll.h"
#include "cqa/rewriting/rewriter.h"

int main() {
  using namespace cqa;

  Query qa = PollQa();
  Result<Rewriting> rw = RewriteCertain(qa);
  if (!rw.ok()) {
    std::printf("-- no rewriting: %s\n", rw.error().c_str());
    return 1;
  }

  std::printf("-- CQA-to-SQL export for qa = %s\n", qa.ToString().c_str());
  std::printf("-- The SELECT below returns 1 iff qa is true in EVERY repair\n");
  std::printf("-- of the (possibly key-violating) instance.\n\n");

  Schema schema = PollSchema();
  std::printf("%s\n", SchemaDdl(schema).c_str());
  std::printf("%s\n", AdomViewDdl(schema).c_str());

  // A small inconsistent instance.
  Rng rng(99);
  PollDbOptions opts;
  opts.num_persons = 5;
  opts.num_towns = 3;
  Database db = GeneratePollDatabase(opts, &rng);
  for (const RelationSchema& rs : schema.relations()) {
    for (const Tuple& t : db.FactsOf(rs.name)) {
      std::printf("INSERT INTO %s VALUES (", SymbolName(rs.name).c_str());
      for (size_t i = 0; i < t.size(); ++i) {
        std::printf("%s'%s'", i ? ", " : "", t[i].name().c_str());
      }
      std::printf(");\n");
    }
  }
  std::printf("\n%s\n", ToSqlQuery(rw->formula).c_str());
  return 0;
}
