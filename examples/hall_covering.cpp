// Examples 1.2 / 6.12 (Figure 2): S-COVERING via CERTAINTY(q_Hall).
//
// Given a set S and subsets T_1..T_ℓ, S-COVERING asks for an injective
// assignment of elements to sets. The query
//   q_Hall = { S(x), ¬N1(c|x), ..., ¬Nℓ(c|x) }
// captures the complement: the covering exists iff q_Hall is NOT certain on
// the reduced database. The attack graph of q_Hall is acyclic, so a
// consistent first-order rewriting exists — Figure 2 of the paper shows it
// for ℓ = 3, and its size grows exponentially in ℓ, which this example
// measures.

#include <cstdio>

#include "cqa/certainty/rewriting_solver.h"
#include "cqa/matching/covering.h"
#include "cqa/reductions/hall_covering.h"
#include "cqa/rewriting/rewriter.h"

int main() {
  using namespace cqa;

  // A covering instance: 4 tasks, 5 workers with skill sets.
  SCoveringInstance inst;
  inst.num_elements = 4;  // tasks 0..3
  inst.sets = {{0, 1}, {1, 2}, {2}, {2, 3}, {3}};
  const int ell = static_cast<int>(inst.sets.size());

  std::printf("S-COVERING instance: %d elements, %d sets\n",
              inst.num_elements, ell);
  std::optional<SCoveringSolution> sol = SolveSCovering(inst);
  if (sol.has_value()) {
    std::printf("matching solver: coverable; assignment:");
    for (int a = 0; a < inst.num_elements; ++a) {
      std::printf(" %d->T%d", a, sol->assigned_set[a] + 1);
    }
    std::printf("\n");
  } else {
    std::printf("matching solver: NOT coverable (Hall violation)\n");
  }

  Query q = MakeHallQuery(ell);
  Database db = CoveringToHallDatabase(inst);
  Result<RewritingSolver> solver = RewritingSolver::Create(q);
  if (!solver.ok()) {
    std::printf("rewriting failed: %s\n", solver.error().c_str());
    return 1;
  }
  bool certain = solver->IsCertain(db);
  std::printf("CERTAINTY(q_Hall) on the reduced database: %s\n",
              certain ? "true" : "false");
  std::printf("=> covering exists: %s (matching agrees: %s)\n\n",
              certain ? "no" : "yes",
              (certain == !sol.has_value()) ? "yes" : "NO - BUG");

  // Figure 2's rewriting for ℓ = 3, as constructed by the library.
  Result<Rewriting> fig2 = RewriteCertain(MakeHallQuery(3));
  std::printf("the Figure 2 rewriting (ℓ = 3), machine-built:\n%s\n\n",
              fig2->formula->ToString().c_str());

  // Exponential growth of the rewriting in ℓ (Example 6.12's remark).
  std::printf("%-4s %-14s %-14s\n", "ell", "raw AST size", "simplified");
  for (int l = 0; l <= 6; ++l) {
    Result<Rewriting> rw = RewriteCertain(MakeHallQuery(l));
    std::printf("%-4d %-14zu %-14zu\n", l, rw->raw_size,
                rw->simplified_size);
  }
  return 0;
}
