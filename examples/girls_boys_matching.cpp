// Example 1.1 / Figure 1: the girls/boys query
//   q1 = { R(g | b), ¬S(b | g) }
// whose certainty is the complement of BIPARTITE PERFECT MATCHING
// (Lemma 5.2). This example builds Figure 1's database, shows the repair
// that falsifies q1 (the Alice–George / Maria–Bob pairing), and compares
// the naive oracle with the Hopcroft–Karp-based polynomial solver on a
// larger random instance where enumeration is hopeless.

#include <cstdio>

#include "cqa/base/rng.h"
#include "cqa/certainty/matching_q1.h"
#include "cqa/certainty/naive.h"
#include "cqa/db/eval.h"
#include "cqa/db/repairs.h"
#include "cqa/matching/hopcroft_karp.h"
#include "cqa/reductions/bpm.h"

int main() {
  using namespace cqa;

  Query q1 = MakeQ1();
  std::printf("q1 = %s\n\n", q1.ToString().c_str());

  Result<Database> fig1 = Database::FromText(R"(
    R(alice | bob), R(alice | george), R(maria | bob), R(maria | john)
    S(bob | alice), S(bob | maria), S(george | alice), S(george | maria)
  )");
  std::printf("Figure 1 database (%llu repairs):\n%s\n",
              static_cast<unsigned long long>(fig1->CountRepairs()),
              fig1->ToString().c_str());

  std::printf("certainty via naive enumeration : %s\n",
              IsCertainNaive(q1, fig1.value()).value() ? "true" : "false");
  std::printf("certainty via perfect matching  : %s\n",
              IsCertainQ1ByMatching(q1, fig1.value()).value() ? "true"
                                                              : "false");

  // Exhibit a falsifying repair (the paper's pairing).
  ForEachRepair(fig1.value(), [&](const Repair& r) {
    if (!Satisfies(q1, r)) {
      std::printf("\na falsifying repair (everyone matched):\n%s",
                  r.ToString().c_str());
      return false;
    }
    return true;
  });

  // A larger random instance: 60 girls and boys, ~6 acquaintances each. The
  // database has far too many repairs to enumerate; matching answers
  // instantly.
  Rng rng(4);
  BipartiteGraph g(60, 60);
  for (int l = 0; l < 60; ++l) {
    for (int k = 0; k < 6; ++k) {
      g.AddEdge(l, static_cast<int>(rng.Below(60)));
    }
  }
  Database big = BpmToQ1Database(g);
  std::printf("\nrandom instance: %zu facts, repairs ~ 2^%zu\n",
              big.NumFacts(), big.NumBlocks());
  std::printf("perfect matching exists: %s\n",
              HasPerfectMatching(g) ? "yes" : "no");
  std::printf("CERTAINTY(q1)          : %s\n",
              IsCertainQ1ByMatching(q1, big).value() ? "true" : "false");
  return 0;
}
