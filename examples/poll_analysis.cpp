// Example 4.6 end-to-end: the persons/towns poll schema with its four named
// queries. Two of them (q1, q2) have cyclic attack graphs — no consistent
// first-order rewriting exists — while qa and qb are rewritable and are
// answered here both by the rewriting and by exact solvers on randomly
// generated inconsistent poll data.

#include <cstdio>

#include "cqa/attack/attack_graph.h"
#include "cqa/attack/classification.h"
#include "cqa/certainty/solver.h"
#include "cqa/gen/poll.h"
#include "cqa/rewriting/rewriter.h"

int main() {
  using namespace cqa;

  Rng rng(2026);
  PollDbOptions opts;
  opts.num_persons = 12;
  opts.num_towns = 4;
  opts.inconsistency = 0.35;
  Database db = GeneratePollDatabase(opts, &rng);
  std::printf("poll database: %zu facts, %zu blocks, consistent=%s\n\n",
              db.NumFacts(), db.NumBlocks(),
              db.IsConsistent() ? "yes" : "no");

  struct Named {
    const char* name;
    const char* reading;
    Query query;
  };
  const Named queries[] = {
      {"q1", "is there a town whose mayor does not live in it?", PollQ1()},
      {"q2", "does someone like a town they neither live in nor run?",
       PollQ2()},
      {"qa", "does someone live in a town they were not born in and do not "
             "like?",
       PollQa()},
      {"qb", "does someone like a town they were not born in and do not live "
             "in?",
       PollQb()},
  };

  for (const Named& n : queries) {
    std::printf("%s = %s\n   \"%s\"\n", n.name, n.query.ToString().c_str(),
                n.reading);
    AttackGraph g(n.query);
    std::printf("   attacks: %s\n", g.ToString().c_str());
    Classification cls = Classify(n.query);
    std::printf("   CERTAINTY(%s): %s\n", n.name, ToString(cls.cls).c_str());

    Result<Rewriting> rw = RewriteCertain(n.query);
    if (rw.ok()) {
      std::printf("   rewriting (%zu nodes): %s\n", rw->simplified_size,
                  rw->formula->ToString().c_str());
    } else {
      std::printf("   rewriting: none (%s)\n", rw.error().c_str());
    }

    Result<SolveReport> report = SolveCertainty(n.query, db);
    if (report.ok()) {
      std::printf("   answer on generated data (via %s): %scertain\n",
                  ToString(report->used).c_str(),
                  report->certain ? "" : "NOT ");
    } else {
      std::printf("   solver error: %s\n", report.error().c_str());
    }
    std::printf("\n");
  }
  return 0;
}
