// Quickstart: parse a query and an inconsistent database, classify the
// query's CERTAINTY problem, build the consistent first-order rewriting, and
// answer certainty with several solvers.
//
// Build & run:  cmake --build build && ./build/examples/example_quickstart

#include <cstdio>

#include "cqa/attack/attack_graph.h"
#include "cqa/attack/classification.h"
#include "cqa/certainty/solver.h"
#include "cqa/fo/sql.h"
#include "cqa/query/parser.h"
#include "cqa/rewriting/rewriter.h"

int main() {
  using namespace cqa;

  // Example 4.5's query q3 = {P(x|y), ¬N('c'|y)}: "some P-block cannot be
  // repaired into a c-keyed N value".
  Result<Query> q = ParseQuery("P(x | y), not N('c' | y)");
  if (!q.ok()) {
    std::printf("parse error: %s\n", q.error().c_str());
    return 1;
  }
  std::printf("query q = %s\n", q->ToString().c_str());

  // An inconsistent database: P's block k1 violates its primary key.
  Result<Database> db = Database::FromText(R"(
    P(k1 | a), P(k1 | b)
    P(k2 | a)
    N(c | b)
  )");
  if (!db.ok()) {
    std::printf("database error: %s\n", db.error().c_str());
    return 1;
  }
  std::printf("database has %zu facts in %zu blocks, %llu repairs\n\n",
              db->NumFacts(), db->NumBlocks(),
              static_cast<unsigned long long>(db->CountRepairs()));

  // 1. Classify CERTAINTY(q) via the attack graph (Theorem 4.3).
  AttackGraph graph(q.value());
  std::printf("attack graph: %s\n", graph.ToString().c_str());
  Classification cls = Classify(q.value());
  std::printf("classification: %s\n  (%s)\n\n", ToString(cls.cls).c_str(),
              cls.explanation.c_str());

  // 2. Build the consistent first-order rewriting (Lemma 6.1).
  Result<Rewriting> rw = RewriteCertain(q.value());
  if (rw.ok()) {
    std::printf("consistent first-order rewriting (size %zu -> %zu):\n  %s\n\n",
                rw->raw_size, rw->simplified_size,
                rw->formula->ToString().c_str());
    std::printf("as SQL:\n%s\n", ToSqlQuery(rw->formula).c_str());
  }

  // 3. Solve with every applicable method.
  for (SolverMethod m : {SolverMethod::kAuto, SolverMethod::kRewriting,
                         SolverMethod::kAlgorithm1, SolverMethod::kBacktracking,
                         SolverMethod::kNaive}) {
    Result<SolveReport> report = SolveCertainty(q.value(), db.value(), m);
    if (report.ok()) {
      std::printf("%-14s -> q is %scertain\n", ToString(m).c_str(),
                  report->certain ? "" : "NOT ");
    } else {
      std::printf("%-14s -> unavailable (%s)\n", ToString(m).c_str(),
                  report.error().c_str());
    }
  }
  return 0;
}
