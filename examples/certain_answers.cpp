// Non-Boolean queries: certain answers. The paper (Section 1) notes that
// free variables are handled by treating them as constants; this example
// asks "which persons CERTAINLY live in a town they were not born in?" on
// inconsistent poll data — i.e. the answer holds no matter how the key
// violations are repaired.

#include <cstdio>

#include "cqa/certainty/certain_answers.h"
#include "cqa/gen/poll.h"

int main() {
  using namespace cqa;

  // The query with p free: Lives(p|t), ¬Born(p|t).
  Query q = Query::MakeOrDie({
      Pos(Atom("Lives", 1, {Term::Var("p"), Term::Var("t")})),
      Neg(Atom("Born", 1, {Term::Var("p"), Term::Var("t")})),
  });
  std::printf("q(p) = %s  with p free\n\n", q.ToString().c_str());

  Rng rng(7);
  PollDbOptions opts;
  opts.num_persons = 10;
  opts.num_towns = 3;
  opts.inconsistency = 0.5;
  Database db = GeneratePollDatabase(opts, &rng);
  std::printf("poll data: %zu facts, %zu blocks (inconsistent: %s)\n\n",
              db.NumFacts(), db.NumBlocks(),
              db.IsConsistent() ? "no" : "yes");

  // Path 1: per-candidate solving through the auto-dispatched solver.
  Result<CertainAnswers> direct =
      ComputeCertainAnswers(q, {InternSymbol("p")}, db);
  if (!direct.ok()) {
    std::printf("error: %s\n", direct.error().c_str());
    return 1;
  }
  std::printf("certain answers (%zu of %zu candidates):\n",
              direct->answers.size(), direct->candidates);
  for (const Tuple& t : direct->answers) {
    std::printf("  %s\n", t[0].name().c_str());
  }

  // Path 2: one rewriting with p free, evaluated per candidate.
  Result<FoPtr> formula = RewriteCertainWithFree(q, {InternSymbol("p")});
  if (formula.ok()) {
    std::printf("\nthe p-parameterised rewriting:\n  %s\n",
                formula.value()->ToString().c_str());
    Result<CertainAnswers> via_rewriting =
        CertainAnswersByRewriting(q, {InternSymbol("p")}, db);
    std::printf("rewriting path agrees: %s\n",
                (via_rewriting.ok() &&
                 via_rewriting->answers == direct->answers)
                    ? "yes"
                    : "NO");
  }
  return 0;
}
