// cqa_cli — command-line front end for the library.
//
//   cqa_cli classify "R(x | y), not S(y | x)"
//   cqa_cli rewrite  "P(x | y), not N('c' | y)" [--raw]
//   cqa_cli sql      "P(x | y), not N('c' | y)"
//   cqa_cli dot      "R(x | y), not S(y | x)"
//   cqa_cli solve    "<query>" db.facts [--witness]
//                    [--method=auto|rewriting|algorithm1|backtracking|
//                     naive|matching-q1|sampling]
//                    [--timeout-ms=N] [--max-nodes=N] [--parallelism=N]
//   cqa_cli answers  "<query>" db.facts --free=x,y [--max-chunk=N]
//                    [--timeout-ms=N] [--max-nodes=N]
//   cqa_cli repairs  db.facts [--limit=N]
//   cqa_cli stats    db.facts
//   cqa_cli asp      "<query>" db.facts
//   cqa_cli evalfo   "<fo formula>" db.facts [--timeout-ms=N] [--max-nodes=N]
//   cqa_cli serve    db.facts [--jobs=FILE] [--workers=N] [--queue-cap=M]
//                    [--timeout-ms=T] [--retries=R] [--deadline-ms=S]
//                    [--drain-ms=D] [--max-nodes=K] [--method=...]
//                    [--cache-entries=E] [--no-cache] [--parallelism=N]
//   cqa_cli serve    [db.facts] --listen=HOST:PORT [--db=NAME=PATH ...]
//                    [--shard-workers=N | --workers=N] [--queue-cap=M]
//                    [--timeout-ms=T] [--retries=R]
//                    [--drain-ms=D] [--detach-drain-ms=D]
//                    [--max-connections=C] [--max-inflight=I]
//                    [--cache-entries=E] [--no-cache]
//                    [--isolation=auto|inproc|fork] [--max-rss-mb=M]
//                    [--kill-grace-ms=G] [--parallelism=N]
//                    [--journal-dir=PATH]
//                    [--journal-fsync=always|group|never]
//                    [--group-fsync-delay-ms=D] [--group-fsync-batch=B]
//                    [--snapshot-every-deltas=K] [--snapshot-every-bytes=J]
//                    [--delta-id-window=W] [--follow=HOST:PORT]
//   cqa_cli client   HOST:PORT [--jobs=FILE] [--db=NAME] [--timeout-ms=T]
//                    [--max-nodes=K] [--method=...] [--cache=default|bypass]
//                    [--isolation=auto|inproc|fork] [--wedge-after=N]
//                    [--crash-after=N] [--parallelism=N]
//                    [--health] [--stats]
//   cqa_cli client   HOST:PORT --answers=QUERY --free=x,y [--max-chunk=N]
//                    [--chunks=N] [--cursor-file=PATH] [--resume]
//                    [--db=NAME] [--timeout-ms=T] [--max-nodes=K]
//                    [--method=...] [--cache=default|bypass]
//   cqa_cli admin    HOST:PORT attach NAME FACTS_PATH
//   cqa_cli admin    HOST:PORT detach NAME
//   cqa_cli admin    HOST:PORT list
//   cqa_cli admin    HOST:PORT apply NAME DELTA_PATH [--delta-id=ID]
//   cqa_cli admin    HOST:PORT snapshot [NAME]
//   cqa_cli admin    HOST:PORT promote
//
// Exit codes: 0 certain / probably certain / success; 1 parse or input
// error; 2 usage; 3 resource budget exhausted; 4 cancelled; 5 not certain
// (resp. false, for evalfo).
//
// `--timeout-ms` and `--max-nodes` attach an execution governor: on `solve
// --method=auto` an exhausted exact solver degrades to Monte-Carlo sampling
// and reports a qualified verdict instead of failing.
//
// `--parallelism=N` (solve, both serve modes, client) runs exponential
// solves component-decomposed on a work-stealing pool of N threads (see
// docs/THEORY.md for the decomposition and its soundness conditions); the
// verdict is always identical to the sequential one, N=1 (the default) is
// the plain sequential path. On the daemon it sets the default; a client
// request overrides per frame.
//
// `serve --listen=HOST:PORT` runs the network daemon (src/cqa/serve/net/)
// instead of the batch driver: it prints `listening on HOST:PORT`, serves
// the framed JSON protocol documented in docs/SERVING.md, and drains
// gracefully on SIGINT/SIGTERM (exit 0 when everything drained, 4 when the
// drain deadline forced cancellations). `client` submits jobs to a running
// daemon — one query per line, as in batch serve mode — and exits with the
// same severity ranking; `--health` / `--stats` print one status frame.
// `client --answers=QUERY --free=x,y` opens an answer stream instead: the
// daemon replies with `answer_chunk` frames (at most `--max-chunk` tuples
// each, daemon default 64) and one `answer_done` terminal, and the chunks
// concatenate to exactly the one-shot `answers` output. `--cursor-file`
// saves the latest resume cursor after every chunk; `--chunks=N` hangs up
// after N chunks, and a later run with `--resume` continues from the saved
// cursor — against the same database epoch only: after an `admin apply`
// the stale cursor fails with a typed `stale-cursor` error and the stream
// must restart from position zero.
//
// `--isolation` picks where the daemon runs solves that leave the choice to
// it: `inproc` (default) on the worker thread, `fork` in a supervised child
// process with hard preemption, `auto` forking exactly the coNP-risk
// queries. `--max-rss-mb` caps a sandboxed child's memory growth and
// `--kill-grace-ms` bounds how long past its deadline a child may live
// before SIGKILL. The client-side `--isolation` pins the mode per request;
// `--wedge-after=N` / `--crash-after=N` inject a wedge or crash into the
// solve after N budget probes (containment drills against a live daemon).
//
// `serve --listen` with `--journal-dir=PATH` makes every attached database
// live-updatable with durability: `admin apply` deltas are journaled (and
// fsynced, unless `--journal-fsync=never`; `group` batches concurrent
// appends into one fsync, bounded by `--group-fsync-delay-ms` /
// `--group-fsync-batch`) before they are acknowledged, and a restarted
// daemon replays `<journal-dir>/<name>.journal` over the base facts file —
// recovering exactly the acknowledged deltas, truncating any torn tail a
// crash left behind. `--snapshot-every-deltas` / `--snapshot-every-bytes`
// compact automatically (`admin snapshot [NAME]` does it on demand):
// recovery then loads `<journal-dir>/<name>.snapshot` and replays only the
// journal tail, making restart time proportional to the tail, not history.
// `--follow=HOST:PORT` runs the daemon as a read-only warm standby of the
// primary at that address (writes get a typed `read-only` error); `admin
// promote` stops the replication stream and makes it writable. The delta file of `admin apply` holds
// one op per line: `+R(a, b)` inserts, `-R(a, b)` deletes (`|` also
// separates values; `--` comments and blank lines are skipped). Retrying
// the same delta id is safe — the daemon acks idempotently.
//
// `serve` runs the concurrent solve service (src/cqa/serve/) over a batch
// of newline-delimited solve jobs — one query per line, read from stdin or
// `--jobs=FILE` — against one database. `--timeout-ms` becomes the
// per-request budget, `--deadline-ms` a deadline for the whole service,
// `--retries` the per-request retry allowance (exponential backoff with
// jitter), and `--drain-ms` the graceful-shutdown drain deadline. A full
// queue applies backpressure to the reader (the driver resubmits with
// backoff rather than dropping jobs). Both serve modes keep a result cache
// keyed by (query, database fingerprint) — 4096 entries by default; size it
// with `--cache-entries=E` or turn it (and the workers' warm memo state)
// off with `--no-cache`. One result line `[i] <verdict>` is
// printed per job in completion order; aggregate `ServiceStats` go to
// stderr. Exit code: 1 if any job failed (parse/unsupported/internal),
// else 4 if any was cancelled, else 3 if any exhausted its budget without
// a verdict, else 0.
//
// Database files use the fact grammar of ParseFacts:
//   R(alice | bob), R(alice | george)
//   S(bob | alice)   -- comments allowed
// A database path of `-` reads from stdin (requires --jobs=FILE in serve
// mode, so the two streams do not collide).

#include <sys/stat.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cqa/answers/enumerator.h"
#include "cqa/attack/attack_graph.h"
#include "cqa/attack/classification.h"
#include "cqa/attack/dot.h"
#include "cqa/base/backoff.h"
#include "cqa/certainty/backtracking.h"
#include "cqa/certainty/certain_answers.h"
#include "cqa/certainty/solver.h"
#include "cqa/db/repairs.h"
#include "cqa/delta/delta.h"
#include "cqa/db/stats.h"
#include "cqa/export/asp.h"
#include "cqa/fo/eval.h"
#include "cqa/fo/fo_parser.h"
#include "cqa/fo/sql.h"
#include "cqa/base/signals.h"
#include "cqa/query/parser.h"
#include "cqa/rewriting/rewriter.h"
#include "cqa/serve/net/client.h"
#include "cqa/serve/net/daemon.h"
#include "cqa/serve/net/json.h"
#include "cqa/serve/net/protocol.h"
#include "cqa/serve/service.h"

namespace {

using namespace cqa;

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

// Maps a typed error to the documented exit code: 3 for resource
// exhaustion, 4 for cancellation, 1 for everything else.
int ExitCodeFor(ErrorCode code) {
  if (IsResourceExhaustion(code)) return 3;
  if (code == ErrorCode::kCancelled) return 4;
  return 1;
}

template <typename T>
int Fail(const Result<T>& r) {
  std::fprintf(stderr, "error: %s\n", r.error().c_str());
  return ExitCodeFor(r.code());
}

int Usage() {
  std::fprintf(stderr,
               "usage: cqa_cli <classify|rewrite|sql|dot|solve|answers|"
               "repairs|stats|asp|evalfo|serve|client|admin> ...\n"
               "(see the header of tools/cqa_cli.cc)\n");
  return 2;
}

Result<Query> LoadQuery(const char* text) { return ParseQuery(text); }

// Loads a fact database from a file, or from stdin when `path` is "-".
// Failures are typed: I/O problems (missing file, read error) are
// `kInternal` with the errno detail, malformed content is `kParse`; both
// name the offending path (and, for parse errors, the line).
Result<Database> LoadDatabase(const char* path) {
  std::string text;
  if (std::strcmp(path, "-") == 0) {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      return Result<Database>::Error(
          ErrorCode::kInternal, std::string("cannot open '") + path +
                                    "': " + std::strerror(errno));
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
      return Result<Database>::Error(
          ErrorCode::kInternal,
          std::string("I/O error reading '") + path + "'");
    }
    text = buffer.str();
  }
  Result<Database> db = Database::FromText(text);
  if (!db.ok()) {
    return Result<Database>::Error(
        db.code(), (std::strcmp(path, "-") == 0 ? "<stdin>" : path) +
                       (": " + db.error()));
  }
  return db;
}

std::string FlagValue(int argc, char** argv, const char* name) {
  std::string prefix = std::string(name) + "=";
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return "";
}

// Distinguishes "--flag=" (given, empty value) from an absent flag, which
// FlagValue alone cannot.
bool FlagGiven(int argc, char** argv, const char* name) {
  std::string prefix = std::string(name) + "=";
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return true;
    }
  }
  return false;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

// Builds an execution governor from --timeout-ms / --max-nodes. Returns
// false on a malformed value; `*used` says whether any limit was given.
bool ParseBudgetFlags(int argc, char** argv, Budget* budget, bool* used) {
  *used = false;
  if (FlagGiven(argc, argv, "--timeout-ms")) {
    uint64_t ms = 0;
    if (!ParseU64(FlagValue(argc, argv, "--timeout-ms"), &ms)) return false;
    budget->deadline =
        Budget::Clock::now() + std::chrono::milliseconds(ms);
    *used = true;
  }
  if (FlagGiven(argc, argv, "--max-nodes")) {
    uint64_t n = 0;
    if (!ParseU64(FlagValue(argc, argv, "--max-nodes"), &n)) return false;
    budget->max_steps = n;
    *used = true;
  }
  return true;
}

int CmdClassify(const Query& q) {
  AttackGraph graph(q);
  Classification c = Classify(q);
  std::printf("query:           %s\n", q.ToString().c_str());
  std::printf("weakly guarded:  %s\n", c.weakly_guarded ? "yes" : "no");
  std::printf("guarded:         %s\n", c.guarded ? "yes" : "no");
  std::printf("attack graph:    %s\n", graph.ToString().c_str());
  std::printf("acyclic:         %s\n", c.attack_graph_acyclic ? "yes" : "no");
  std::printf("CERTAINTY(q):    %s\n", ToString(c.cls).c_str());
  std::printf("why:             %s\n", c.explanation.c_str());
  return 0;
}

int CmdRewrite(const Query& q, bool raw) {
  Result<Rewriting> rw = RewriteCertain(q, {.simplify = !raw});
  if (!rw.ok()) return Fail(rw.error());
  std::printf("%s\n", rw->formula->ToString().c_str());
  std::fprintf(stderr, "-- size %zu (raw %zu), %d elimination levels\n",
               rw->simplified_size, rw->raw_size, rw->levels);
  return 0;
}

int CmdSql(const Query& q) {
  Result<Rewriting> rw = RewriteCertain(q);
  if (!rw.ok()) return Fail(rw.error());
  Schema schema;
  Result<bool> reg = q.RegisterInto(&schema);
  if (!reg.ok()) return Fail(reg.error());
  std::printf("%s\n%s\n%s\n", SchemaDdl(schema).c_str(),
              AdomViewDdl(schema).c_str(), ToSqlQuery(rw->formula).c_str());
  return 0;
}

int CmdDot(const Query& q) {
  AttackGraph graph(q);
  std::printf("%s", AttackGraphToDot(graph).c_str());
  return 0;
}

// Maps a --method= value onto SolverMethod; false on an unknown name.
// The name table itself lives in the wire protocol (ParseSolverMethod) so
// the CLI and the daemon always accept the same spellings.
bool ParseMethod(const std::string& method, SolverMethod* out) {
  Result<SolverMethod> m = ParseSolverMethod(method);
  if (!m.ok()) return false;
  *out = *m;
  return true;
}

int CmdSolve(const Query& q, const Database& db, const std::string& method,
             bool want_witness, Budget* budget, int parallelism) {
  SolverMethod m = SolverMethod::kAuto;
  if (!ParseMethod(method, &m)) {
    return Fail("unknown method '" + method + "'");
  }
  SolveOptions options;
  options.method = m;
  options.budget = budget;
  options.parallelism = parallelism;
  Result<SolveReport> report = SolveCertainty(q, db, options);
  if (!report.ok()) return Fail(report);
  switch (report->verdict) {
    case Verdict::kCertain:
      std::printf("certain\n");
      break;
    case Verdict::kNotCertain:
      std::printf("not certain\n");
      break;
    case Verdict::kProbablyCertain:
      std::printf("probably certain (confidence %.4f after %llu samples)\n",
                  report->confidence,
                  static_cast<unsigned long long>(report->samples));
      break;
    case Verdict::kExhausted:
      std::printf("exhausted (budget ran out before any evidence)\n");
      break;
  }
  if (want_witness && report->verdict == Verdict::kNotCertain) {
    Result<std::optional<Database>> witness = FindFalsifyingRepair(q, db);
    if (witness.ok() && witness->has_value()) {
      std::printf("-- a falsifying repair:\n%s", (*witness)->ToText().c_str());
    }
  }
  std::fprintf(stderr, "-- solved with %s; classification: %s\n",
               ToString(report->used).c_str(),
               ToString(report->classification.cls).c_str());
  if (report->components > 0) {
    std::fprintf(stderr,
                 "-- parallel: %d components on %d workers, %llu steals\n",
                 report->components, report->parallelism,
                 static_cast<unsigned long long>(report->steals));
  }
  for (const SolveStage& stage : report->stages) {
    std::fprintf(stderr, "-- stage %s: %s, %llu steps, %lld us%s%s\n",
                 ToString(stage.method).c_str(), stage.ok ? "ok" : "failed",
                 static_cast<unsigned long long>(stage.steps),
                 static_cast<long long>(stage.elapsed.count()),
                 stage.error.has_value() ? ", " : "",
                 stage.error.has_value() ? ToString(*stage.error) : "");
  }
  switch (report->verdict) {
    case Verdict::kCertain:
    case Verdict::kProbablyCertain:
      return 0;
    case Verdict::kExhausted:
      return 3;
    case Verdict::kNotCertain:
      break;
  }
  return 5;
}

int CmdAnswers(const Query& q, const Database& db, const std::string& free,
               uint64_t max_chunk, Budget* budget) {
  std::vector<Symbol> vars;
  std::string current;
  for (char c : free + ",") {
    if (c == ',') {
      if (!current.empty()) vars.push_back(InternSymbol(current));
      current.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      current += c;
    }
  }
  if (vars.empty()) return Fail("--free= lists no variables");
  if (max_chunk == 0) {
    Result<CertainAnswers> answers =
        ComputeCertainAnswers(q, vars, db, budget);
    if (!answers.ok()) return Fail(answers);
    for (const Tuple& t : answers->answers) {
      std::printf("%s\n", TupleToString(t).c_str());
    }
    std::fprintf(stderr, "-- %zu certain answers out of %zu candidates\n",
                 answers->answers.size(), answers->candidates);
    return 0;
  }
  // Chunked path: drive the resumable enumerator max_chunk answers at a
  // time, exactly as the daemon's answers streams do. The concatenation of
  // the chunks is the one-shot output above, byte for byte.
  EnumerateOptions opts;
  opts.max_chunk = max_chunk;
  uint64_t printed = 0, chunks = 0, candidates = 0;
  for (;;) {
    Result<AnswerChunk> chunk =
        EnumerateAnswerChunk(q, vars, db, opts, budget);
    if (!chunk.ok()) return Fail(chunk);
    for (const Tuple& t : chunk->answers) {
      std::printf("%s\n", TupleToString(t).c_str());
    }
    printed += chunk->answers.size();
    ++chunks;
    candidates = chunk->total;
    if (chunk->exhausted) {
      std::fprintf(stderr,
                   "-- budget exhausted at candidate %llu of %llu after "
                   "%llu answers\n",
                   static_cast<unsigned long long>(chunk->next),
                   static_cast<unsigned long long>(candidates),
                   static_cast<unsigned long long>(printed));
      return 3;
    }
    if (chunk->done) break;
    opts.start = chunk->next;
  }
  std::fprintf(stderr,
               "-- %llu certain answers out of %llu candidates in %llu "
               "chunks\n",
               static_cast<unsigned long long>(printed),
               static_cast<unsigned long long>(candidates),
               static_cast<unsigned long long>(chunks));
  return 0;
}

int CmdStats(const Database& db) {
  std::printf("total: %s\n", ComputeStats(db).ToString().c_str());
  for (const auto& [relation, stats] : ComputeStatsPerRelation(db)) {
    std::printf("%-12s %s\n", relation.c_str(), stats.ToString().c_str());
  }
  Database core = CertainFacts(db);
  std::printf("facts in every repair: %zu\n", core.NumFacts());
  return 0;
}

int CmdAsp(const Query& q, const Database& db) {
  Result<std::string> program = ToAspProgram(q, db);
  if (!program.ok()) return Fail(program.error());
  std::printf("%s", program->c_str());
  return 0;
}

int CmdEvalFo(const char* text, const Database& db, Budget* budget) {
  Result<FoPtr> f = ParseFo(text);
  if (!f.ok()) return Fail(f);
  if (!(*f)->FreeVars().empty()) {
    return Fail("formula has free variables: " +
                (*f)->FreeVars().ToString());
  }
  Result<bool> holds = EvalFoGoverned(f.value(), db, budget);
  if (!holds.ok()) return Fail(holds);
  std::printf("%s\n", holds.value() ? "true" : "false");
  return holds.value() ? 0 : 5;
}

int CmdRepairs(const Database& db, uint64_t limit) {
  std::printf("facts: %zu, blocks: %zu, consistent: %s, repairs: %llu%s\n",
              db.NumFacts(), db.NumBlocks(),
              db.IsConsistent() ? "yes" : "no",
              static_cast<unsigned long long>(db.CountRepairs(1u << 30)),
              db.CountRepairs(1u << 30) >= (1u << 30) ? "+" : "");
  uint64_t shown = 0;
  ForEachRepair(db, [&](const Repair& r) {
    std::printf("--- repair %llu\n%s",
                static_cast<unsigned long long>(++shown),
                r.ToString().c_str());
    return shown < limit;
  });
  return 0;
}

int ServeSeverityRank(int exit_code);
std::string TrimCopy(const std::string& s);

// Splits "HOST:PORT" (or a bare "PORT", defaulting the host) and parses
// the port. False on malformed input.
bool ParseHostPort(const std::string& addr, std::string* host,
                   uint16_t* port) {
  std::string port_text = addr;
  size_t colon = addr.rfind(':');
  if (colon != std::string::npos) {
    *host = addr.substr(0, colon);
    port_text = addr.substr(colon + 1);
  } else {
    *host = "127.0.0.1";
  }
  if (host->empty()) *host = "127.0.0.1";
  uint64_t p = 0;
  if (!ParseU64(port_text, &p) || p > 65'535) return false;
  *port = static_cast<uint16_t>(p);
  return true;
}

// serve --listen: run the network daemon until SIGINT/SIGTERM, then drain.
// Databases come from the positional path (attached under the registry
// name "default") and/or repeatable --db=NAME=PATH flags; the first
// attached database is the registry default for solve frames without a
// "db" field.
int CmdServeDaemon(int argc, char** argv, const char* db_path) {
  std::string listen = FlagValue(argc, argv, "--listen");
  DaemonOptions dopts;
  if (!ParseHostPort(listen, &dopts.host, &dopts.port)) {
    return Fail("malformed --listen address '" + listen + "'");
  }

  // The positional database path is optional once --db flags name the
  // instances (main passes the first non-command argv either way).
  const bool have_positional =
      db_path != nullptr && std::strncmp(db_path, "--", 2) != 0;
  std::vector<std::pair<std::string, std::string>> db_specs;  // name, path
  if (have_positional) {
    db_specs.emplace_back(SolveDaemon::kDefaultDbName, db_path);
  }
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--db=", 5) != 0) continue;
    std::string spec = argv[i] + 5;
    size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
      return Fail("malformed --db spec '" + spec + "' (want --db=NAME=PATH)");
    }
    db_specs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
  }
  // A follower may start empty: its databases arrive from the primary's
  // replication stream.
  if (db_specs.empty() && !FlagGiven(argc, argv, "--follow")) {
    return Fail(
        "serve --listen needs a database: a positional path or --db=NAME=PATH");
  }

  struct {
    const char* name;
    uint64_t value;
  } flags[] = {
      {"--workers", 4},          {"--queue-cap", 64},
      {"--timeout-ms", 0},       {"--retries", 0},
      {"--drain-ms", 5'000},     {"--max-connections", 256},
      {"--max-inflight", 16},    {"--idle-timeout-ms", 300'000},
      {"--cache-entries", 4'096}, {"--shard-workers", 4},
      {"--detach-drain-ms", 5'000}, {"--max-rss-mb", 0},
      {"--kill-grace-ms", 500},     {"--snapshot-every-deltas", 0},
      {"--snapshot-every-bytes", 0}, {"--delta-id-window", 4'096},
      {"--group-fsync-delay-ms", 5}, {"--group-fsync-batch", 64},
      {"--parallelism", 1},
  };
  for (auto& flag : flags) {
    if (FlagGiven(argc, argv, flag.name) &&
        !ParseU64(FlagValue(argc, argv, flag.name), &flag.value)) {
      return Fail(std::string("malformed ") + flag.name + " value");
    }
  }
  dopts.service.workers = static_cast<int>(flags[0].value);
  // --shard-workers is the multi-database spelling of the same knob (every
  // attached database gets its own worker pool of this size); when both
  // are given the shard spelling wins.
  if (FlagGiven(argc, argv, "--shard-workers")) {
    dopts.service.workers = static_cast<int>(flags[9].value);
  }
  dopts.service.queue_capacity = flags[1].value;
  dopts.service.default_timeout = std::chrono::milliseconds(flags[2].value);
  dopts.service.max_retries = static_cast<int>(flags[3].value);
  dopts.max_connections = flags[5].value;
  dopts.connection.max_inflight = flags[6].value;
  dopts.connection.idle_timeout = std::chrono::milliseconds(flags[7].value);
  dopts.detach_drain = std::chrono::milliseconds(flags[10].value);
  // Sandbox policy: --isolation=inproc|fork|auto picks where solves run
  // when the request leaves it to the daemon ("auto" escalates coNP-risk
  // queries to a fork); --max-rss-mb and --kill-grace-ms are the hard
  // limits every sandboxed solve runs under.
  if (FlagGiven(argc, argv, "--isolation")) {
    std::optional<IsolationMode> mode =
        ParseIsolationMode(FlagValue(argc, argv, "--isolation"));
    if (!mode.has_value()) {
      return Fail("malformed --isolation value (want auto|inproc|fork)");
    }
    dopts.service.isolation = *mode;
  }
  dopts.service.sandbox.max_rss_mb = flags[11].value;
  dopts.service.sandbox.kill_grace = std::chrono::milliseconds(flags[12].value);
  // Default pool width for component-decomposed solving; requests override
  // per frame with "parallelism": N.
  dopts.service.parallelism =
      static_cast<int>(std::min<uint64_t>(std::max<uint64_t>(flags[18].value,
                                                             1),
                                          64));
  // Caching is on by default for the daemon (the library default is off);
  // --no-cache disables both the result cache and worker warm state.
  const bool no_cache = HasFlag(argc, argv, "--no-cache");
  dopts.service.cache_entries = no_cache ? 0 : flags[8].value;
  dopts.service.warm_state = !no_cache;
  // Durability: --journal-dir enables the per-database write-ahead delta
  // journal (replayed on attach); --journal-fsync trades crash safety for
  // apply latency.
  dopts.journal_dir = FlagValue(argc, argv, "--journal-dir");
  if (!dopts.journal_dir.empty()) {
    if (::mkdir(dopts.journal_dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return Fail("cannot create --journal-dir '" + dopts.journal_dir +
                  "': " + std::strerror(errno));
    }
  }
  std::string journal_fsync = FlagValue(argc, argv, "--journal-fsync");
  if (!journal_fsync.empty()) {
    if (journal_fsync == "always") {
      dopts.journal.fsync = FsyncPolicy::kAlways;
    } else if (journal_fsync == "group") {
      dopts.journal.fsync = FsyncPolicy::kGroup;
    } else if (journal_fsync == "never") {
      dopts.journal.fsync = FsyncPolicy::kNever;
    } else {
      return Fail("--journal-fsync must be 'always', 'group' or 'never'");
    }
  }
  dopts.journal.group_max_delay = std::chrono::milliseconds(flags[16].value);
  dopts.journal.group_max_batch = flags[17].value;
  // Compaction: snapshot every N acked deltas / J journal bytes (0 = only
  // on `admin snapshot`); the idempotency window rides along in snapshots.
  dopts.snapshot.every_deltas = flags[13].value;
  dopts.snapshot.every_journal_bytes = flags[14].value;
  dopts.delta_id_window = flags[15].value;
  // Warm standby: --follow=HOST:PORT starts this daemon read-only,
  // streaming the primary's databases; `admin promote` flips it writable.
  std::string follow = FlagValue(argc, argv, "--follow");
  if (!follow.empty() &&
      !ParseHostPort(follow, &dopts.follow_host, &dopts.follow_port)) {
    return Fail("malformed --follow address '" + follow + "'");
  }

  // Install the latch before accepting work so a signal arriving during
  // startup still drains instead of killing the process.
  SignalDrainLatch latch;
  SolveDaemon daemon(dopts);
  for (const auto& [name, path] : db_specs) {
    Result<Database> db = LoadDatabase(path.c_str());
    if (!db.ok()) return Fail(db);
    Result<DatabaseRegistry::Entry> attached = daemon.Attach(
        name, std::make_shared<const Database>(std::move(db.value())));
    if (!attached.ok()) return Fail(attached);
    std::fprintf(stderr, "-- attached '%s'%s: %zu facts, %zu blocks\n",
                 attached->name.c_str(),
                 attached->is_default ? " (default)" : "",
                 attached->db->NumFacts(), attached->db->NumBlocks());
  }
  Result<bool> started = daemon.Start();
  if (!started.ok()) return Fail(started);
  std::printf("listening on %s:%u\n", dopts.host.c_str(),
              static_cast<unsigned>(daemon.port()));
  std::fflush(stdout);

  while (!latch.Wait(std::chrono::milliseconds(250))) {
  }
  std::fprintf(stderr, "-- signal %d received: draining\n",
               latch.signal_number());
  bool drained = daemon.Shutdown(std::chrono::milliseconds(flags[4].value));
  std::fprintf(stderr, "-- serve: %s\n",
               daemon.service_stats().ToString().c_str());
  return drained ? 0 : 4;
}

// Exit code for one terminal wire response, using the same severity
// classes as batch serve mode.
int ClientExitCodeFor(const WireResponse& response) {
  if (response.type == "cancelled") return 4;
  if (response.type == "error") {
    if (response.code == "deadline-exceeded" ||
        response.code == "budget-exhausted") {
      return 3;
    }
    return response.code == "cancelled" ? 4 : 1;
  }
  return response.verdict == "exhausted" ? 3 : 0;
}

// client: submit newline-delimited queries to a running daemon.
int CmdClient(int argc, char** argv, const char* addr) {
  std::string host;
  uint16_t port = 0;
  if (!ParseHostPort(addr, &host, &port)) {
    return Fail(std::string("malformed address '") + addr + "'");
  }
  const auto io_timeout = std::chrono::milliseconds(10'000);
  NetClient client;
  Result<bool> connected = client.Connect(host, port, io_timeout);
  if (!connected.ok()) return Fail(connected);

  if (HasFlag(argc, argv, "--health") || HasFlag(argc, argv, "--stats")) {
    const bool health = HasFlag(argc, argv, "--health");
    JsonObjectBuilder req;
    req.Set("type", health ? "health" : "stats").Set("id", uint64_t{1});
    Result<bool> sent = client.SendFrame(req.Build().Serialize(), io_timeout);
    if (!sent.ok()) return Fail(sent);
    Result<WireResponse> resp = client.ReadResponse(io_timeout);
    if (!resp.ok()) return Fail(resp);
    std::printf("%s\n", resp->raw.Serialize().c_str());
    return health && resp->status != "serving" ? 4 : 0;
  }

  std::string jobs_path = FlagValue(argc, argv, "--jobs");
  std::ifstream jobs_file;
  std::istream* jobs = &std::cin;
  if (!jobs_path.empty()) {
    jobs_file.open(jobs_path);
    if (!jobs_file) {
      return Fail("cannot open jobs file '" + jobs_path + "': " +
                  std::strerror(errno));
    }
    jobs = &jobs_file;
  }
  uint64_t timeout_ms = 0, max_nodes = Budget::kNoStepLimit;
  if (FlagGiven(argc, argv, "--timeout-ms") &&
      !ParseU64(FlagValue(argc, argv, "--timeout-ms"), &timeout_ms)) {
    return Fail("malformed --timeout-ms value");
  }
  if (FlagGiven(argc, argv, "--max-nodes") &&
      !ParseU64(FlagValue(argc, argv, "--max-nodes"), &max_nodes)) {
    return Fail("malformed --max-nodes value");
  }
  std::string method = FlagValue(argc, argv, "--method");
  if (!ParseSolverMethod(method).ok()) {
    return Fail("unknown method '" + method + "'");
  }
  std::string cache = FlagValue(argc, argv, "--cache");
  if (!cache.empty() && cache != "default" && cache != "bypass") {
    return Fail("--cache must be 'default' or 'bypass'");
  }
  std::string isolation = FlagValue(argc, argv, "--isolation");
  if (!isolation.empty() && !ParseIsolationMode(isolation).has_value()) {
    return Fail("--isolation must be 'auto', 'inproc' or 'fork'");
  }
  // Chaos injection over the wire (CI sandbox smoke, manual containment
  // drills): forwarded verbatim as the solve frame's budget knobs. A
  // wedged or crashing solve under --isolation=fork demonstrates the
  // daemon's containment; inproc it takes the worker down with it.
  uint64_t wedge_after = 0, crash_after = 0;
  if (FlagGiven(argc, argv, "--wedge-after") &&
      !ParseU64(FlagValue(argc, argv, "--wedge-after"), &wedge_after)) {
    return Fail("malformed --wedge-after value");
  }
  if (FlagGiven(argc, argv, "--crash-after") &&
      !ParseU64(FlagValue(argc, argv, "--crash-after"), &crash_after)) {
    return Fail("malformed --crash-after value");
  }
  // Per-request pool width for component-decomposed solving (0 = daemon
  // default), forwarded as the frame's "parallelism" field.
  uint64_t parallelism = 0;
  if (FlagGiven(argc, argv, "--parallelism") &&
      (!ParseU64(FlagValue(argc, argv, "--parallelism"), &parallelism) ||
       parallelism > 64)) {
    return Fail("malformed --parallelism value (want 1..64)");
  }
  // Route every solve frame of this run to a named attached database;
  // without it the daemon's registry default answers.
  std::string db_name = FlagValue(argc, argv, "--db");

  // Streaming answers mode: one answers frame out, then answer_chunk
  // frames in until a terminal. `--cursor-file` persists the latest
  // resume cursor after every chunk, so `--chunks=N` (stop reading and
  // hang up after N chunks) plus a later `--resume` run continues the
  // stream where this one left it.
  if (FlagGiven(argc, argv, "--answers")) {
    std::string query = FlagValue(argc, argv, "--answers");
    std::string free = FlagValue(argc, argv, "--free");
    if (query.empty()) return Fail("--answers= needs a query");
    if (free.empty()) return Fail("--answers needs --free=x,y");
    uint64_t max_chunk = 0, chunk_limit = 0;
    if (FlagGiven(argc, argv, "--max-chunk") &&
        !ParseU64(FlagValue(argc, argv, "--max-chunk"), &max_chunk)) {
      return Fail("malformed --max-chunk value");
    }
    if (FlagGiven(argc, argv, "--chunks") &&
        !ParseU64(FlagValue(argc, argv, "--chunks"), &chunk_limit)) {
      return Fail("malformed --chunks value");
    }
    std::string cursor_file = FlagValue(argc, argv, "--cursor-file");
    std::string cursor;
    if (HasFlag(argc, argv, "--resume")) {
      if (cursor_file.empty()) return Fail("--resume needs --cursor-file=PATH");
      std::ifstream in(cursor_file);
      if (!in) {
        return Fail("cannot open cursor file '" + cursor_file + "': " +
                    std::strerror(errno));
      }
      std::getline(in, cursor);
      cursor = TrimCopy(cursor);
      if (cursor.empty()) {
        return Fail("cursor file '" + cursor_file + "' is empty");
      }
    }
    Json::Array free_json;
    std::string name;
    for (char c : free + ",") {
      if (c == ',') {
        if (!name.empty()) free_json.push_back(Json::MakeString(name));
        name.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        name += c;
      }
    }
    if (free_json.empty()) return Fail("--free= lists no variables");
    JsonObjectBuilder req;
    req.Set("type", "answers").Set("id", uint64_t{1}).Set("query", query);
    req.Set("free", Json::MakeArray(std::move(free_json)));
    if (max_chunk > 0) req.Set("max_chunk", max_chunk);
    if (!cursor.empty()) req.Set("cursor", cursor);
    if (timeout_ms > 0) req.Set("timeout_ms", timeout_ms);
    if (max_nodes != Budget::kNoStepLimit) req.Set("max_steps", max_nodes);
    if (!method.empty()) req.Set("method", method);
    if (!cache.empty()) req.Set("cache", cache);
    if (!db_name.empty()) req.Set("db", db_name);
    Result<bool> sent = client.SendFrame(req.Build().Serialize(), io_timeout);
    if (!sent.ok()) return Fail(sent);
    uint64_t chunks_read = 0, tuples_read = 0;
    for (;;) {
      Result<WireResponse> resp = client.ReadResponse(io_timeout);
      if (!resp.ok()) return Fail(resp);
      if (resp->type == "answer_chunk") {
        for (const auto& tuple : resp->tuples) {
          std::string row;
          for (size_t i = 0; i < tuple.size(); ++i) {
            if (i > 0) row += ", ";
            row += tuple[i];
          }
          std::printf("(%s)\n", row.c_str());
        }
        tuples_read += resp->tuples.size();
        ++chunks_read;
        if (!cursor_file.empty() && !resp->cursor.empty()) {
          std::ofstream out(cursor_file, std::ios::trunc);
          out << resp->cursor << "\n";
          if (!out) {
            return Fail("cannot write cursor file '" + cursor_file + "'");
          }
        }
        if (chunk_limit > 0 && chunks_read >= chunk_limit) {
          // Hang up mid-stream: the daemon drops the stream with the
          // connection, and the cursor file carries the resume point.
          std::fprintf(
              stderr,
              "-- stopped after %llu chunks (%llu tuples); resume with "
              "--resume --cursor-file=%s\n",
              static_cast<unsigned long long>(chunks_read),
              static_cast<unsigned long long>(tuples_read),
              cursor_file.empty() ? "PATH" : cursor_file.c_str());
          return 0;
        }
        continue;
      }
      if (resp->type == "answer_done") {
        std::fprintf(stderr,
                     "-- %llu answers in %llu chunks (%llu us)\n",
                     static_cast<unsigned long long>(resp->answers),
                     static_cast<unsigned long long>(resp->chunks),
                     static_cast<unsigned long long>(resp->latency_us));
        return 0;
      }
      if (resp->type == "cancelled") {
        std::fprintf(stderr, "-- cancelled: %s\n", resp->message.c_str());
        return 4;
      }
      if (resp->type == "error") {
        std::fprintf(stderr, "-- error: %s (%s)\n", resp->message.c_str(),
                     resp->code.c_str());
        return ClientExitCodeFor(*resp);
      }
      return Fail("unexpected frame type '" + resp->type + "' mid-stream");
    }
  }

  // Pipeline all jobs, then collect a terminal frame for each; the daemon
  // answers in completion order, ids tie responses back to input lines.
  std::string line;
  uint64_t line_no = 0;
  size_t outstanding = 0;
  int worst = 0;
  auto record_outcome = [&](int exit_code) {
    if (ServeSeverityRank(exit_code) > ServeSeverityRank(worst)) {
      worst = exit_code;
    }
  };
  while (std::getline(*jobs, line)) {
    ++line_no;
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line.compare(first, 2, "--") == 0) {
      continue;
    }
    JsonObjectBuilder req;
    req.Set("type", "solve").Set("id", line_no).Set("query", line);
    if (timeout_ms > 0) req.Set("timeout_ms", timeout_ms);
    if (max_nodes != Budget::kNoStepLimit) req.Set("max_steps", max_nodes);
    if (!method.empty()) req.Set("method", method);
    if (!cache.empty()) req.Set("cache", cache);
    if (!isolation.empty()) req.Set("isolation", isolation);
    if (wedge_after > 0) req.Set("wedge_after_probes", wedge_after);
    if (crash_after > 0) req.Set("crash_after_probes", crash_after);
    if (parallelism > 0) req.Set("parallelism", parallelism);
    if (!db_name.empty()) req.Set("db", db_name);
    Result<bool> sent = client.SendFrame(req.Build().Serialize(), io_timeout);
    if (!sent.ok()) return Fail(sent);
    ++outstanding;
  }
  while (outstanding > 0) {
    Result<WireResponse> resp = client.ReadResponse(io_timeout);
    if (!resp.ok()) return Fail(resp);
    if (!IsTerminalResponseType(resp->type)) continue;
    --outstanding;
    unsigned long long n = resp->id;
    if (resp->type == "cancelled") {
      std::printf("[%llu] cancelled\n", n);
    } else if (resp->type == "error") {
      std::printf("[%llu] error: %s (%s)\n", n, resp->message.c_str(),
                  resp->code.c_str());
    } else if (resp->verdict == "probably-certain") {
      std::printf("[%llu] %s (confidence %.4f after %llu samples)\n", n,
                  resp->verdict.c_str(), resp->confidence,
                  static_cast<unsigned long long>(resp->samples));
    } else {
      std::printf("[%llu] %s\n", n, resp->verdict.c_str());
    }
    record_outcome(ClientExitCodeFor(*resp));
  }
  return worst;
}

// admin: registry management against a running daemon. The attach verb
// reads the facts file client-side and ships its text inline — the daemon
// never opens files on a client's behalf. Prints the daemon's ack (or
// error) frame verbatim.
std::string TrimCopy(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// Parses the delta grammar: one op per line, `+R(a, b)` inserts and
// `-R(a | b)` deletes (`,` and `|` both separate values — a delta names
// whole facts, so the key bar carries no meaning here). `--` comments and
// blank lines are skipped; values may be wrapped in single quotes.
Result<std::vector<DeltaOp>> ParseDeltaLines(const std::string& text) {
  using Out = Result<std::vector<DeltaOp>>;
  std::vector<DeltaOp> ops;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = raw;
    size_t comment = line.find("--");
    if (comment != std::string::npos) line.erase(comment);
    line = TrimCopy(line);
    if (line.empty()) continue;
    const std::string where = "delta line " + std::to_string(line_no);
    if (line[0] != '+' && line[0] != '-') {
      return Out::Error(ErrorCode::kParse,
                        where + ": ops start with '+' (insert) or '-' "
                                "(delete), got '" + line + "'");
    }
    DeltaOp op;
    op.insert = line[0] == '+';
    size_t open = line.find('(');
    if (open == std::string::npos || line.back() != ')') {
      return Out::Error(ErrorCode::kParse,
                        where + ": expected +Relation(v1, v2) or "
                                "-Relation(v1, v2)");
    }
    op.relation = TrimCopy(line.substr(1, open - 1));
    if (op.relation.empty()) {
      return Out::Error(ErrorCode::kParse, where + ": missing relation name");
    }
    std::string body = line.substr(open + 1, line.size() - open - 2);
    std::string value;
    for (char c : body + ",") {
      if (c != ',' && c != '|') {
        value += c;
        continue;
      }
      std::string v = TrimCopy(value);
      value.clear();
      if (v.size() >= 2 && v.front() == '\'' && v.back() == '\'') {
        v = v.substr(1, v.size() - 2);
      }
      if (v.empty()) {
        return Out::Error(ErrorCode::kParse, where + ": empty value");
      }
      op.values.push_back(std::move(v));
    }
    ops.push_back(std::move(op));
  }
  if (ops.empty()) {
    return Out::Error(ErrorCode::kParse, "delta has no ops");
  }
  return ops;
}

int CmdAdmin(int argc, char** argv) {
  if (argc < 4) {
    return Fail(
        "admin needs HOST:PORT and a verb "
        "(attach|detach|apply|list|snapshot|promote)");
  }
  std::string host;
  uint16_t port = 0;
  if (!ParseHostPort(argv[2], &host, &port)) {
    return Fail(std::string("malformed address '") + argv[2] + "'");
  }
  const std::string verb = argv[3];
  JsonObjectBuilder req;
  req.Set("id", uint64_t{1});
  if (verb == "attach") {
    if (argc < 6) return Fail("admin attach needs NAME and FACTS_PATH");
    std::string text;
    if (std::strcmp(argv[5], "-") == 0) {
      std::stringstream buffer;
      buffer << std::cin.rdbuf();
      text = buffer.str();
    } else {
      std::ifstream in(argv[5]);
      if (!in) {
        return Fail(std::string("cannot open '") + argv[5] +
                    "': " + std::strerror(errno));
      }
      std::stringstream buffer;
      buffer << in.rdbuf();
      if (in.bad()) {
        return Fail(std::string("I/O error reading '") + argv[5] + "'");
      }
      text = buffer.str();
    }
    req.Set("type", "attach").Set("name", argv[4]).Set("facts", text);
  } else if (verb == "detach") {
    if (argc < 5) return Fail("admin detach needs NAME");
    req.Set("type", "detach").Set("name", argv[4]);
  } else if (verb == "apply") {
    if (argc < 6) return Fail("admin apply needs NAME and DELTA_PATH");
    std::string text;
    if (std::strcmp(argv[5], "-") == 0) {
      std::stringstream buffer;
      buffer << std::cin.rdbuf();
      text = buffer.str();
    } else {
      std::ifstream in(argv[5]);
      if (!in) {
        return Fail(std::string("cannot open '") + argv[5] +
                    "': " + std::strerror(errno));
      }
      std::stringstream buffer;
      buffer << in.rdbuf();
      if (in.bad()) {
        return Fail(std::string("I/O error reading '") + argv[5] + "'");
      }
      text = buffer.str();
    }
    Result<std::vector<DeltaOp>> ops = ParseDeltaLines(text);
    if (!ops.ok()) return Fail(ops);
    std::string delta_id = FlagValue(argc, argv, "--delta-id");
    if (delta_id.empty()) {
      // Content-derived default: re-running the same file is an idempotent
      // re-ack at the daemon, not a double application.
      char buf[32];
      std::snprintf(buf, sizeof(buf), "cli-%016llx",
                    static_cast<unsigned long long>(
                        std::hash<std::string>{}(text)));
      delta_id = buf;
    }
    req.Set("type", "apply_delta").Set("db", argv[4]);
    req.Set("delta_id", delta_id).Set("ops", EncodeDeltaOps(ops.value()));
  } else if (verb == "list") {
    req.Set("type", "list");
  } else if (verb == "snapshot") {
    // Snapshot + compact one database (NAME given) or the default one.
    req.Set("type", "snapshot");
    if (argc >= 5 && std::strncmp(argv[4], "--", 2) != 0) {
      req.Set("db", argv[4]);
    }
  } else if (verb == "promote") {
    // Failover: flip a --follow standby into a writable primary.
    req.Set("type", "promote");
  } else {
    return Fail("unknown admin verb '" + verb +
                "' (want attach|detach|apply|list|snapshot|promote)");
  }

  // A detach ack only arrives after its shard drained, so the read budget
  // must cover the daemon's detach drain, not one round trip.
  const auto io_timeout = std::chrono::milliseconds(30'000);
  NetClient client;
  Result<bool> connected = client.Connect(host, port, io_timeout);
  if (!connected.ok()) return Fail(connected);
  Result<bool> sent = client.SendFrame(req.Build().Serialize(), io_timeout);
  if (!sent.ok()) return Fail(sent);
  Result<WireResponse> resp = client.ReadResponse(io_timeout);
  if (!resp.ok()) return Fail(resp);
  std::printf("%s\n", resp->raw.Serialize().c_str());
  return resp->type == "error" ? 1 : 0;
}

// Exit-severity ranks for serve mode, worst wins: ok < exhausted(3) <
// cancelled(4) < failed(1).
int ServeSeverityRank(int exit_code) {
  switch (exit_code) {
    case 0:
      return 0;
    case 3:
      return 1;
    case 4:
      return 2;
    default:
      return 3;
  }
}

int CmdServe(int argc, char** argv, const char* db_path) {
  if (FlagGiven(argc, argv, "--listen")) {
    return CmdServeDaemon(argc, argv, db_path);
  }
  std::string jobs_path = FlagValue(argc, argv, "--jobs");
  if (std::strcmp(db_path, "-") == 0 && jobs_path.empty()) {
    return Fail("serve: a database from stdin ('-') requires --jobs=FILE");
  }
  Result<Database> db = LoadDatabase(db_path);
  if (!db.ok()) return Fail(db);
  auto shared_db = std::make_shared<const Database>(std::move(db.value()));

  // Numeric flags (all optional).
  struct {
    const char* name;
    uint64_t value;
  } flags[] = {
      {"--workers", 4},         {"--queue-cap", 64}, {"--timeout-ms", 0},
      {"--retries", 0},         {"--deadline-ms", 0}, {"--drain-ms", 3'600'000},
      {"--max-nodes", Budget::kNoStepLimit},
      {"--cache-entries", 4'096}, {"--parallelism", 1},
  };
  for (auto& flag : flags) {
    if (FlagGiven(argc, argv, flag.name) &&
        !ParseU64(FlagValue(argc, argv, flag.name), &flag.value)) {
      return Fail(std::string("malformed ") + flag.name + " value");
    }
  }
  SolverMethod method = SolverMethod::kAuto;
  if (!ParseMethod(FlagValue(argc, argv, "--method"), &method)) {
    return Fail("unknown method '" + FlagValue(argc, argv, "--method") + "'");
  }

  ServiceOptions options;
  options.workers = static_cast<int>(flags[0].value);
  options.queue_capacity = flags[1].value;
  options.default_timeout = std::chrono::milliseconds(flags[2].value);
  options.max_retries = static_cast<int>(flags[3].value);
  if (flags[4].value > 0) {
    options.service_deadline =
        Budget::Clock::now() + std::chrono::milliseconds(flags[4].value);
  }
  // Batch serve defaults the cache on too: a jobs file with repeated or
  // alpha-equivalent queries collapses to one solve per equivalence class.
  const bool no_cache = HasFlag(argc, argv, "--no-cache");
  options.cache_entries = no_cache ? 0 : flags[7].value;
  options.warm_state = !no_cache;
  options.parallelism = static_cast<int>(
      std::min<uint64_t>(std::max<uint64_t>(flags[8].value, 1), 64));

  std::ifstream jobs_file;
  std::istream* jobs = &std::cin;
  if (!jobs_path.empty()) {
    jobs_file.open(jobs_path);
    if (!jobs_file) {
      return Fail("cannot open jobs file '" + jobs_path + "': " +
                  std::strerror(errno));
    }
    jobs = &jobs_file;
  }

  SolveService service(options);
  std::mutex out_mu;
  int worst = 0;  // guarded by out_mu
  auto record_outcome = [&](int exit_code) {
    if (ServeSeverityRank(exit_code) > ServeSeverityRank(worst)) {
      worst = exit_code;
    }
  };

  BackoffPolicy admission_backoff;
  Rng admission_rng(1);
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(*jobs, line)) {
    ++line_no;
    // Skip blanks and comment lines (same `--` convention as fact files).
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line.compare(first, 2, "--") == 0) {
      continue;
    }
    Result<Query> q = ParseQuery(line);
    if (!q.ok()) {
      std::lock_guard<std::mutex> lock(out_mu);
      std::printf("[%llu] error: %s (parse)\n",
                  static_cast<unsigned long long>(line_no),
                  q.error().c_str());
      record_outcome(1);
      continue;
    }
    ServeJob job(std::move(q.value()), shared_db);
    job.method = method;
    job.max_steps = flags[6].value;
    uint64_t job_line = line_no;
    auto callback = [&, job_line](const ServeResponse& response) {
      std::lock_guard<std::mutex> lock(out_mu);
      unsigned long long n = job_line;
      if (response.state == RequestState::kCancelled) {
        std::printf("[%llu] cancelled\n", n);
        record_outcome(4);
      } else if (!response.result.ok()) {
        std::printf("[%llu] error: %s (%s)\n", n,
                    response.result.error().c_str(),
                    ToString(response.result.code()));
        record_outcome(ExitCodeFor(response.result.code()));
      } else {
        const SolveReport& report = *response.result;
        switch (report.verdict) {
          case Verdict::kCertain:
            std::printf("[%llu] certain\n", n);
            break;
          case Verdict::kNotCertain:
            std::printf("[%llu] not certain\n", n);
            break;
          case Verdict::kProbablyCertain:
            std::printf("[%llu] probably certain (confidence %.4f after "
                        "%llu samples)\n",
                        n, report.confidence,
                        static_cast<unsigned long long>(report.samples));
            break;
          case Verdict::kExhausted:
            std::printf("[%llu] exhausted\n", n);
            record_outcome(3);
            break;
        }
      }
    };
    // Admission control with backpressure: a full queue makes the reader
    // wait (backoff with jitter) and resubmit instead of dropping the job.
    for (int attempt = 1;; ++attempt) {
      Result<uint64_t> id = service.Submit(job, callback);
      if (id.ok()) break;
      if (id.code() != ErrorCode::kOverloaded || attempt >= 10'000) {
        std::lock_guard<std::mutex> lock(out_mu);
        std::printf("[%llu] error: %s (%s)\n",
                    static_cast<unsigned long long>(job_line),
                    id.error().c_str(), ToString(id.code()));
        record_outcome(ExitCodeFor(id.code()));
        break;
      }
      std::this_thread::sleep_for(
          admission_backoff.DelayFor(std::min(attempt, 8), &admission_rng));
    }
  }

  service.Shutdown(std::chrono::milliseconds(flags[5].value));
  std::fflush(stdout);
  std::fprintf(stderr, "-- serve: %s\n",
               service.Stats().ToString().c_str());
  std::lock_guard<std::mutex> lock(out_mu);
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];

  Budget budget_storage;
  bool governed = false;
  if (!ParseBudgetFlags(argc, argv, &budget_storage, &governed)) {
    return Fail("malformed --timeout-ms or --max-nodes value");
  }
  Budget* budget = governed ? &budget_storage : nullptr;

  if (cmd == "serve") {
    if (argc < 3) return Usage();
    return CmdServe(argc, argv, argv[2]);
  }
  if (cmd == "client") {
    if (argc < 3) return Usage();
    return CmdClient(argc, argv, argv[2]);
  }
  if (cmd == "admin") {
    return CmdAdmin(argc, argv);
  }

  if (cmd == "repairs" || cmd == "stats") {
    if (argc < 3) return Usage();
    Result<Database> db = LoadDatabase(argv[2]);
    if (!db.ok()) return Fail(db.error());
    if (cmd == "stats") return CmdStats(db.value());
    std::string limit = FlagValue(argc, argv, "--limit");
    return CmdRepairs(db.value(),
                      limit.empty() ? 8 : std::stoull(limit));
  }

  if (cmd == "evalfo") {
    if (argc < 4) return Usage();
    Result<Database> db = LoadDatabase(argv[3]);
    if (!db.ok()) return Fail(db.error());
    return CmdEvalFo(argv[2], db.value(), budget);
  }

  if (argc < 3) return Usage();
  Result<Query> q = LoadQuery(argv[2]);
  if (!q.ok()) return Fail(q.error());

  if (cmd == "classify") return CmdClassify(q.value());
  if (cmd == "rewrite") {
    return CmdRewrite(q.value(), HasFlag(argc, argv, "--raw"));
  }
  if (cmd == "sql") return CmdSql(q.value());
  if (cmd == "dot") return CmdDot(q.value());

  if (argc < 4) return Usage();
  Result<Database> db = LoadDatabase(argv[3]);
  if (!db.ok()) return Fail(db.error());

  if (cmd == "solve") {
    uint64_t parallelism = 1;
    if (FlagGiven(argc, argv, "--parallelism") &&
        (!ParseU64(FlagValue(argc, argv, "--parallelism"), &parallelism) ||
         parallelism == 0 || parallelism > 64)) {
      return Fail("malformed --parallelism value (want 1..64)");
    }
    return CmdSolve(q.value(), db.value(), FlagValue(argc, argv, "--method"),
                    HasFlag(argc, argv, "--witness"), budget,
                    static_cast<int>(parallelism));
  }
  if (cmd == "answers") {
    uint64_t max_chunk = 0;
    if (FlagGiven(argc, argv, "--max-chunk") &&
        !ParseU64(FlagValue(argc, argv, "--max-chunk"), &max_chunk)) {
      return Fail("malformed --max-chunk value");
    }
    return CmdAnswers(q.value(), db.value(), FlagValue(argc, argv, "--free"),
                      max_chunk, budget);
  }
  if (cmd == "asp") return CmdAsp(q.value(), db.value());
  return Usage();
}
