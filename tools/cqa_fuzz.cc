// cqa_fuzz — randomized differential tester. Runs forever-ish (bounded by
// --rounds), generating random weakly-guarded queries and random databases
// and cross-checking every applicable solver against the repair-enumeration
// oracle, plus the two FO evaluation engines against each other. Also fuzzes
// the fact/query/FO parsers with mutated and garbage inputs (--parse-rounds)
// and evaluates whatever parses under a tight execution budget, asserting
// that only typed errors ever escape (kParse from the parsers; resource
// codes from governed evaluation). A third phase (--wire-rounds) throws
// random, mutated, truncated and oversized byte streams at the daemon's
// wire stack — FrameDecoder, Json::Parse, DecodeRequest, DecodeResponse —
// asserting frames fail with typed kParse/kUnsupported errors and the
// decoder's overflow latch engages exactly at its cap. A fourth phase
// (--cache-rounds) fuzzes the result-cache key scheme and a deliberately
// tiny ResultCache: alpha-renamed random queries must collide on one cache
// slot, constant-perturbed ones must not, and under constant eviction
// pressure a lookup may only ever return a report previously inserted
// under exactly that key. A fifth phase (--journal-rounds) feeds random
// concatenations of intact, CRC-corrupted, bit-flipped, truncated and
// garbage delta-journal records to ParseJournalBytes, asserting the
// decoder always yields a clean valid prefix and never crashes. A cursor
// phase (--cursor-rounds) attacks the opaque answer-stream resume cursor:
// random round trips must be lossless, and mutated, truncated, case-
// flipped or garbage cursor bytes must either fail with a typed kParse or
// decode to exactly the bytes that re-encode to the same spelling — a
// hostile cursor can be refused, never crash the decoder or silently
// resume at a different position. A sixth
// phase (--parallel-rounds) chains random fact deltas into fresh epochs
// (ApplyDeltaToDatabase) and, on every epoch, (a) cross-checks the
// decompose-then-solve parallel path against the direct sequential solve
// — verdicts must be identical — and (b) asserts the epoch's memoized
// value-connected component partition equals that of a from-scratch
// reparse of the same facts, so an incremental mutation can never leave
// stale component metadata behind. Exits non-zero and prints a reproducer
// on the first violation.
//
//   cqa_fuzz [--seed=N] [--rounds=N] [--dbs-per-query=N] [--parse-rounds=N]
//            [--wire-rounds=N] [--cache-rounds=N] [--journal-rounds=N]
//            [--cursor-rounds=N] [--parallel-rounds=N]

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cqa/answers/answer_chunk.h"
#include "cqa/answers/cursor.h"
#include "cqa/base/crc32c.h"
#include "cqa/cqa.h"
#include "cqa/delta/delta.h"
#include "cqa/delta/journal.h"
#include "cqa/parallel/decompose.h"
#include "cqa/parallel/parallel_solver.h"
#include "cqa/serve/net/framing.h"
#include "cqa/serve/net/json.h"
#include "cqa/serve/net/protocol.h"

namespace {

using namespace cqa;

uint64_t FlagOr(int argc, char** argv, const char* name, uint64_t fallback) {
  std::string prefix = std::string(name) + "=";
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::stoull(argv[i] + prefix.size());
    }
  }
  return fallback;
}

int Reproducer(const Query& q, const Database& db, const char* what) {
  std::printf("DISAGREEMENT (%s)\nquery: %s\ndatabase:\n%s\n", what,
              q.ToString().c_str(), db.ToString().c_str());
  return 1;
}

int BadInput(const std::string& input, const char* what) {
  std::printf("PARSER VIOLATION (%s)\ninput: %s\n", what, input.c_str());
  return 1;
}

// Seed corpus for the parser fuzz: valid spellings whose mutations stay
// near the interesting parts of the grammars.
const char* const kFactCorpus[] = {
    "R(a | b), R(a | c)\nS(b | a)",
    "R('quo''ted' | b)",
    "Edge(1, 2 | 3)  -- comment\nEdge(2, 3 | 4)",
};
const char* const kQueryCorpus[] = {
    "R(x | y), not S(y | x)",
    "P(x | y), not N('c' | y), x != y",
    "C0(x0 | x1), C1(x1 | x0)",
};
const char* const kFoCorpus[] = {
    "exists x y. R(x | y) & !S(y | x)",
    "forall x. (R(x | x) -> exists y. S(x | y))",
    "exists x. R(x | x) | 'a' != 'b'",
};

std::string Mutate(const std::string& base, Rng* rng) {
  std::string s = base;
  int edits = static_cast<int>(rng->Below(4)) + 1;
  const char kGrammarChars[] = "(),|!&'.= \nRSxy123notexistsforall";
  for (int e = 0; e < edits && !s.empty(); ++e) {
    size_t pos = rng->Below(s.size());
    switch (rng->Below(3)) {
      case 0:  // flip
        s[pos] = kGrammarChars[rng->Below(sizeof(kGrammarChars) - 1)];
        break;
      case 1:  // insert
        s.insert(pos, 1, kGrammarChars[rng->Below(sizeof(kGrammarChars) - 1)]);
        break;
      default:  // truncate
        s.resize(pos);
        break;
    }
  }
  return s;
}

std::string Garbage(Rng* rng) {
  std::string s;
  size_t len = rng->Below(64);
  for (size_t i = 0; i < len; ++i) {
    s += static_cast<char>(rng->Below(96) + 32);
  }
  return s;
}

// True iff `code` is one the governed evaluator is allowed to produce.
bool IsResourceCode(ErrorCode code) {
  return IsResourceExhaustion(code) || code == ErrorCode::kCancelled;
}

// One parser-fuzz input: the parsers must either accept or fail with
// kParse (never hang, never return another code); formulas that do parse
// are evaluated under a tight step budget, whose failures must be typed
// resource errors.
int CheckParsers(const std::string& input, const Database& db) {
  Result<std::vector<ParsedFact>> facts = ParseFacts(input);
  if (!facts.ok() && facts.code() != ErrorCode::kParse) {
    return BadInput(input, "ParseFacts returned a non-parse error");
  }
  Result<Query> q = ParseQuery(input);
  if (!q.ok() && q.code() != ErrorCode::kParse) {
    return BadInput(input, "ParseQuery returned a non-parse error");
  }
  Result<FoPtr> f = ParseFo(input);
  if (!f.ok()) {
    if (f.code() != ErrorCode::kParse) {
      return BadInput(input, "ParseFo returned a non-parse error");
    }
    return 0;
  }
  if (!(*f)->FreeVars().empty()) return 0;
  Budget tight = Budget::WithMaxSteps(64);
  Result<bool> holds = EvalFoGoverned(f.value(), db, &tight);
  if (!holds.ok() && !IsResourceCode(holds.code())) {
    return BadInput(input, "governed eval escaped with a non-resource error");
  }
  return 0;
}

// Seed corpus for the wire fuzz: one valid spelling of every request type
// plus daemon-encoded responses, so mutations explore the near-valid
// neighborhood of both directions of the protocol.
std::vector<std::string> WireCorpus() {
  std::vector<std::string> corpus = {
      R"js({"type":"solve","id":1,"query":"R(x | y), not S(y | x)"})js",
      R"js({"type":"solve","id":2,"query":"R(x | y)","timeout_ms":50,)js"
      R"js("max_steps":100,"method":"backtracking","max_samples":10,)js"
      R"js("degrade_to_sampling":false,"deadline_from_submit":true,)js"
      R"js("cache":"default"})js",
      R"js({"type":"solve","id":11,"query":"R(x | y)","cache":"bypass"})js",
      R"js({"type":"solve","id":20,"query":"R(x | y), not S(y | x)",)js"
      R"js("isolation":"fork","timeout_ms":100})js",
      R"js({"type":"solve","id":21,"query":"R(x | y)","isolation":"inproc",)js"
      R"js("crash_after_probes":5,"hog_mb_per_probe":1,)js"
      R"js("wedge_after_probes":7})js",
      R"js({"type":"solve","id":22,"query":"R(x | y)","isolation":"auto"})js",
      R"js({"type":"health","id":3})js",
      R"js({"type":"stats","id":4})js",
      R"js({"type":"cancel","id":5,"target":1})js",
      R"js({"type":"solve","id":12,"query":"R(x | y)","db":"replica"})js",
      R"js({"type":"cancel","id":13,"target":2,"db":"replica"})js",
      R"js({"type":"attach","id":14,"name":"replica",)js"
      R"js("facts":"R(a | b)\nS(b | a)"})js",
      R"js({"type":"detach","id":15,"name":"replica"})js",
      R"js({"type":"list","id":16})js",
      // apply_delta: a valid frame, a duplicate-id retry of it, an unknown
      // relation, an arity mismatch, and malformed ops shapes. All must
      // decode (validation against a schema is the service's job, not the
      // codec's) or fail with typed kParse — mutation explores the rest.
      R"js({"type":"apply_delta","id":23,"db":"replica","delta_id":"d1",)js"
      R"js("ops":[{"op":"insert","relation":"R","values":["a","b"]},)js"
      R"js({"op":"delete","relation":"S","values":["b","a"]}]})js",
      R"js({"type":"apply_delta","id":24,"db":"replica","delta_id":"d1",)js"
      R"js("ops":[{"op":"insert","relation":"R","values":["a","b"]}]})js",
      R"js({"type":"apply_delta","id":25,"delta_id":"d2",)js"
      R"js("ops":[{"op":"insert","relation":"Ghost","values":["x","y"]}]})js",
      R"js({"type":"apply_delta","id":26,"delta_id":"d3",)js"
      R"js("ops":[{"op":"delete","relation":"R","values":["only-one"]}]})js",
      R"js({"type":"apply_delta","id":27,"delta_id":"d4","ops":[{}]})js",
      R"js({"type":"apply_delta","id":28,"delta_id":"","ops":[]})js",
      // answers: a plain stream open, one with every knob, resumes with a
      // well-formed and a hostile cursor, and shapes the codec must refuse
      // (missing/empty/mistyped 'free'). Mutation explores the rest.
      R"js({"type":"answers","id":30,"query":"R(x | y), not S(y | x)",)js"
      R"js("free":["x"]})js",
      R"js({"type":"answers","id":31,"query":"R(x | y)","free":["x","y"],)js"
      R"js("max_chunk":7,"db":"replica","timeout_ms":50,"max_steps":100,)js"
      R"js("method":"rewriting","cache":"bypass"})js",
      R"js({"type":"answers","id":33,"query":"R(x | y)","free":["x"],)js"
      R"js("cursor":"cqa1zzzz-not-a-cursor"})js",
      R"js({"type":"answers","id":34,"query":"R(x | y)"})js",
      R"js({"type":"answers","id":35,"query":"R(x | y)","free":[]})js",
      R"js({"type":"answers","id":36,"query":"R(x | y)","free":[42]})js",
  };
  corpus.push_back(EncodeErrorFrame(7, ErrorCode::kOverloaded, "busy", true));
  corpus.push_back(EncodeCancelledFrame(8, "cancelled"));
  corpus.push_back(EncodeHealthFrame(9, /*draining=*/false));
  corpus.push_back(EncodeCancelAckFrame(10, 1, true));
  {
    Result<Database> db = Database::FromText("R(a | b), R(a | c)\nS(b | a)");
    WireDbEntry entry;
    entry.name = "replica";
    entry.fingerprint = FingerprintDatabase(db.value()).ToHex();
    entry.facts = db->NumFacts();
    entry.blocks = db->NumBlocks();
    entry.is_default = false;
    corpus.push_back(EncodeAttachAckFrame(17, entry));
    corpus.push_back(EncodeDetachAckFrame(18, "replica", /*shed=*/3,
                                          /*drained=*/true));
    corpus.push_back(EncodeDbListFrame(19, {entry}));
    DeltaOutcome outcome;
    outcome.name = "replica";
    outcome.delta_id = "d1";
    outcome.applied = true;
    outcome.epoch = 1;
    outcome.fingerprint = FingerprintDatabase(db.value());
    outcome.inserted = 1;
    outcome.deleted = 1;
    corpus.push_back(EncodeDeltaAckFrame(29, outcome));

    // Answer-stream responses: a mid-stream chunk carrying a real cursor,
    // the final chunk of a stream, and the done terminal.
    AnswerChunk chunk;
    chunk.free_vars = {"x"};
    chunk.answers = {{Value::Of("a")}, {Value::Of("b")}};
    chunk.start = 0;
    chunk.next = 3;
    chunk.total = 5;
    chunk.scanned = 3;
    AnswerCursor cursor;
    cursor.position = chunk.next;
    cursor.query_hash = 0x1234abcdu;
    cursor.fingerprint = FingerprintDatabase(db.value());
    corpus.push_back(
        EncodeAnswerChunkFrame(37, chunk, EncodeAnswerCursor(cursor)));
    chunk.start = 3;
    chunk.next = 5;
    chunk.scanned = 2;
    chunk.done = true;
    corpus.push_back(EncodeAnswerChunkFrame(37, chunk, ""));
    corpus.push_back(EncodeAnswerDoneFrame(37, /*answers=*/4, /*candidates=*/5,
                                           /*chunks=*/2,
                                           std::chrono::microseconds(1'234)));
  }
  return corpus;
}

// ---------------------------------------------------------------------------
// Cursor-bytes fuzz

// Any byte string handed to DecodeAnswerCursor must either fail kParse or
// decode to a cursor whose re-encoding is byte-identical to the input —
// the "verifiable" half of opaque-but-verifiable: accepting hostile bytes
// that spell a *different* stream position is the one unforgivable
// outcome (a silent mis-resume).
int CheckCursorBytes(const std::string& bytes) {
  Result<AnswerCursor> decoded = DecodeAnswerCursor(bytes);
  if (!decoded.ok()) {
    if (decoded.code() != ErrorCode::kParse) {
      return BadInput(bytes, "cursor decode returned a non-parse error");
    }
    return 0;
  }
  if (EncodeAnswerCursor(*decoded) != bytes) {
    return BadInput(bytes, "accepted cursor does not re-encode to itself");
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Journal-bytes fuzz

// Serializes one well-formed journal record ([len][crc32c][payload]) so the
// fuzz stream's mutations explore the near-valid neighborhood: bit flips in
// the length, the CRC, and the payload all land one edit away from records
// the decoder accepts.
std::string JournalRecordBytes(const std::string& delta_id,
                               const std::string& fp_hex, bool valid_crc) {
  Json ops = Json::Parse(
                 R"js([{"op":"insert","relation":"R","values":["a","b"]}])js")
                 .value();
  std::string payload = JsonObjectBuilder()
                            .Set("delta_id", delta_id)
                            .Set("fp", fp_hex)
                            .Set("ops", std::move(ops))
                            .Build()
                            .Serialize();
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint32_t crc = Crc32c(payload);
  if (!valid_crc) crc ^= 0xdeadbeefu;  // the corrupt-CRC corpus entry
  std::string out;
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
  out += payload;
  return out;
}

// Any byte string must yield a valid-prefix decode: no crash, valid_bytes
// at a record boundary within the input, records consistent with the
// boundary, and decoding the valid prefix alone must reproduce exactly the
// same records with no torn tail.
int CheckJournalBytes(const std::string& bytes) {
  JournalReplay replay = ParseJournalBytes(bytes);
  if (replay.valid_bytes > bytes.size()) {
    return BadInput(bytes, "journal valid_bytes beyond the input");
  }
  if (replay.truncated_tail != (replay.valid_bytes < bytes.size())) {
    return BadInput(bytes, "journal truncated_tail flag inconsistent");
  }
  JournalReplay again =
      ParseJournalBytes(std::string_view(bytes).substr(0, replay.valid_bytes));
  if (again.records.size() != replay.records.size() || again.truncated_tail ||
      again.valid_bytes != replay.valid_bytes) {
    return BadInput(bytes, "journal valid prefix did not re-decode cleanly");
  }
  for (size_t i = 0; i < replay.records.size(); ++i) {
    if (replay.records[i].delta.id != again.records[i].delta.id) {
      return BadInput(bytes, "journal re-decode changed a record");
    }
  }
  return 0;
}

// Alpha-renames every variable of `q` (salted so different rounds use
// different spellings). The renamed query must produce the identical
// canonical cache key.
Query RenameVariables(const Query& q, uint64_t salt) {
  auto rename = [salt](const Term& t) {
    if (!t.is_variable()) return t;
    return Term::Var("w" + std::to_string(salt) + SymbolName(t.var()));
  };
  std::vector<Literal> literals;
  for (const Literal& l : q.literals()) {
    std::vector<Term> terms;
    for (const Term& t : l.atom.terms()) terms.push_back(rename(t));
    Atom atom(l.atom.relation(), l.atom.key_len(), std::move(terms));
    literals.push_back(l.negated ? Neg(atom) : Pos(atom));
  }
  std::vector<Diseq> diseqs;
  for (const Diseq& d : q.diseqs()) {
    Diseq nd;
    for (const Term& t : d.lhs) nd.lhs.push_back(rename(t));
    for (const Term& t : d.rhs) nd.rhs.push_back(rename(t));
    diseqs.push_back(std::move(nd));
  }
  return Query::MakeOrDie(std::move(literals), std::move(diseqs));
}

// Canonical signature of a database's value-connected component partition:
// every block rendered "Rel(key)", blocks grouped by component id, each
// group sorted, groups sorted. Independent of block enumeration order, so
// an epoch produced by incremental mutation must match a from-scratch
// reparse of the same facts byte-for-byte.
std::string ComponentSignature(const Database& db) {
  const std::vector<Database::Block>& blocks = db.blocks();
  const Database::ComponentIndex& ci = db.BlockComponents();
  std::vector<std::vector<std::string>> groups(ci.num_components);
  for (size_t b = 0; b < blocks.size(); ++b) {
    groups[ci.component_of_block[b]].push_back(
        SymbolName(blocks[b].relation) + TupleToString(blocks[b].key));
  }
  for (std::vector<std::string>& g : groups) std::sort(g.begin(), g.end());
  std::sort(groups.begin(), groups.end());
  std::string sig;
  for (const std::vector<std::string>& g : groups) {
    for (const std::string& s : g) {
      sig += s;
      sig += ' ';
    }
    sig += '|';
  }
  return sig;
}

int CacheViolation(const Query& q, const char* what) {
  std::printf("CACHE VIOLATION (%s)\nquery: %s\n", what,
              q.ToString().c_str());
  return 1;
}

// One wire-fuzz input: the byte stream is fed to a FrameDecoder in random
// chunk sizes; every completed frame must decode as a request or fail with
// kParse/kUnsupported, and likewise for responses. Nothing may crash or
// return an untyped error, and the overflow latch must respect the cap.
int CheckWireStack(const std::string& stream, size_t max_frame_bytes,
                   Rng* rng) {
  FrameDecoder decoder(max_frame_bytes);
  std::vector<std::string> frames;
  size_t offset = 0;
  while (offset < stream.size()) {
    size_t chunk = rng->Below(7) + 1;
    chunk = std::min(chunk, stream.size() - offset);
    decoder.Feed(stream.data() + offset, chunk, &frames);
    offset += chunk;
  }
  if (decoder.pending_bytes() > max_frame_bytes && !decoder.overflowed()) {
    return BadInput(stream, "decoder exceeded its cap without latching");
  }
  for (const std::string& frame : frames) {
    if (frame.size() > max_frame_bytes) {
      return BadInput(frame, "decoder emitted a frame beyond its cap");
    }
    Result<Json> json = Json::Parse(frame);
    if (!json.ok() && json.code() != ErrorCode::kParse) {
      return BadInput(frame, "Json::Parse returned a non-parse error");
    }
    Result<WireRequest> req = DecodeRequest(frame);
    if (!req.ok() && req.code() != ErrorCode::kParse &&
        req.code() != ErrorCode::kUnsupported) {
      return BadInput(frame, "DecodeRequest returned an untyped error");
    }
    Result<WireResponse> resp = DecodeResponse(frame);
    if (!resp.ok() && resp.code() != ErrorCode::kParse &&
        resp.code() != ErrorCode::kUnsupported) {
      return BadInput(frame, "DecodeResponse returned an untyped error");
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = FlagOr(argc, argv, "--seed", 1);
  uint64_t rounds = FlagOr(argc, argv, "--rounds", 200);
  uint64_t dbs_per_query = FlagOr(argc, argv, "--dbs-per-query", 10);
  uint64_t parse_rounds = FlagOr(argc, argv, "--parse-rounds", 300);
  uint64_t wire_rounds = FlagOr(argc, argv, "--wire-rounds", 300);
  uint64_t cache_rounds = FlagOr(argc, argv, "--cache-rounds", 200);
  uint64_t journal_rounds = FlagOr(argc, argv, "--journal-rounds", 300);
  uint64_t cursor_rounds = FlagOr(argc, argv, "--cursor-rounds", 300);
  uint64_t parallel_rounds = FlagOr(argc, argv, "--parallel-rounds", 120);

  // Phase 1: parser robustness under mutation and garbage.
  {
    Rng prng(seed ^ 0xf0220u);
    Result<Database> pdb = Database::FromText(kFactCorpus[0]);
    if (!pdb.ok()) {
      std::printf("corpus database failed to parse: %s\n",
                  pdb.error().c_str());
      return 1;
    }
    std::vector<std::string> corpus;
    for (const char* s : kFactCorpus) corpus.push_back(s);
    for (const char* s : kQueryCorpus) corpus.push_back(s);
    for (const char* s : kFoCorpus) corpus.push_back(s);
    for (uint64_t round = 0; round < parse_rounds; ++round) {
      std::string input =
          prng.Chance(0.2) ? Garbage(&prng)
                           : Mutate(corpus[prng.Below(corpus.size())], &prng);
      int rc = CheckParsers(input, pdb.value());
      if (rc != 0) return rc;
    }
  }

  // Phase 2: wire-protocol robustness — random frame streams through the
  // daemon's decoder and codecs, delivered in adversarial chunk sizes.
  {
    Rng wrng(seed ^ 0x3142u);
    std::vector<std::string> corpus = WireCorpus();
    for (uint64_t round = 0; round < wire_rounds; ++round) {
      // A small cap every few rounds exercises the overflow latch; the
      // big cap exercises ordinary reassembly.
      size_t cap = wrng.Chance(0.3) ? 48 : 4096;
      std::string stream;
      int pieces = static_cast<int>(wrng.Below(4)) + 1;
      for (int p = 0; p < pieces; ++p) {
        switch (wrng.Below(4)) {
          case 0:  // intact corpus frame
            stream += corpus[wrng.Below(corpus.size())];
            break;
          case 1:  // mutated corpus frame (may contain stray newlines)
            stream += Mutate(corpus[wrng.Below(corpus.size())], &wrng);
            break;
          case 2:  // raw garbage
            stream += Garbage(&wrng);
            break;
          default: {  // oversized filler
            stream += std::string(cap + wrng.Below(64) + 1, '{');
            break;
          }
        }
        if (!wrng.Chance(0.2)) stream += wrng.Chance(0.1) ? "\r\n" : "\n";
      }
      if (wrng.Chance(0.3) && !stream.empty()) {
        stream.resize(wrng.Below(stream.size()));  // truncated delivery
      }
      int rc = CheckWireStack(stream, cap, &wrng);
      if (rc != 0) return rc;
    }
  }

  // Phase 2b: journal robustness — random record soup (valid, corrupt-CRC,
  // mutated, truncated, garbage) through the pure journal decoder.
  {
    Rng jrng(seed ^ 0x70a17u);
    const std::string fp_hex = "0123456789abcdef0123456789abcdef";
    for (uint64_t round = 0; round < journal_rounds; ++round) {
      std::string bytes;
      int pieces = static_cast<int>(jrng.Below(5)) + 1;
      for (int p = 0; p < pieces; ++p) {
        switch (jrng.Below(5)) {
          case 0:  // intact record
            bytes += JournalRecordBytes("d" + std::to_string(p), fp_hex,
                                        /*valid_crc=*/true);
            break;
          case 1:  // record whose CRC does not match its payload
            bytes += JournalRecordBytes("d" + std::to_string(p), fp_hex,
                                        /*valid_crc=*/false);
            break;
          case 2:  // intact record with one mutated byte
            bytes += Mutate(JournalRecordBytes("d", fp_hex, true), &jrng);
            break;
          case 3:  // raw garbage, including hostile length prefixes
            bytes += Garbage(&jrng);
            break;
          default: {  // a torn record: an intact one cut mid-payload
            std::string whole = JournalRecordBytes("torn", fp_hex, true);
            bytes += whole.substr(0, jrng.Below(whole.size()) + 1);
            break;
          }
        }
      }
      if (jrng.Chance(0.3) && !bytes.empty()) {
        bytes.resize(jrng.Below(bytes.size()));
      }
      int rc = CheckJournalBytes(bytes);
      if (rc != 0) return rc;
    }
  }

  // Phase 2c: cursor-bytes robustness — round trips, single-byte damage
  // across every position, and structured hostility (truncation, padding,
  // case flips, magic swaps, pure garbage).
  {
    Rng crng(seed ^ 0xc52503u);
    for (uint64_t round = 0; round < cursor_rounds; ++round) {
      AnswerCursor cursor;
      cursor.position = crng.Next();
      cursor.query_hash = crng.Next();
      cursor.fingerprint = DbFingerprint{crng.Next(), crng.Next()};
      std::string wire = EncodeAnswerCursor(cursor);
      Result<AnswerCursor> back = DecodeAnswerCursor(wire);
      if (!back.ok() || back->position != cursor.position ||
          back->query_hash != cursor.query_hash ||
          !(back->fingerprint == cursor.fingerprint)) {
        return BadInput(wire, "cursor round trip lost a field");
      }

      std::string hostile = wire;
      switch (crng.Below(6)) {
        case 0:  // flip one payload character
          hostile[crng.Below(hostile.size())] =
              static_cast<char>(crng.Below(96) + 32);
          break;
        case 1:  // truncate
          hostile.resize(crng.Below(hostile.size()));
          break;
        case 2:  // pad with trailing bytes
          hostile += Garbage(&crng);
          break;
        case 3: {  // uppercase a hex digit (spelling is lowercase-only)
          size_t pos = 4 + crng.Below(hostile.size() - 4);
          hostile[pos] = static_cast<char>(std::toupper(hostile[pos]));
          break;
        }
        case 4:  // wrong magic, right payload
          hostile[crng.Below(4)] = 'x';
          break;
        default:  // pure garbage, sometimes magic-prefixed
          hostile = (crng.Chance(0.5) ? "cqa1" : "") + Garbage(&crng);
          break;
      }
      int rc = CheckCursorBytes(hostile);
      if (rc != 0) return rc;
    }
  }

  // Phase 3: result-cache invariants. A 4-entry cache under random query/
  // database traffic evicts on almost every insert, so any aliasing bug in
  // the key scheme (two distinct instances mapping to one slot, or an
  // alpha-variant mapping to two) surfaces as a verdict mismatch against
  // the reference map of everything ever inserted.
  {
    Rng crng(seed ^ 0xCAC4Eu);
    RandomQueryOptions cqopts;
    RandomDbOptions cdopts;
    cdopts.blocks_per_relation = 2;
    cdopts.max_block_size = 2;
    cdopts.domain_size = 4;
    ResultCache cache(/*max_entries=*/4, /*shards=*/2);
    std::unordered_map<std::string, Verdict> reference;
    for (uint64_t round = 0; round < cache_rounds; ++round) {
      Query q = GenerateRandomQuery(cqopts, &crng);
      Query renamed = RenameVariables(q, round % 9);
      if (CanonicalQueryKey(q) != CanonicalQueryKey(renamed)) {
        return CacheViolation(q, "alpha-variant got a different query key");
      }
      std::vector<Symbol> vars = q.Vars().items();
      if (!vars.empty()) {
        Query subst = q.Substituted(vars[crng.Below(vars.size())],
                                    Value::Of("zz"));
        if (CanonicalQueryKey(subst) == CanonicalQueryKey(q)) {
          return CacheViolation(q, "constant-perturbed query kept the key");
        }
      }
      Database db = GenerateRandomDatabaseFor(q, cdopts, &crng);
      DbFingerprint fp = FingerprintDatabase(db);
      CacheKey key = MakeCacheKey(fp, SolverMethod::kAuto, q);
      CacheKey alias = MakeCacheKey(fp, SolverMethod::kAuto, renamed);
      if (key.text != alias.text || key.hash != alias.hash) {
        return CacheViolation(q, "alpha-variant got a different cache key");
      }
      if (std::optional<SolveReport> pre = cache.Lookup(key)) {
        auto it = reference.find(key.text);
        if (it == reference.end() || pre->verdict != it->second) {
          return CacheViolation(q, "lookup returned a foreign report");
        }
      }
      Result<SolveReport> solved = SolveCertainty(q, db, SolverMethod::kAuto);
      if (solved.ok() && IsCacheableReport(*solved)) {
        cache.Insert(key, *solved);
        reference[key.text] = solved->verdict;
        std::optional<SolveReport> back = cache.Lookup(key);
        if (!back.has_value() || back->verdict != solved->verdict) {
          return CacheViolation(q, "insert/lookup round trip failed");
        }
      }
    }
    CacheStats cs = cache.Stats();
    if (cs.entries > cache.max_entries()) {
      std::printf("CACHE VIOLATION (size bound): %llu entries, cap %llu\n",
                  static_cast<unsigned long long>(cs.entries),
                  static_cast<unsigned long long>(cache.max_entries()));
      return 1;
    }
  }

  // Phase 4: parallel decomposition parity on delta-mutated epochs. Each
  // round chains random inserts and deletes through ApplyDeltaToDatabase;
  // every epoch's component metadata must match a from-scratch reparse,
  // and the decompose-then-solve verdict must equal the direct one.
  {
    Rng prng(seed ^ 0xdec0u);
    RandomQueryOptions pqopts;
    RandomDbOptions pdopts;
    pdopts.blocks_per_relation = 3;
    pdopts.max_block_size = 2;
    pdopts.domain_size = 6;
    for (uint64_t round = 0; round < parallel_rounds; ++round) {
      Query q = GenerateRandomQuery(pqopts, &prng);
      Database base = GenerateRandomDatabaseFor(q, pdopts, &prng);

      // Per-relation arities of q (delta ops must be schema-valid), and a
      // value pool mixing the base database's own spellings (inserts that
      // merge components) with fresh ones (inserts that mint components).
      std::vector<std::pair<std::string, size_t>> relations;
      for (const Literal& l : q.literals()) {
        relations.emplace_back(SymbolName(l.atom.relation()),
                               l.atom.terms().size());
      }
      std::vector<std::string> pool;
      for (const Database::Block& b : base.blocks()) {
        for (Value v : b.key) pool.push_back(v.name());
      }
      for (int f = 0; f < 4; ++f) {
        pool.push_back("fz" + std::to_string(round) + "_" + std::to_string(f));
      }

      auto random_op = [&](bool insert) {
        const auto& [rel, arity] = relations[prng.Below(relations.size())];
        DeltaOp op;
        op.insert = insert;
        op.relation = rel;
        for (size_t a = 0; a < arity; ++a) {
          op.values.push_back(pool[prng.Below(pool.size())]);
        }
        return op;
      };

      std::shared_ptr<const Database> epoch =
          std::make_shared<const Database>(std::move(base));
      std::vector<DeltaOp> inserted;
      for (int step = 0; step < 3; ++step) {
        FactDelta delta;
        delta.id = "fz" + std::to_string(round) + "." + std::to_string(step);
        int ops = static_cast<int>(prng.Below(5)) + 1;
        for (int o = 0; o < ops; ++o) {
          // Deletes target previously-inserted facts when possible so they
          // actually remove something; a miss is a legal no-op either way.
          if (!inserted.empty() && prng.Chance(0.4)) {
            DeltaOp del = inserted[prng.Below(inserted.size())];
            del.insert = false;
            delta.ops.push_back(std::move(del));
          } else {
            DeltaOp op = random_op(/*insert=*/true);
            inserted.push_back(op);
            delta.ops.push_back(std::move(op));
          }
        }
        Result<DeltaApplyOutcome> out = ApplyDeltaToDatabase(*epoch, delta);
        if (!out.ok()) {
          return Reproducer(q, *epoch, "schema-valid delta was rejected");
        }
        epoch = out->db;

        // (b) Epoch component metadata vs a from-scratch reparse.
        Result<Database> reparsed = Database::FromText(epoch->ToText());
        if (!reparsed.ok()) {
          return Reproducer(q, *epoch, "epoch failed to round-trip as text");
        }
        if (ComponentSignature(*epoch) != ComponentSignature(*reparsed)) {
          return Reproducer(q, *epoch,
                            "epoch carries stale component metadata");
        }

        // (a) Decompose-then-solve vs the direct sequential engine.
        Result<bool> direct = IsCertainBacktracking(q, *epoch);
        if (!direct.ok()) continue;
        ParallelOptions popts;
        popts.parallelism = 2 + static_cast<int>(prng.Below(3)) * 3;
        Result<ParallelReport> par = SolveCertainParallel(q, *epoch, popts);
        if (!par.ok() || par->certain != direct.value()) {
          return Reproducer(q, *epoch, "parallel vs direct on delta epoch");
        }
      }
    }
  }

  Rng rng(seed);
  RandomQueryOptions qopts;
  RandomDbOptions dopts;
  dopts.blocks_per_relation = 2;
  dopts.max_block_size = 2;
  dopts.domain_size = 4;

  uint64_t fo_count = 0, hard_count = 0, checks = 0;
  for (uint64_t round = 0; round < rounds; ++round) {
    Query q = GenerateRandomQuery(qopts, &rng);
    Classification cls = Classify(q);
    std::optional<RewritingSolver> rewriting;
    if (cls.cls == CertaintyClass::kFO) {
      ++fo_count;
      Result<RewritingSolver> rs = RewritingSolver::Create(q);
      if (!rs.ok()) {
        std::printf("rewriter refused an FO query: %s\n%s\n",
                    q.ToString().c_str(), rs.error().c_str());
        return 1;
      }
      rewriting = std::move(rs.value());
    } else {
      ++hard_count;
    }

    for (uint64_t i = 0; i < dbs_per_query; ++i) {
      Database db = GenerateRandomDatabaseFor(q, dopts, &rng);
      Result<bool> oracle = IsCertainNaive(q, db);
      if (!oracle.ok()) continue;
      ++checks;

      Result<bool> bt = IsCertainBacktracking(q, db);
      if (!bt.ok() || bt.value() != oracle.value()) {
        return Reproducer(q, db, "backtracking vs naive");
      }
      if (rewriting.has_value()) {
        if (rewriting->IsCertain(db) != oracle.value()) {
          return Reproducer(q, db, "rewriting vs naive");
        }
        Result<bool> a1 = IsCertainAlgorithm1(q, db);
        if (!a1.ok() || a1.value() != oracle.value()) {
          return Reproducer(q, db, "algorithm1 vs naive");
        }
        // Third engine: algebra evaluation of the rewriting.
        Result<bool> algebra =
            EvalFoAlgebraBool(rewriting->rewriting().formula, db);
        if (!algebra.ok() || algebra.value() != oracle.value()) {
          return Reproducer(q, db, "algebra engine vs naive");
        }
      }
      // Sampling may only refute when the oracle refutes.
      Rng srng(round * 1000 + i);
      SampleEstimate est = EstimateCertainty(q, db, 16, &srng);
      if (est.refuted && oracle.value()) {
        return Reproducer(q, db, "sampling refuted a certain instance");
      }
    }
  }
  std::printf(
      "fuzz clean: %llu parse rounds, %llu wire rounds, %llu journal "
      "rounds, %llu cursor rounds, %llu cache rounds, %llu parallel rounds, "
      "%llu rounds (%llu FO, %llu hard), %llu database checks\n",
      static_cast<unsigned long long>(parse_rounds),
      static_cast<unsigned long long>(wire_rounds),
      static_cast<unsigned long long>(journal_rounds),
      static_cast<unsigned long long>(cursor_rounds),
      static_cast<unsigned long long>(cache_rounds),
      static_cast<unsigned long long>(parallel_rounds),
      static_cast<unsigned long long>(rounds),
      static_cast<unsigned long long>(fo_count),
      static_cast<unsigned long long>(hard_count),
      static_cast<unsigned long long>(checks));
  return 0;
}
