// cqa_fuzz — randomized differential tester. Runs forever-ish (bounded by
// --rounds), generating random weakly-guarded queries and random databases
// and cross-checking every applicable solver against the repair-enumeration
// oracle, plus the two FO evaluation engines against each other. Exits
// non-zero and prints a reproducer on the first disagreement.
//
//   cqa_fuzz [--seed=N] [--rounds=N] [--dbs-per-query=N]

#include <cstdio>
#include <cstring>
#include <string>

#include "cqa/cqa.h"

namespace {

using namespace cqa;

uint64_t FlagOr(int argc, char** argv, const char* name, uint64_t fallback) {
  std::string prefix = std::string(name) + "=";
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::stoull(argv[i] + prefix.size());
    }
  }
  return fallback;
}

int Reproducer(const Query& q, const Database& db, const char* what) {
  std::printf("DISAGREEMENT (%s)\nquery: %s\ndatabase:\n%s\n", what,
              q.ToString().c_str(), db.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = FlagOr(argc, argv, "--seed", 1);
  uint64_t rounds = FlagOr(argc, argv, "--rounds", 200);
  uint64_t dbs_per_query = FlagOr(argc, argv, "--dbs-per-query", 10);

  Rng rng(seed);
  RandomQueryOptions qopts;
  RandomDbOptions dopts;
  dopts.blocks_per_relation = 2;
  dopts.max_block_size = 2;
  dopts.domain_size = 4;

  uint64_t fo_count = 0, hard_count = 0, checks = 0;
  for (uint64_t round = 0; round < rounds; ++round) {
    Query q = GenerateRandomQuery(qopts, &rng);
    Classification cls = Classify(q);
    std::optional<RewritingSolver> rewriting;
    if (cls.cls == CertaintyClass::kFO) {
      ++fo_count;
      Result<RewritingSolver> rs = RewritingSolver::Create(q);
      if (!rs.ok()) {
        std::printf("rewriter refused an FO query: %s\n%s\n",
                    q.ToString().c_str(), rs.error().c_str());
        return 1;
      }
      rewriting = std::move(rs.value());
    } else {
      ++hard_count;
    }

    for (uint64_t i = 0; i < dbs_per_query; ++i) {
      Database db = GenerateRandomDatabaseFor(q, dopts, &rng);
      Result<bool> oracle = IsCertainNaive(q, db);
      if (!oracle.ok()) continue;
      ++checks;

      Result<bool> bt = IsCertainBacktracking(q, db);
      if (!bt.ok() || bt.value() != oracle.value()) {
        return Reproducer(q, db, "backtracking vs naive");
      }
      if (rewriting.has_value()) {
        if (rewriting->IsCertain(db) != oracle.value()) {
          return Reproducer(q, db, "rewriting vs naive");
        }
        Result<bool> a1 = IsCertainAlgorithm1(q, db);
        if (!a1.ok() || a1.value() != oracle.value()) {
          return Reproducer(q, db, "algorithm1 vs naive");
        }
        // Third engine: algebra evaluation of the rewriting.
        Result<bool> algebra =
            EvalFoAlgebraBool(rewriting->rewriting().formula, db);
        if (!algebra.ok() || algebra.value() != oracle.value()) {
          return Reproducer(q, db, "algebra engine vs naive");
        }
      }
      // Sampling may only refute when the oracle refutes.
      Rng srng(round * 1000 + i);
      SampleEstimate est = EstimateCertainty(q, db, 16, &srng);
      if (est.refuted && oracle.value()) {
        return Reproducer(q, db, "sampling refuted a certain instance");
      }
    }
  }
  std::printf(
      "fuzz clean: %llu rounds (%llu FO, %llu hard), %llu database checks\n",
      static_cast<unsigned long long>(rounds),
      static_cast<unsigned long long>(fo_count),
      static_cast<unsigned long long>(hard_count),
      static_cast<unsigned long long>(checks));
  return 0;
}
