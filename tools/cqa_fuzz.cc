// cqa_fuzz — randomized differential tester. Runs forever-ish (bounded by
// --rounds), generating random weakly-guarded queries and random databases
// and cross-checking every applicable solver against the repair-enumeration
// oracle, plus the two FO evaluation engines against each other. Also fuzzes
// the fact/query/FO parsers with mutated and garbage inputs (--parse-rounds)
// and evaluates whatever parses under a tight execution budget, asserting
// that only typed errors ever escape (kParse from the parsers; resource
// codes from governed evaluation). Exits non-zero and prints a reproducer
// on the first disagreement.
//
//   cqa_fuzz [--seed=N] [--rounds=N] [--dbs-per-query=N] [--parse-rounds=N]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cqa/cqa.h"

namespace {

using namespace cqa;

uint64_t FlagOr(int argc, char** argv, const char* name, uint64_t fallback) {
  std::string prefix = std::string(name) + "=";
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::stoull(argv[i] + prefix.size());
    }
  }
  return fallback;
}

int Reproducer(const Query& q, const Database& db, const char* what) {
  std::printf("DISAGREEMENT (%s)\nquery: %s\ndatabase:\n%s\n", what,
              q.ToString().c_str(), db.ToString().c_str());
  return 1;
}

int BadInput(const std::string& input, const char* what) {
  std::printf("PARSER VIOLATION (%s)\ninput: %s\n", what, input.c_str());
  return 1;
}

// Seed corpus for the parser fuzz: valid spellings whose mutations stay
// near the interesting parts of the grammars.
const char* const kFactCorpus[] = {
    "R(a | b), R(a | c)\nS(b | a)",
    "R('quo''ted' | b)",
    "Edge(1, 2 | 3)  -- comment\nEdge(2, 3 | 4)",
};
const char* const kQueryCorpus[] = {
    "R(x | y), not S(y | x)",
    "P(x | y), not N('c' | y), x != y",
    "C0(x0 | x1), C1(x1 | x0)",
};
const char* const kFoCorpus[] = {
    "exists x y. R(x | y) & !S(y | x)",
    "forall x. (R(x | x) -> exists y. S(x | y))",
    "exists x. R(x | x) | 'a' != 'b'",
};

std::string Mutate(const std::string& base, Rng* rng) {
  std::string s = base;
  int edits = static_cast<int>(rng->Below(4)) + 1;
  const char kGrammarChars[] = "(),|!&'.= \nRSxy123notexistsforall";
  for (int e = 0; e < edits && !s.empty(); ++e) {
    size_t pos = rng->Below(s.size());
    switch (rng->Below(3)) {
      case 0:  // flip
        s[pos] = kGrammarChars[rng->Below(sizeof(kGrammarChars) - 1)];
        break;
      case 1:  // insert
        s.insert(pos, 1, kGrammarChars[rng->Below(sizeof(kGrammarChars) - 1)]);
        break;
      default:  // truncate
        s.resize(pos);
        break;
    }
  }
  return s;
}

std::string Garbage(Rng* rng) {
  std::string s;
  size_t len = rng->Below(64);
  for (size_t i = 0; i < len; ++i) {
    s += static_cast<char>(rng->Below(96) + 32);
  }
  return s;
}

// True iff `code` is one the governed evaluator is allowed to produce.
bool IsResourceCode(ErrorCode code) {
  return IsResourceExhaustion(code) || code == ErrorCode::kCancelled;
}

// One parser-fuzz input: the parsers must either accept or fail with
// kParse (never hang, never return another code); formulas that do parse
// are evaluated under a tight step budget, whose failures must be typed
// resource errors.
int CheckParsers(const std::string& input, const Database& db) {
  Result<std::vector<ParsedFact>> facts = ParseFacts(input);
  if (!facts.ok() && facts.code() != ErrorCode::kParse) {
    return BadInput(input, "ParseFacts returned a non-parse error");
  }
  Result<Query> q = ParseQuery(input);
  if (!q.ok() && q.code() != ErrorCode::kParse) {
    return BadInput(input, "ParseQuery returned a non-parse error");
  }
  Result<FoPtr> f = ParseFo(input);
  if (!f.ok()) {
    if (f.code() != ErrorCode::kParse) {
      return BadInput(input, "ParseFo returned a non-parse error");
    }
    return 0;
  }
  if (!(*f)->FreeVars().empty()) return 0;
  Budget tight = Budget::WithMaxSteps(64);
  Result<bool> holds = EvalFoGoverned(f.value(), db, &tight);
  if (!holds.ok() && !IsResourceCode(holds.code())) {
    return BadInput(input, "governed eval escaped with a non-resource error");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = FlagOr(argc, argv, "--seed", 1);
  uint64_t rounds = FlagOr(argc, argv, "--rounds", 200);
  uint64_t dbs_per_query = FlagOr(argc, argv, "--dbs-per-query", 10);
  uint64_t parse_rounds = FlagOr(argc, argv, "--parse-rounds", 300);

  // Phase 1: parser robustness under mutation and garbage.
  {
    Rng prng(seed ^ 0xf0220u);
    Result<Database> pdb = Database::FromText(kFactCorpus[0]);
    if (!pdb.ok()) {
      std::printf("corpus database failed to parse: %s\n",
                  pdb.error().c_str());
      return 1;
    }
    std::vector<std::string> corpus;
    for (const char* s : kFactCorpus) corpus.push_back(s);
    for (const char* s : kQueryCorpus) corpus.push_back(s);
    for (const char* s : kFoCorpus) corpus.push_back(s);
    for (uint64_t round = 0; round < parse_rounds; ++round) {
      std::string input =
          prng.Chance(0.2) ? Garbage(&prng)
                           : Mutate(corpus[prng.Below(corpus.size())], &prng);
      int rc = CheckParsers(input, pdb.value());
      if (rc != 0) return rc;
    }
  }

  Rng rng(seed);
  RandomQueryOptions qopts;
  RandomDbOptions dopts;
  dopts.blocks_per_relation = 2;
  dopts.max_block_size = 2;
  dopts.domain_size = 4;

  uint64_t fo_count = 0, hard_count = 0, checks = 0;
  for (uint64_t round = 0; round < rounds; ++round) {
    Query q = GenerateRandomQuery(qopts, &rng);
    Classification cls = Classify(q);
    std::optional<RewritingSolver> rewriting;
    if (cls.cls == CertaintyClass::kFO) {
      ++fo_count;
      Result<RewritingSolver> rs = RewritingSolver::Create(q);
      if (!rs.ok()) {
        std::printf("rewriter refused an FO query: %s\n%s\n",
                    q.ToString().c_str(), rs.error().c_str());
        return 1;
      }
      rewriting = std::move(rs.value());
    } else {
      ++hard_count;
    }

    for (uint64_t i = 0; i < dbs_per_query; ++i) {
      Database db = GenerateRandomDatabaseFor(q, dopts, &rng);
      Result<bool> oracle = IsCertainNaive(q, db);
      if (!oracle.ok()) continue;
      ++checks;

      Result<bool> bt = IsCertainBacktracking(q, db);
      if (!bt.ok() || bt.value() != oracle.value()) {
        return Reproducer(q, db, "backtracking vs naive");
      }
      if (rewriting.has_value()) {
        if (rewriting->IsCertain(db) != oracle.value()) {
          return Reproducer(q, db, "rewriting vs naive");
        }
        Result<bool> a1 = IsCertainAlgorithm1(q, db);
        if (!a1.ok() || a1.value() != oracle.value()) {
          return Reproducer(q, db, "algorithm1 vs naive");
        }
        // Third engine: algebra evaluation of the rewriting.
        Result<bool> algebra =
            EvalFoAlgebraBool(rewriting->rewriting().formula, db);
        if (!algebra.ok() || algebra.value() != oracle.value()) {
          return Reproducer(q, db, "algebra engine vs naive");
        }
      }
      // Sampling may only refute when the oracle refutes.
      Rng srng(round * 1000 + i);
      SampleEstimate est = EstimateCertainty(q, db, 16, &srng);
      if (est.refuted && oracle.value()) {
        return Reproducer(q, db, "sampling refuted a certain instance");
      }
    }
  }
  std::printf(
      "fuzz clean: %llu parse rounds, %llu rounds (%llu FO, %llu hard), "
      "%llu database checks\n",
      static_cast<unsigned long long>(parse_rounds),
      static_cast<unsigned long long>(rounds),
      static_cast<unsigned long long>(fo_count),
      static_cast<unsigned long long>(hard_count),
      static_cast<unsigned long long>(checks));
  return 0;
}
