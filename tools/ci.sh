#!/usr/bin/env bash
# One-shot local CI: tier-1 build + full test suite, then the sanitizer
# presets (ASan+UBSan on the governor suites, TSan on everything labelled
# `concurrency` — the serve and governor threading tests).
#
#   tools/ci.sh            # all three stages
#   tools/ci.sh tier1      # just the tier-1 stage
#   tools/ci.sh asan tsan  # just the sanitizer stages
set -euo pipefail
cd "$(dirname "$0")/.."

stages=("$@")
[ ${#stages[@]} -eq 0 ] && stages=(tier1 asan tsan)

jobs=$(nproc 2>/dev/null || echo 4)

run_stage() {
  local name="$1" configure="$2" build="$3" test="$4"
  echo "==== [$name] configure"
  cmake --preset "$configure"
  echo "==== [$name] build"
  cmake --build --preset "$build" -j "$jobs"
  echo "==== [$name] test"
  ctest --preset "$test" -j "$jobs"
}

for stage in "${stages[@]}"; do
  case "$stage" in
    tier1) run_stage tier1 default default default ;;
    asan)  run_stage asan-ubsan asan-ubsan asan-ubsan asan-ubsan ;;
    tsan)  run_stage tsan tsan tsan tsan ;;
    *) echo "unknown stage '$stage' (want: tier1 asan tsan)" >&2; exit 2 ;;
  esac
done
echo "==== CI OK (${stages[*]})"
