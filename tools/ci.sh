#!/usr/bin/env bash
# One-shot local CI: tier-1 build + full test suite, then the sanitizer
# presets (ASan+UBSan on the governor suites, TSan on everything labelled
# `concurrency` — the serve, daemon and governor threading tests), then a
# live end-to-end smoke of the network daemon: start it, run solves through
# the CLI client, SIGTERM it, and assert a clean drain and exit code. A
# cache smoke runs the same job twice against a fresh daemon and asserts
# the repeat was answered from the result cache (stats frame). The multidb
# smoke serves two databases from one daemon, routes solves by the frame's
# "db" field (contradictory verdicts prove isolation), exercises the
# attach/detach/list admin surface over the wire, and drains both shards
# on SIGTERM. The sandbox smoke drives the fork-isolation layer end to
# end: a wedged solve hard-killed within the kill grace while a sibling
# keeps answering, an injected crash contained to a typed error, and a
# clean SIGTERM drain afterwards.
#
#   tools/ci.sh            # all eleven stages
#   tools/ci.sh tier1      # just the tier-1 stage
#   tools/ci.sh asan tsan  # just the sanitizer stages
#   tools/ci.sh daemon     # just the daemon smoke (needs a tier-1 build)
#   tools/ci.sh cache      # just the cache smoke (needs a tier-1 build)
#   tools/ci.sh multidb    # just the multidb smoke (needs a tier-1 build)
#   tools/ci.sh sandbox    # just the sandbox smoke (needs a tier-1 build)
#   tools/ci.sh recovery   # just the recovery smoke (needs a tier-1 build)
#   tools/ci.sh failover   # just the failover smoke (needs a tier-1 build)
#   tools/ci.sh parallel   # just the parallel parity smoke (needs tier-1)
#   tools/ci.sh answers    # just the answer-stream smoke (needs tier-1)
#
# The recovery smoke drives the live-update durability contract: a daemon
# with a write-ahead delta journal takes a stream of apply_delta frames,
# is SIGKILLed mid-stream, has a torn tail appended to its journal, and is
# restarted over the same base snapshot. Every delta acked before the kill
# must re-ack idempotently after recovery, and the recovered state must be
# fingerprint- and verdict-identical to a clean application of the same
# deltas to a fresh daemon. The failover smoke extends that to the
# replication layer: a warm-standby follower (`--follow`) bootstraps from
# a group-fsync primary, the primary is SIGKILLed mid-stream, the follower
# is promoted, and every delta the dead primary acked must be accepted (or
# re-acked) by the promoted daemon, converging to fingerprint and verdict
# parity with a clean application. The parallel smoke checks the
# component-parallel path's wire-level contract: the trace generator is
# byte-deterministic from its seed, and the same recorded trace replayed
# against a live daemon at --parallelism=1 and --parallelism=8 yields
# byte-identical transcripts (the differential parity guarantee), with
# the parallel counters visible in the stats frame. The answers smoke
# drives streaming certain-answer enumeration end to end: a chunked wire
# stream whose concatenated chunks are byte-identical to the one-shot
# answer list, a client killed mid-stream that resumes from its persisted
# cursor with no holes and no duplicates, and an apply_delta epoch flip
# after which the old cursor is refused with a typed stale-cursor error
# while a fresh stream serves the post-delta answers.
set -euo pipefail
cd "$(dirname "$0")/.."

stages=("$@")
[ ${#stages[@]} -eq 0 ] && stages=(tier1 asan tsan daemon cache multidb sandbox recovery failover parallel answers)

jobs=$(nproc 2>/dev/null || echo 4)

run_stage() {
  local name="$1" configure="$2" build="$3" test="$4"
  echo "==== [$name] configure"
  cmake --preset "$configure"
  echo "==== [$name] build"
  cmake --build --preset "$build" -j "$jobs"
  echo "==== [$name] test"
  ctest --preset "$test" -j "$jobs"
}

# End-to-end daemon smoke against the tier-1 build: a real process, a real
# socket, a real signal. Asserts the solves answer correctly, health serves,
# SIGTERM drains, and the daemon exits 0 (clean drain, not forced).
daemon_smoke() {
  local cli=build/tools/cqa_cli
  [ -x "$cli" ] || { echo "daemon smoke needs a tier-1 build ($cli)"; exit 2; }
  local work; work=$(mktemp -d)
  trap 'rm -rf "$work"' RETURN
  printf 'R(a | b), R(a | c)\nS(b | a)\n' > "$work/facts"
  printf 'R(x | y)\nR(x | y), not S(y | x)\n' > "$work/queries"

  echo "==== [daemon] start"
  "$cli" serve "$work/facts" --listen=127.0.0.1:0 --workers=2 \
      > "$work/daemon.log" 2>&1 &
  local daemon_pid=$!
  local addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$work/daemon.log")
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "daemon never reported its address"; cat "$work/daemon.log"; exit 1
  fi

  echo "==== [daemon] client solves via $addr"
  "$cli" client "$addr" --jobs="$work/queries" > "$work/client.out"
  grep -q '^\[1\] certain' "$work/client.out"
  grep -q '^\[2\] not-certain' "$work/client.out"
  "$cli" client "$addr" --health | grep -q '"status":"serving"'
  "$cli" client "$addr" --stats | grep -q '"solves_admitted":2'

  echo "==== [daemon] SIGTERM drain"
  kill -TERM "$daemon_pid"
  local rc=0
  wait "$daemon_pid" || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "daemon exited $rc (expected 0: clean drain)"
    cat "$work/daemon.log"; exit 1
  fi
  grep -q 'draining' "$work/daemon.log"
  echo "==== [daemon] OK (clean drain, exit 0)"
}

# Cache smoke against the tier-1 build: a fresh daemon (cache on by
# default) serves the identical job twice. The second run must be answered
# from the result cache — one hit, one miss in the stats frame — which
# also exercises the read-your-writes guarantee over a real socket.
cache_smoke() {
  local cli=build/tools/cqa_cli
  [ -x "$cli" ] || { echo "cache smoke needs a tier-1 build ($cli)"; exit 2; }
  local work; work=$(mktemp -d)
  trap 'rm -rf "$work"' RETURN
  printf 'R(a | b), R(a | c)\nS(b | a)\n' > "$work/facts"
  printf 'R(x | y), not S(y | x)\n' > "$work/job"

  echo "==== [cache] start daemon"
  build/tools/cqa_cli serve "$work/facts" --listen=127.0.0.1:0 --workers=2 \
      > "$work/daemon.log" 2>&1 &
  local daemon_pid=$!
  local addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$work/daemon.log")
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "daemon never reported its address"; cat "$work/daemon.log"; exit 1
  fi

  echo "==== [cache] same job twice via $addr"
  "$cli" client "$addr" --jobs="$work/job" > "$work/first.out"
  grep -q '^\[1\] not-certain' "$work/first.out"
  "$cli" client "$addr" --jobs="$work/job" > "$work/second.out"
  grep -q '^\[1\] not-certain' "$work/second.out"
  "$cli" client "$addr" --stats > "$work/stats.out"
  grep -q '"cache_hits":1' "$work/stats.out"
  grep -q '"cache_misses":1' "$work/stats.out"

  kill -TERM "$daemon_pid"
  local rc=0
  wait "$daemon_pid" || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "daemon exited $rc (expected 0: clean drain)"
    cat "$work/daemon.log"; exit 1
  fi
  echo "==== [cache] OK (repeat served from cache: 1 hit, 1 miss)"
}

# Multi-database smoke against the tier-1 build: one daemon, two attached
# databases with contradictory verdicts on the same query text, routed by
# the solve frame's "db" field. Also round-trips the attach/detach/list
# admin surface over the wire and asserts SIGTERM drains every shard.
multidb_smoke() {
  local cli=build/tools/cqa_cli
  [ -x "$cli" ] || { echo "multidb smoke needs a tier-1 build ($cli)"; exit 2; }
  local work; work=$(mktemp -d)
  trap 'rm -rf "$work"' RETURN
  # The differential pair: identical query text, opposite verdicts.
  printf 'R(a | b), R(a | c)\nS(b | a)\n' > "$work/facts_a"
  printf 'R(a | b), R(a | c)\nS(z | z)\n' > "$work/facts_b"
  printf 'R(x | y), not S(y | x)\n' > "$work/job"

  echo "==== [multidb] start daemon with two databases"
  "$cli" serve --listen=127.0.0.1:0 --shard-workers=2 \
      --db=a="$work/facts_a" --db=b="$work/facts_b" \
      > "$work/daemon.log" 2>&1 &
  local daemon_pid=$!
  local addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$work/daemon.log")
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "daemon never reported its address"; cat "$work/daemon.log"; exit 1
  fi

  echo "==== [multidb] contradictory verdicts route by db via $addr"
  "$cli" client "$addr" --db=a --jobs="$work/job" > "$work/a.out"
  grep -q '^\[1\] not-certain' "$work/a.out"
  "$cli" client "$addr" --db=b --jobs="$work/job" > "$work/b.out"
  grep -q '^\[1\] certain' "$work/b.out"
  # No "db" field falls back to the default instance (first attached).
  "$cli" client "$addr" --jobs="$work/job" > "$work/default.out"
  grep -q '^\[1\] not-certain' "$work/default.out"

  echo "==== [multidb] attach/detach/list round trip"
  "$cli" admin "$addr" list > "$work/list1.out"
  grep -q '"name":"a"' "$work/list1.out"
  grep -q '"name":"b"' "$work/list1.out"
  "$cli" admin "$addr" attach c "$work/facts_b" > "$work/attach.out"
  grep -q '"type":"attach_ack"' "$work/attach.out"
  "$cli" client "$addr" --db=c --jobs="$work/job" > "$work/c.out"
  grep -q '^\[1\] certain' "$work/c.out"
  "$cli" admin "$addr" detach c > "$work/detach.out"
  grep -q '"type":"detach_ack"' "$work/detach.out"
  grep -q '"drained":true' "$work/detach.out"
  # Solves for a detached instance fail typed, and the siblings still serve.
  if "$cli" client "$addr" --db=c --jobs="$work/job" > "$work/gone.out"; then
    echo "solve against a detached database should fail"; exit 1
  fi
  grep -q 'detached' "$work/gone.out"
  "$cli" client "$addr" --db=b --jobs="$work/job" | grep -q '^\[1\] certain'
  "$cli" client "$addr" --stats > "$work/stats.out"
  grep -q '"databases_attached":1' "$work/stats.out"
  grep -q '"databases_detached":1' "$work/stats.out"

  echo "==== [multidb] SIGTERM drains every shard"
  kill -TERM "$daemon_pid"
  local rc=0
  wait "$daemon_pid" || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "daemon exited $rc (expected 0: clean drain)"
    cat "$work/daemon.log"; exit 1
  fi
  grep -q 'draining' "$work/daemon.log"
  echo "==== [multidb] OK (per-db routing, admin round trip, clean drain)"
}

# Sandbox smoke against the tier-1 build: a live daemon running solves in
# forked, supervised children. A wedged solve (blocks between budget
# probes, immune to cooperative cancellation) must be hard-killed within
# the kill grace while a sibling in-process solve completes on the other
# worker; an injected SIGSEGV must surface as a typed worker-crashed error
# with the daemon still answering; SIGTERM must drain cleanly with every
# child reaped.
sandbox_smoke() {
  local cli=build/tools/cqa_cli
  [ -x "$cli" ] || { echo "sandbox smoke needs a tier-1 build ($cli)"; exit 2; }
  local work; work=$(mktemp -d)
  trap 'rm -rf "$work"' RETURN
  printf 'R(a | b), R(a | c)\nS(b | a)\n' > "$work/facts"
  printf 'R(x | y), not S(y | x)\n' > "$work/hard_job"
  printf 'R(x | y)\n' > "$work/fo_job"

  echo "==== [sandbox] start daemon (auto isolation, 300ms kill grace)"
  "$cli" serve "$work/facts" --listen=127.0.0.1:0 --workers=2 \
      --isolation=auto --kill-grace-ms=300 \
      > "$work/daemon.log" 2>&1 &
  local daemon_pid=$!
  local addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$work/daemon.log")
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "daemon never reported its address"; cat "$work/daemon.log"; exit 1
  fi

  echo "==== [sandbox] wedged fork is hard-killed while a sibling answers"
  local t0; t0=$(date +%s%N)
  "$cli" client "$addr" --jobs="$work/hard_job" --isolation=fork \
      --method=backtracking --timeout-ms=200 --wedge-after=1 \
      --cache=bypass > "$work/wedge.out" 2>&1 &
  local wedge_pid=$!
  # While the wedge hangs one worker, the other must keep serving inproc.
  "$cli" client "$addr" --jobs="$work/fo_job" --isolation=inproc \
      > "$work/sibling.out"
  grep -q '^\[1\] certain' "$work/sibling.out"
  local wedge_rc=0
  wait "$wedge_pid" || wedge_rc=$?
  local t1; t1=$(date +%s%N)
  if [ "$wedge_rc" -eq 0 ]; then
    echo "wedged solve should not succeed"; cat "$work/wedge.out"; exit 1
  fi
  grep -q 'deadline' "$work/wedge.out"
  # 200ms timeout + 300ms grace; generous slack for a loaded CI host, but
  # far below the "wedged forever" failure mode this guards against.
  local elapsed_ms=$(( (t1 - t0) / 1000000 ))
  if [ "$elapsed_ms" -ge 5000 ]; then
    echo "wedged solve held its worker for ${elapsed_ms}ms"; exit 1
  fi

  echo "==== [sandbox] injected SIGSEGV is contained"
  local crash_rc=0
  "$cli" client "$addr" --jobs="$work/hard_job" --isolation=fork \
      --method=backtracking --crash-after=1 --cache=bypass \
      > "$work/crash.out" 2>&1 || crash_rc=$?
  if [ "$crash_rc" -eq 0 ]; then
    echo "crashing solve should not succeed"; cat "$work/crash.out"; exit 1
  fi
  grep -q 'worker-crashed' "$work/crash.out"
  "$cli" client "$addr" --health | grep -q '"status":"serving"'
  "$cli" client "$addr" --jobs="$work/fo_job" | grep -q '^\[1\] certain'
  "$cli" client "$addr" --stats > "$work/stats.out"
  grep -q '"sandbox_crashes":1' "$work/stats.out"
  grep -q '"sandbox_kills":1' "$work/stats.out"

  echo "==== [sandbox] SIGTERM drain reaps every child"
  kill -TERM "$daemon_pid"
  local rc=0
  wait "$daemon_pid" || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "daemon exited $rc (expected 0: clean drain)"
    cat "$work/daemon.log"; exit 1
  fi
  grep -q 'draining' "$work/daemon.log"
  echo "==== [sandbox] OK (hard preemption, crash containment, clean drain)"
}

# Recovery smoke against the tier-1 build: crash-safe live updates. The
# journal is written with fsync-per-append, so every acked delta must
# survive a SIGKILL at an arbitrary point in an apply stream plus trailing
# journal garbage, and recovery must converge to the clean-application
# state (same fingerprint, same verdict).
recovery_smoke() {
  local cli=build/tools/cqa_cli
  [ -x "$cli" ] || { echo "recovery smoke needs a tier-1 build ($cli)"; exit 2; }
  local work; work=$(mktemp -d)
  trap 'rm -rf "$work"' RETURN
  printf 'R(a | b), R(a | c)\nS(b | a)\nT(t0 | u0)\n' > "$work/facts"
  printf 'R(x | y), not S(y | x)\n' > "$work/job"
  # delta 1 flips the job's verdict; the rest grow T so every delta moves
  # the fingerprint.
  printf -- '-S(b, a)\n+R(d | e)\n' > "$work/delta1"
  local i
  for i in $(seq 2 8); do
    printf -- '+T(t%d | u%d)\n' "$i" "$i" > "$work/delta$i"
  done

  # Starts a daemon ($1 = log file, rest = args) in this shell — not a
  # command substitution, so the pid stays `wait`-able — and leaves its
  # address in $log.addr and its pid in $log.pid.
  start_daemon() {
    local log="$1"; shift
    "$cli" serve "$@" > "$log" 2>&1 &
    echo $! > "$log.pid"
    local addr=""
    for _ in $(seq 1 100); do
      addr=$(sed -n 's/^listening on //p' "$log")
      [ -n "$addr" ] && break
      kill -0 "$(cat "$log.pid")" 2>/dev/null || break
      sleep 0.1
    done
    if [ -z "$addr" ]; then
      echo "daemon never reported its address" >&2; cat "$log" >&2; exit 1
    fi
    echo "$addr" > "$log.addr"
  }

  echo "==== [recovery] start daemon with a write-ahead journal"
  start_daemon "$work/daemon.log" "$work/facts" --listen=127.0.0.1:0 \
      --workers=2 --journal-dir="$work/journal" --journal-fsync=always
  local addr; addr=$(cat "$work/daemon.log.addr")
  local daemon_pid; daemon_pid=$(cat "$work/daemon.log.pid")
  "$cli" client "$addr" --jobs="$work/job" | grep -q '^\[1\] not-certain'

  echo "==== [recovery] SIGKILL mid-stream of acked deltas"
  ( for i in $(seq 1 8); do
      "$cli" admin "$addr" apply default "$work/delta$i" --delta-id="d$i" \
        >> "$work/acks.out" 2>/dev/null || break
      sleep 0.05
    done ) &
  local stream_pid=$!
  sleep 0.2
  kill -9 "$daemon_pid"
  wait "$stream_pid" 2>/dev/null || true
  wait "$daemon_pid" 2>/dev/null || true
  local acked
  acked=$(grep -c '"type":"delta_ack"' "$work/acks.out" || true)
  echo "==== [recovery] $acked deltas acked before the kill"

  # A torn tail: raw garbage past the last fsynced record, as a crash mid-
  # append would leave. Recovery must truncate it, not reject the journal.
  printf 'GARBAGE-TORN-TAIL' >> "$work/journal/default.journal"

  echo "==== [recovery] restart over the same base snapshot"
  start_daemon "$work/daemon2.log" "$work/facts" --listen=127.0.0.1:0 \
      --workers=2 --journal-dir="$work/journal" --journal-fsync=always
  addr=$(cat "$work/daemon2.log.addr")
  local recovered_pid; recovered_pid=$(cat "$work/daemon2.log.pid")

  echo "==== [recovery] every acked delta re-acks idempotently"
  for i in $(seq 1 "$acked"); do
    "$cli" admin "$addr" apply default "$work/delta$i" --delta-id="d$i" \
        > "$work/reack$i.out"
    grep -q '"applied":false' "$work/reack$i.out" || {
      echo "acked delta d$i was lost by recovery"; cat "$work/reack$i.out"
      exit 1
    }
  done

  echo "==== [recovery] converge both daemons on the full delta set"
  start_daemon "$work/daemon3.log" "$work/facts" \
      --listen=127.0.0.1:0 --workers=2
  local clean_addr; clean_addr=$(cat "$work/daemon3.log.addr")
  local clean_pid; clean_pid=$(cat "$work/daemon3.log.pid")
  for i in $(seq 1 8); do
    "$cli" admin "$addr" apply default "$work/delta$i" --delta-id="d$i" \
        > /dev/null
    "$cli" admin "$clean_addr" apply default "$work/delta$i" \
        --delta-id="d$i" > /dev/null
  done
  local fp_recovered fp_clean
  fp_recovered=$("$cli" admin "$addr" list \
      | sed -n 's/.*"fingerprint":"\([0-9a-f]*\)".*/\1/p')
  fp_clean=$("$cli" admin "$clean_addr" list \
      | sed -n 's/.*"fingerprint":"\([0-9a-f]*\)".*/\1/p')
  if [ -z "$fp_recovered" ] || [ "$fp_recovered" != "$fp_clean" ]; then
    echo "recovered fingerprint '$fp_recovered' != clean '$fp_clean'"
    exit 1
  fi
  "$cli" client "$addr" --jobs="$work/job" > "$work/recovered.out"
  "$cli" client "$clean_addr" --jobs="$work/job" > "$work/clean.out"
  grep -q '^\[1\] certain' "$work/recovered.out"
  grep -q '^\[1\] certain' "$work/clean.out"

  echo "==== [recovery] SIGTERM drains both daemons"
  kill -TERM "$recovered_pid" "$clean_pid"
  local rc=0
  wait "$recovered_pid" || rc=$?
  [ "$rc" -eq 0 ] || { echo "recovered daemon exited $rc"; exit 1; }
  rc=0
  wait "$clean_pid" || rc=$?
  [ "$rc" -eq 0 ] || { echo "clean daemon exited $rc"; exit 1; }
  echo "==== [recovery] OK ($acked acked deltas survived SIGKILL +" \
       "torn tail; fingerprint $fp_recovered matches clean application)"
}

# Failover smoke against the tier-1 build: warm-standby replication. A
# primary with a group-fsync journal feeds a follower over the replication
# stream; the primary is SIGKILLed mid-stream of acked deltas; the follower
# is promoted and must (a) re-ack or freshly apply every delta the dead
# primary acked — never refuse one — and (b) converge to fingerprint and
# verdict parity with a clean application of the full delta set.
failover_smoke() {
  local cli=build/tools/cqa_cli
  [ -x "$cli" ] || { echo "failover smoke needs a tier-1 build ($cli)"; exit 2; }
  local work; work=$(mktemp -d)
  trap 'rm -rf "$work"' RETURN
  printf 'R(a | b), R(a | c)\nS(b | a)\nT(t0 | u0)\n' > "$work/facts"
  printf 'R(x | y), not S(y | x)\n' > "$work/job"
  printf -- '-S(b, a)\n+R(d | e)\n' > "$work/delta1"
  local i
  for i in $(seq 2 8); do
    printf -- '+T(t%d | u%d)\n' "$i" "$i" > "$work/delta$i"
  done

  start_daemon() {
    local log="$1"; shift
    "$cli" serve "$@" > "$log" 2>&1 &
    echo $! > "$log.pid"
    local addr=""
    for _ in $(seq 1 100); do
      addr=$(sed -n 's/^listening on //p' "$log")
      [ -n "$addr" ] && break
      kill -0 "$(cat "$log.pid")" 2>/dev/null || break
      sleep 0.1
    done
    if [ -z "$addr" ]; then
      echo "daemon never reported its address" >&2; cat "$log" >&2; exit 1
    fi
    echo "$addr" > "$log.addr"
  }

  echo "==== [failover] start primary (group fsync) and follower"
  start_daemon "$work/primary.log" "$work/facts" --listen=127.0.0.1:0 \
      --workers=2 --journal-dir="$work/pjournal" --journal-fsync=group
  local paddr; paddr=$(cat "$work/primary.log.addr")
  local primary_pid; primary_pid=$(cat "$work/primary.log.pid")
  start_daemon "$work/follower.log" --listen=127.0.0.1:0 --workers=2 \
      --journal-dir="$work/fjournal" --journal-fsync=group --follow="$paddr"
  local faddr; faddr=$(cat "$work/follower.log.addr")
  local follower_pid; follower_pid=$(cat "$work/follower.log.pid")

  echo "==== [failover] wait for the replication bootstrap"
  local bootstrapped=""
  for _ in $(seq 1 100); do
    if "$cli" admin "$faddr" list 2>/dev/null | grep -q '"default"'; then
      bootstrapped=yes; break
    fi
    sleep 0.1
  done
  [ -n "$bootstrapped" ] || {
    echo "follower never bootstrapped"; cat "$work/follower.log"; exit 1
  }
  "$cli" client "$faddr" --jobs="$work/job" | grep -q '^\[1\] not-certain'

  echo "==== [failover] follower refuses writes while following"
  if "$cli" admin "$faddr" apply default "$work/delta1" --delta-id=refused \
      > "$work/refused.out" 2>&1; then
    echo "follower accepted a write before promotion"; exit 1
  fi
  grep -q 'read-only' "$work/refused.out" || {
    echo "expected a typed read-only refusal"; cat "$work/refused.out"; exit 1
  }

  echo "==== [failover] SIGKILL primary mid-stream of acked deltas"
  ( for i in $(seq 1 8); do
      "$cli" admin "$paddr" apply default "$work/delta$i" --delta-id="d$i" \
        >> "$work/acks.out" 2>/dev/null || break
      sleep 0.05
    done ) &
  local stream_pid=$!
  sleep 0.2
  kill -9 "$primary_pid"
  wait "$stream_pid" 2>/dev/null || true
  wait "$primary_pid" 2>/dev/null || true
  local acked
  acked=$(grep -c '"type":"delta_ack"' "$work/acks.out" || true)
  echo "==== [failover] $acked deltas acked before the kill"

  echo "==== [failover] promote the follower"
  "$cli" admin "$faddr" promote > "$work/promote.out"
  grep -q '"type":"promote_ack"' "$work/promote.out" || {
    echo "promote failed"; cat "$work/promote.out"; exit 1
  }
  grep -q '"was_follower":true' "$work/promote.out" || {
    echo "daemon claims it was never a follower"; cat "$work/promote.out"
    exit 1
  }

  echo "==== [failover] no acked delta is refused by the promoted daemon"
  for i in $(seq 1 "$acked"); do
    "$cli" admin "$faddr" apply default "$work/delta$i" --delta-id="d$i" \
        > "$work/reack$i.out" || {
      echo "acked delta d$i was refused after failover"; cat "$work/reack$i.out"
      exit 1
    }
    grep -q '"type":"delta_ack"' "$work/reack$i.out" || {
      echo "acked delta d$i did not re-ack"; cat "$work/reack$i.out"; exit 1
    }
  done

  echo "==== [failover] converge on the full set and check parity"
  start_daemon "$work/clean.log" "$work/facts" --listen=127.0.0.1:0 --workers=2
  local clean_addr; clean_addr=$(cat "$work/clean.log.addr")
  local clean_pid; clean_pid=$(cat "$work/clean.log.pid")
  for i in $(seq 1 8); do
    "$cli" admin "$faddr" apply default "$work/delta$i" --delta-id="d$i" \
        > /dev/null
    "$cli" admin "$clean_addr" apply default "$work/delta$i" \
        --delta-id="d$i" > /dev/null
  done
  local fp_failover fp_clean
  fp_failover=$("$cli" admin "$faddr" list \
      | sed -n 's/.*"fingerprint":"\([0-9a-f]*\)".*/\1/p')
  fp_clean=$("$cli" admin "$clean_addr" list \
      | sed -n 's/.*"fingerprint":"\([0-9a-f]*\)".*/\1/p')
  if [ -z "$fp_failover" ] || [ "$fp_failover" != "$fp_clean" ]; then
    echo "failover fingerprint '$fp_failover' != clean '$fp_clean'"
    exit 1
  fi
  "$cli" client "$faddr" --jobs="$work/job" | grep -q '^\[1\] certain'
  "$cli" client "$clean_addr" --jobs="$work/job" | grep -q '^\[1\] certain'

  echo "==== [failover] SIGTERM drains the promoted daemon"
  kill -TERM "$follower_pid" "$clean_pid"
  local rc=0
  wait "$follower_pid" || rc=$?
  [ "$rc" -eq 0 ] || { echo "promoted daemon exited $rc"; exit 1; }
  rc=0
  wait "$clean_pid" || rc=$?
  [ "$rc" -eq 0 ] || { echo "clean daemon exited $rc"; exit 1; }
  echo "==== [failover] OK ($acked acked deltas survived the primary's" \
       "death; fingerprint $fp_failover matches clean application)"
}

# Parallel parity smoke against the tier-1 build: record a mixed-tenant
# trace (deterministically — the same seed must produce the same bytes),
# then replay it open-loop against two fresh daemons, one forcing every
# request to --parallelism=1 (the sequential baseline) and one to
# --parallelism=8 (component-decomposed fan-out). The verdict transcripts
# must be byte-for-byte identical, and the width-8 daemon's stats must
# show the parallel counters moving. Caching is off so every replayed
# request genuinely runs its solve path.
parallel_smoke() {
  local cli=build/tools/cqa_cli
  local bt=build/bench/bench_trace
  [ -x "$cli" ] || { echo "parallel smoke needs a tier-1 build ($cli)"; exit 2; }
  [ -x "$bt" ] || { echo "parallel smoke needs a tier-1 build ($bt)"; exit 2; }
  local work; work=$(mktemp -d)
  trap 'rm -rf "$work"' RETURN

  echo "==== [parallel] trace generator is byte-deterministic from its seed"
  "$bt" --record="$work/a.trace" --seed=11 --requests=160 > "$work/rec1.out"
  "$bt" --record="$work/b.trace" --seed=11 --requests=160 > "$work/rec2.out"
  cmp "$work/a.trace" "$work/b.trace"
  grep -q 'crc32c=' "$work/rec1.out"

  start_daemon() {
    local log="$1"; shift
    "$cli" serve "$@" > "$log" 2>&1 &
    echo $! > "$log.pid"
    local addr=""
    for _ in $(seq 1 100); do
      addr=$(sed -n 's/^listening on //p' "$log")
      [ -n "$addr" ] && break
      kill -0 "$(cat "$log.pid")" 2>/dev/null || break
      sleep 0.1
    done
    if [ -z "$addr" ]; then
      echo "daemon never reported its address" >&2; cat "$log" >&2; exit 1
    fi
    echo "$addr" > "$log.addr"
  }

  printf 'R(a | b), R(a | c)\nS(b | a)\n' > "$work/facts"

  echo "==== [parallel] replay at parallelism 1 (sequential baseline)"
  start_daemon "$work/d1.log" "$work/facts" --listen=127.0.0.1:0 \
      --workers=4 --queue-cap=4096 --no-cache
  local addr1; addr1=$(cat "$work/d1.log.addr")
  local pid1; pid1=$(cat "$work/d1.log.pid")
  "$bt" --replay="$work/a.trace" --connect="$addr1" --parallelism=1 \
      --transcript="$work/p1.transcript" > "$work/p1.out"
  kill -TERM "$pid1"
  local rc=0
  wait "$pid1" || rc=$?
  [ "$rc" -eq 0 ] || { echo "p1 daemon exited $rc"; cat "$work/d1.log"; exit 1; }

  echo "==== [parallel] replay at parallelism 8 (component fan-out)"
  start_daemon "$work/d8.log" "$work/facts" --listen=127.0.0.1:0 \
      --workers=4 --queue-cap=4096 --no-cache
  local addr8; addr8=$(cat "$work/d8.log.addr")
  local pid8; pid8=$(cat "$work/d8.log.pid")
  "$bt" --replay="$work/a.trace" --connect="$addr8" --parallelism=8 \
      --transcript="$work/p8.transcript" > "$work/p8.out"
  "$cli" client "$addr8" --stats > "$work/stats.out"
  grep -q '"parallel_solves":[1-9]' "$work/stats.out"
  grep -q '"components_found":[1-9]' "$work/stats.out"
  kill -TERM "$pid8"
  rc=0
  wait "$pid8" || rc=$?
  [ "$rc" -eq 0 ] || { echo "p8 daemon exited $rc"; cat "$work/d8.log"; exit 1; }

  echo "==== [parallel] transcripts must be byte-for-byte identical"
  cmp "$work/p1.transcript" "$work/p8.transcript"
  [ -s "$work/p1.transcript" ] || { echo "empty transcript"; exit 1; }
  echo "==== [parallel] OK (deterministic trace; parity across widths 1/8)"
}

# Answer-stream smoke against the tier-1 build: the chunked enumerator
# must tile the one-shot certain-answer list exactly (locally and over
# the wire), a client hung up mid-stream must resume from its persisted
# cursor with no holes and no duplicates, and an apply_delta epoch flip
# must refuse the stale cursor with a typed error while a fresh stream
# serves the post-delta answers.
answers_smoke() {
  local cli=build/tools/cqa_cli
  [ -x "$cli" ] || { echo "answers smoke needs a tier-1 build ($cli)"; exit 2; }
  local work; work=$(mktemp -d)
  trap 'rm -rf "$work"' RETURN

  # 60 keys, every 4th blocked by a matching S fact: 45 certain answers.
  local i k
  : > "$work/facts"
  for i in $(seq 0 59); do
    k=$(printf 'k%02d' "$i")
    printf 'R(%s | %s)\n' "$k" "$k" >> "$work/facts"
    [ $((i % 4)) -eq 0 ] && printf 'S(%s | %s)\n' "$k" "$k" >> "$work/facts"
  done
  local query='R(x | y), not S(x | y)'

  echo "==== [answers] chunked local enumeration tiles the one-shot list"
  "$cli" answers "$query" "$work/facts" --free=x \
      > "$work/oneshot.out" 2>/dev/null
  [ "$(wc -l < "$work/oneshot.out")" -eq 45 ] \
      || { echo "expected 45 certain answers"; exit 1; }
  "$cli" answers "$query" "$work/facts" --free=x --max-chunk=7 \
      > "$work/chunked.out" 2>/dev/null
  cmp "$work/oneshot.out" "$work/chunked.out"

  start_daemon() {
    local log="$1"; shift
    "$cli" serve "$@" > "$log" 2>&1 &
    echo $! > "$log.pid"
    local addr=""
    for _ in $(seq 1 100); do
      addr=$(sed -n 's/^listening on //p' "$log")
      [ -n "$addr" ] && break
      kill -0 "$(cat "$log.pid")" 2>/dev/null || break
      sleep 0.1
    done
    if [ -z "$addr" ]; then
      echo "daemon never reported its address" >&2; cat "$log" >&2; exit 1
    fi
    echo "$addr" > "$log.addr"
  }

  start_daemon "$work/daemon.log" "$work/facts" --listen=127.0.0.1:0 \
      --workers=2
  local addr; addr=$(cat "$work/daemon.log.addr")
  local daemon_pid; daemon_pid=$(cat "$work/daemon.log.pid")

  echo "==== [answers] wire stream matches the one-shot list byte for byte"
  "$cli" client "$addr" --answers="$query" --free=x --max-chunk=7 \
      > "$work/full.out" 2> "$work/full.err"
  cmp "$work/oneshot.out" "$work/full.out"
  grep -q -- '-- 45 answers in 7 chunks' "$work/full.err"

  echo "==== [answers] hang up after 3 chunks, resume from the cursor file"
  "$cli" client "$addr" --answers="$query" --free=x --max-chunk=7 \
      --chunks=3 --cursor-file="$work/cursor" \
      > "$work/part1.out" 2>/dev/null
  [ -s "$work/cursor" ] || { echo "no cursor persisted"; exit 1; }
  grep -q '^cqa1' "$work/cursor"
  "$cli" client "$addr" --answers="$query" --free=x --max-chunk=7 \
      --resume --cursor-file="$work/cursor" \
      > "$work/part2.out" 2>/dev/null
  cat "$work/part1.out" "$work/part2.out" > "$work/stitched.out"
  cmp "$work/oneshot.out" "$work/stitched.out"

  echo "==== [answers] apply_delta flips the epoch; the old cursor is stale"
  printf -- '+R(zz | zz)\n' > "$work/delta"
  "$cli" admin "$addr" apply default "$work/delta" --delta-id=a1 > /dev/null
  if "$cli" client "$addr" --answers="$query" --free=x \
      --resume --cursor-file="$work/cursor" \
      > "$work/stale.out" 2> "$work/stale.err"; then
    echo "stale cursor was accepted after an epoch flip"; exit 1
  fi
  grep -q 'stale-cursor' "$work/stale.err"
  [ -s "$work/stale.out" ] && { echo "stale stream emitted rows"; exit 1; }

  echo "==== [answers] a fresh stream serves the post-delta answers"
  "$cli" client "$addr" --answers="$query" --free=x --max-chunk=7 \
      > "$work/fresh.out" 2>/dev/null
  [ "$(wc -l < "$work/fresh.out")" -eq 46 ] \
      || { echo "expected 46 post-delta answers"; exit 1; }
  grep -q '^(zz)$' "$work/fresh.out"

  echo "==== [answers] stream counters are visible in the stats frame"
  "$cli" client "$addr" --stats > "$work/stats.out"
  grep -q '"answers_streams":[1-9]' "$work/stats.out"
  grep -q '"answers_resumed":[1-9]' "$work/stats.out"
  grep -q '"answer_chunks_sent":[1-9]' "$work/stats.out"
  grep -q '"answers_stale_cursors":1' "$work/stats.out"

  echo "==== [answers] SIGTERM drains the daemon"
  kill -TERM "$daemon_pid"
  local rc=0
  wait "$daemon_pid" || rc=$?
  [ "$rc" -eq 0 ] || { echo "daemon exited $rc"; cat "$work/daemon.log"; exit 1; }
  echo "==== [answers] OK (chunk tiling, cursor resume, typed staleness)"
}

for stage in "${stages[@]}"; do
  case "$stage" in
    tier1) run_stage tier1 default default default ;;
    asan)  run_stage asan-ubsan asan-ubsan asan-ubsan asan-ubsan ;;
    tsan)  run_stage tsan tsan tsan tsan ;;
    daemon) daemon_smoke ;;
    cache) cache_smoke ;;
    multidb) multidb_smoke ;;
    sandbox) sandbox_smoke ;;
    recovery) recovery_smoke ;;
    failover) failover_smoke ;;
    parallel) parallel_smoke ;;
    answers) answers_smoke ;;
    *) echo "unknown stage '$stage'" \
            "(want: tier1 asan tsan daemon cache multidb sandbox recovery" \
            "failover parallel answers)" >&2
       exit 2 ;;
  esac
done
echo "==== CI OK (${stages[*]})"
