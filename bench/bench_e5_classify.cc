// E5 — Theorem 4.3 / Examples 4.1–4.6: attack-graph classification.
//
// Reproduces: (i) the classification of every named query in the paper
// (q0, q1, q2, q3, q_Hall, qa, qb, the cyclic poll queries, q4); (ii) the
// claim that FO-membership is decidable in polynomial time in |q| — the
// table shows attack-graph construction time growing polynomially on chain
// queries of increasing size; (iii) classification statistics over a large
// random weakly-guarded query population.

#include "bench_util.h"
#include "cqa/attack/attack_graph.h"
#include "cqa/attack/classification.h"
#include "cqa/gen/poll.h"
#include "cqa/gen/random_query.h"
#include "cqa/query/parser.h"
#include "cqa/reductions/bpm.h"
#include "cqa/reductions/hall_covering.h"
#include "cqa/reductions/q4.h"
#include "cqa/reductions/ufa.h"

namespace cqa {
namespace {

// R1(x1|x2), R2(x2|x3), ..., Rk(xk|x_{k+1}), plus a final negated atom
// guarded by the last positive one.
Query ChainQuery(int k) {
  std::vector<Literal> literals;
  for (int i = 0; i < k; ++i) {
    literals.push_back(Pos(Atom("C" + std::to_string(i), 1,
                                {Term::Var("x" + std::to_string(i)),
                                 Term::Var("x" + std::to_string(i + 1))})));
  }
  literals.push_back(Neg(Atom("CN", 1,
                              {Term::Var("x" + std::to_string(k - 1)),
                               Term::Var("x" + std::to_string(k))})));
  return Query::MakeOrDie(std::move(literals));
}

void Table() {
  benchutil::Header("E5", "classification of CERTAINTY(q) "
                          "(Theorem 4.3, Examples 4.1-4.6)");

  struct Named {
    const char* name;
    Query q;
    const char* expected;
  };
  const Named named[] = {
      {"q0  = {R(x|y), S(y|x)}", *ParseQuery("R(x | y), S(y | x)"),
       "L-hard"},
      {"q1  = {R(x|y), !S(y|x)}", MakeQ1(), "NL-hard (Lemma 5.2)"},
      {"q2  = {R(x,y), !S(x|y), !T(y|x)}", MakeQ2(), "L-hard (Lemma 5.3)"},
      {"q3  = {P(x|y), !N(c|y)}", *ParseQuery("P(x | y), not N('c' | y)"),
       "in FO (Example 4.5)"},
      {"q41 = Example 4.1", *ParseQuery("P(x, y), not R(x | y), not S(y | x)"),
       "L-hard (Lemma 5.7)"},
      {"qHall(3)", MakeHallQuery(3), "in FO (Figure 2)"},
      {"poll q1 (mayor/lives)", PollQ1(), "not in FO"},
      {"poll q2 (likes/lives/mayor)", PollQ2(), "not in FO"},
      {"poll qa", PollQa(), "in FO"},
      {"poll qb", PollQb(), "in FO"},
      {"q4  = Example 7.1", MakeQ4(), "outside Theorem 4.3 (in FO by E3)"},
  };
  std::printf("%-34s %-6s %-8s %-22s %s\n", "query", "WG?", "acyclic",
              "classification", "paper");
  for (const Named& n : named) {
    Classification c = Classify(n.q);
    std::printf("%-34s %-6s %-8s %-22s %s\n", n.name,
                c.weakly_guarded ? "yes" : "no",
                c.attack_graph_acyclic ? "yes" : "no",
                ToString(c.cls).c_str(), n.expected);
  }

  std::printf("\nPTIME decidability: attack graph + classification on chain "
              "queries\n%-8s %-10s\n", "atoms", "t_us");
  for (int k : {2, 4, 8, 16, 32, 64}) {
    Query q = ChainQuery(k);
    double t = benchutil::MedianTimeUs(5, [&] {
      benchmark::DoNotOptimize(Classify(q).cls);
    });
    std::printf("%-8d %-10.1f\n", k + 1, t);
  }

  std::printf("\nrandom weakly-guarded population (n = 5000):\n");
  Rng rng(71);
  RandomQueryOptions opts;
  int counts[4] = {0, 0, 0, 0};
  double t_total = benchutil::TimeUs([&] {
    for (int i = 0; i < 5000; ++i) {
      Classification c = Classify(GenerateRandomQuery(opts, &rng));
      ++counts[static_cast<int>(c.cls)];
    }
  });
  std::printf("  in FO: %d, L-hard: %d, NL-hard: %d, unknown: %d "
              "(%.1f us/query incl. generation)\n\n",
              counts[0], counts[1], counts[2], counts[3], t_total / 5000);
}

void BM_ClassifyNamed(benchmark::State& state) {
  Query q = MakeHallQuery(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Classify(q).cls);
  }
}
BENCHMARK(BM_ClassifyNamed);

void BM_AttackGraphChain(benchmark::State& state) {
  Query q = ChainQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(AttackGraph(q).IsAcyclic());
  }
}
BENCHMARK(BM_AttackGraphChain)->Arg(4)->Arg(16)->Arg(64);

void BM_ClassifyRandom(benchmark::State& state) {
  Rng rng(73);
  RandomQueryOptions opts;
  std::vector<Query> pool;
  for (int i = 0; i < 64; ++i) pool.push_back(GenerateRandomQuery(opts, &rng));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Classify(pool[i++ % pool.size()]).cls);
  }
}
BENCHMARK(BM_ClassifyRandom);

}  // namespace
}  // namespace cqa

CQA_BENCH_MAIN(cqa::Table)
