// E7 — Lemmas 5.4, 5.6, 5.7: the generic hardness-transfer reductions,
// executed end to end.
//
// Reproduces: the paper's reduction machinery as *runnable code* — the
// negated-atom-dropping reduction of Lemma 5.4 and the Θᵃᵇ fact-mapping
// reductions of Lemmas 5.6/5.7 — validated on random instances by checking
// that certainty is preserved (exact solvers on both sides), and timed.

#include "bench_util.h"
#include "cqa/base/rng.h"
#include "cqa/certainty/backtracking.h"
#include "cqa/certainty/naive.h"
#include "cqa/gen/random_db.h"
#include "cqa/query/parser.h"
#include "cqa/reductions/bpm.h"
#include "cqa/reductions/lemma54.h"
#include "cqa/reductions/theta.h"

namespace cqa {
namespace {

Database RandomQ1Db(Rng* rng, int m, int n, double p) {
  Schema s;
  s.AddRelationOrDie("R", 2, 1);
  s.AddRelationOrDie("S", 2, 1);
  Database db(s);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      Value a = Value::Of("a" + std::to_string(i));
      Value b = Value::Of("b" + std::to_string(j));
      if (rng->Chance(p)) db.AddFactOrDie("R", {a, b});
      if (rng->Chance(p)) db.AddFactOrDie("S", {b, a});
    }
  }
  return db;
}

Database RandomQ2Db(Rng* rng, int m, int n, double p) {
  Schema s;
  s.AddRelationOrDie("T", 2, 2);
  s.AddRelationOrDie("R", 2, 1);
  s.AddRelationOrDie("S", 2, 1);
  Database db(s);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      Value a = Value::Of("a" + std::to_string(i));
      Value b = Value::Of("b" + std::to_string(j));
      if (rng->Chance(p)) db.AddFactOrDie("T", {a, b});
      if (rng->Chance(p)) db.AddFactOrDie("R", {a, b});
      if (rng->Chance(p)) db.AddFactOrDie("S", {b, a});
    }
  }
  return db;
}

void Table() {
  benchutil::Header("E7", "hardness-transfer reductions "
                          "(Lemmas 5.4 / 5.6 / 5.7)");

  Rng rng(91);
  std::printf("%-28s %-10s %-10s %-12s\n", "reduction", "trials",
              "preserved", "t_map_us");

  // Lemma 5.4: q1 -> q1 + extra negated atom.
  {
    Query q_sub = MakeQ1();
    Query q = *ParseQuery("R(x | y), not S(y | x), not Tx(x | y)");
    int preserved = 0;
    const int trials = 100;
    double t = 0;
    for (int i = 0; i < trials; ++i) {
      Database db = RandomQ1Db(&rng, 3, 3, 0.4);
      // Pollute with Tx facts that the reduction must drop.
      db.AddFactAutoSchema("Tx", 1, {Value::Of("a0"), Value::Of("b0")});
      Result<Database> mapped{Database{Schema()}};
      t += benchutil::TimeUs([&] {
        mapped = DropNegatedReduction(q, {InternSymbol("Tx")}, db);
      });
      if (IsCertainNaive(q_sub, db).value() ==
          IsCertainNaive(q, mapped.value()).value()) {
        ++preserved;
      }
    }
    std::printf("%-28s %-10d %3d/%-6d %-12.2f\n", "Lemma 5.4 (drop !Tx)",
                trials, preserved, trials, t / trials);
  }

  // Lemma 5.6: q1 -> {F(u|v), P(u,v,w), !G(v|u)} via Θ.
  {
    Query q = *ParseQuery("F(u | v), P(u, v, w), not G(v | u)");
    Result<ThetaReduction> theta = ThetaReduction::Create(q, 0, 2);
    Query q1 = MakeQ1();
    int preserved = 0;
    const int trials = 100;
    double t = 0;
    for (int i = 0; i < trials; ++i) {
      Database db = RandomQ1Db(&rng, 3, 3, 0.4);
      Result<Database> mapped{Database{Schema()}};
      t += benchutil::TimeUs([&] { mapped = theta->ApplyLemma56(db); });
      if (IsCertainNaive(q1, db).value() ==
          IsCertainNaive(q, mapped.value()).value()) {
        ++preserved;
      }
    }
    std::printf("%-28s %-10d %3d/%-6d %-12.2f\n", "Lemma 5.6 (Theta, F+/G-)",
                trials, preserved, trials, t / trials);
  }

  // Lemma 5.7: q2 -> Example 4.1's {P(x,y), !F(x|y), !G(y|x)} via Θ.
  {
    Query q = *ParseQuery("P(x, y), not F(x | y), not G(y | x)");
    Result<ThetaReduction> theta = ThetaReduction::Create(q, 1, 2);
    Query q2 = *ParseQuery("T(x, y), not R(x | y), not S(y | x)");
    int preserved = 0;
    const int trials = 100;
    double t = 0;
    for (int i = 0; i < trials; ++i) {
      Database db = RandomQ2Db(&rng, 2, 3, 0.4);
      Result<Database> mapped{Database{Schema()}};
      t += benchutil::TimeUs([&] { mapped = theta->ApplyLemma57(db); });
      if (IsCertainNaive(q2, db).value() ==
          IsCertainNaive(q, mapped.value()).value()) {
        ++preserved;
      }
    }
    std::printf("%-28s %-10d %3d/%-6d %-12.2f\n", "Lemma 5.7 (Theta, F-/G-)",
                trials, preserved, trials, t / trials);
  }

  std::printf("\nreduction output growth (Lemma 5.6, m=n):\n%-8s %-10s "
              "%-10s %-12s\n", "m", "in_facts", "out_facts", "t_map_us");
  Query q = *ParseQuery("F(u | v), P(u, v, w), not G(v | u)");
  Result<ThetaReduction> theta = ThetaReduction::Create(q, 0, 2);
  for (int m : {4, 16, 64, 256}) {
    Database db = RandomQ1Db(&rng, m, m, 0.2);
    Result<Database> mapped{Database{Schema()}};
    double t = benchutil::TimeUs([&] { mapped = theta->ApplyLemma56(db); });
    std::printf("%-8d %-10zu %-10zu %-12.1f\n", m, db.NumFacts(),
                mapped->NumFacts(), t);
  }
  std::printf("\n");
}

void BM_Theta56(benchmark::State& state) {
  Query q = *ParseQuery("F(u | v), P(u, v, w), not G(v | u)");
  Result<ThetaReduction> theta = ThetaReduction::Create(q, 0, 2);
  Rng rng(97);
  int m = static_cast<int>(state.range(0));
  Database db = RandomQ1Db(&rng, m, m, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(theta->ApplyLemma56(db).ok());
  }
}
BENCHMARK(BM_Theta56)->Arg(8)->Arg(64)->Arg(256);

void BM_Lemma54(benchmark::State& state) {
  Query q = *ParseQuery("R(x | y), not S(y | x), not Tx(x | y)");
  Rng rng(101);
  Database db = RandomQ1Db(&rng, 16, 16, 0.3);
  db.AddFactAutoSchema("Tx", 1, {Value::Of("a0"), Value::Of("b0")});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DropNegatedReduction(q, {InternSymbol("Tx")}, db).ok());
  }
}
BENCHMARK(BM_Lemma54);

}  // namespace
}  // namespace cqa

CQA_BENCH_MAIN(cqa::Table)
