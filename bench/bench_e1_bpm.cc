// E1 — Figure 1 / Example 1.1 / Lemma 5.2: CERTAINTY(q1) and BIPARTITE
// PERFECT MATCHING.
//
// Reproduces: (i) the Figure 1 database outcome (q1 not certain: the
// Alice–George / Maria–Bob pairing falsifies it); (ii) the Lemma 5.2
// equivalence "perfect matching exists iff q1 not certain" on random
// balanced graphs, cross-checked against naive repair enumeration where
// feasible; (iii) scaling of the polynomial matching solver to instances
// whose repair count is astronomically beyond enumeration.

#include "bench_util.h"
#include "cqa/base/rng.h"
#include "cqa/certainty/matching_q1.h"
#include "cqa/certainty/naive.h"
#include "cqa/matching/hopcroft_karp.h"
#include "cqa/reductions/bpm.h"

namespace cqa {
namespace {

BipartiteGraph RandomBalancedGraph(Rng* rng, int m, int avg_degree) {
  BipartiteGraph g(m, m);
  for (int l = 0; l < m; ++l) {
    g.AddEdge(l, static_cast<int>(rng->Below(m)));
    for (int k = 1; k < avg_degree; ++k) {
      if (rng->Chance(0.8)) g.AddEdge(l, static_cast<int>(rng->Below(m)));
    }
  }
  return g;
}

void Table() {
  benchutil::Header("E1", "q1 vs BIPARTITE PERFECT MATCHING (Lemma 5.2)");

  Result<Database> fig1 = Database::FromText(R"(
    R(alice | bob), R(alice | george), R(maria | bob), R(maria | john)
    S(bob | alice), S(bob | maria), S(george | alice), S(george | maria)
  )");
  Query q1 = MakeQ1();
  std::printf("Figure 1 database: CERTAINTY(q1) naive=%s matching=%s "
              "(paper: false — the Alice-George/Maria-Bob repair)\n\n",
              IsCertainNaive(q1, fig1.value()).value() ? "true" : "false",
              IsCertainQ1ByMatching(q1, fig1.value()).value() ? "true"
                                                              : "false");

  std::printf("%-6s %-8s %-10s %-9s %-12s %-10s %-12s %-10s\n", "m", "facts",
              "repairs", "PM?", "certain(q1)", "agree?", "t_match_us",
              "t_naive_us");
  Rng rng(12345);
  for (int m : {2, 4, 8, 16, 64, 256, 1024}) {
    BipartiteGraph g = RandomBalancedGraph(&rng, m, 4);
    Database db = BpmToQ1Database(g);
    bool pm = HasPerfectMatching(g);
    bool certain = false;
    double t_match = benchutil::MedianTimeUs(5, [&] {
      certain = IsCertainQ1ByMatching(q1, db).value();
    });
    std::string agree = "-";
    std::string t_naive = "-";
    if (db.CountRepairs(1 << 20) < (1 << 20)) {
      bool naive = false;
      double tn = benchutil::TimeUs(
          [&] { naive = IsCertainNaive(q1, db).value(); });
      agree = (naive == certain) ? "yes" : "NO!";
      t_naive = std::to_string(tn);
    }
    uint64_t reps = db.CountRepairs(1u << 31);
    std::string reps_str = reps >= (1u << 31) ? (">2^31") : std::to_string(reps);
    std::printf("%-6d %-8zu %-10s %-9s %-12s %-10s %-12.1f %-10s\n", m,
                db.NumFacts(), reps_str.c_str(), pm ? "yes" : "no",
                certain ? "true" : "false", agree.c_str(), t_match,
                t_naive.c_str());
    // The Lemma 5.2 shape: certainty must be the complement of PM.
    if (pm == certain) std::printf("  ^^ UNEXPECTED: PM == certainty\n");
  }
  std::printf("\n");
}

void BM_MatchingSolver(benchmark::State& state) {
  Rng rng(7);
  BipartiteGraph g =
      RandomBalancedGraph(&rng, static_cast<int>(state.range(0)), 4);
  Database db = BpmToQ1Database(g);
  Query q1 = MakeQ1();
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsCertainQ1ByMatching(q1, db).value());
  }
}
BENCHMARK(BM_MatchingSolver)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_HopcroftKarp(benchmark::State& state) {
  Rng rng(8);
  BipartiteGraph g =
      RandomBalancedGraph(&rng, static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxMatching(g).size);
  }
}
BENCHMARK(BM_HopcroftKarp)->Arg(64)->Arg(1024)->Arg(4096);

void BM_NaiveOnFigure1(benchmark::State& state) {
  Result<Database> fig1 = Database::FromText(R"(
    R(alice | bob), R(alice | george), R(maria | bob), R(maria | john)
    S(bob | alice), S(bob | maria), S(george | alice), S(george | maria)
  )");
  Query q1 = MakeQ1();
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsCertainNaive(q1, fig1.value()).value());
  }
}
BENCHMARK(BM_NaiveOnFigure1);

}  // namespace
}  // namespace cqa

CQA_BENCH_MAIN(cqa::Table)
