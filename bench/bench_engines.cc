// Engine comparison: three independent ways to execute a consistent
// first-order rewriting — the tuple-at-a-time evaluator (FoEvaluator), the
// set-at-a-time relational-algebra engine (EvalFoAlgebra), and, mirroring
// the deployment story of Theorem 4.3, a stock SQL engine would be the
// fourth (exercised in tests/sqlite_integration_test.cc). Shapes to expect:
// the tuple engine wins on selective queries, the algebra engine pays the
// active-domain complement cost but amortises over bindings.

#include "bench_util.h"
#include "cqa/base/rng.h"
#include "cqa/certainty/naive.h"
#include "cqa/fo/algebra.h"
#include "cqa/fo/eval.h"
#include "cqa/gen/poll.h"
#include "cqa/gen/random_db.h"
#include "cqa/query/parser.h"
#include "cqa/rewriting/rewriter.h"

namespace cqa {
namespace {

void Table() {
  benchutil::Header("ENGINES", "rewriting execution engines "
                               "(tuple-at-a-time vs relational algebra)");
  struct Case {
    const char* name;
    Query q;
  };
  const Case cases[] = {
      {"q3 (Example 4.5)", *ParseQuery("P(x | y), not N('c' | y)")},
      {"guarded pair", *ParseQuery("P(x | y), not N(x | y)")},
      {"poll qa", PollQa()},
  };
  std::printf("%-18s %-9s %-14s %-14s %-10s\n", "query", "facts",
              "t_tuple_us", "t_algebra_us", "agree");
  Rng rng(2101);
  for (const Case& c : cases) {
    Result<Rewriting> rw = RewriteCertain(c.q);
    if (!rw.ok()) continue;
    for (int scale : {20, 200}) {
      RandomDbOptions opts;
      opts.blocks_per_relation = scale;
      opts.domain_size = scale;
      Database db = GenerateRandomDatabaseFor(c.q, opts, &rng);
      bool a = false, b = false;
      double t_tuple = benchutil::MedianTimeUs(
          3, [&] { a = EvalFo(rw->formula, db); });
      double t_algebra = benchutil::MedianTimeUs(
          3, [&] { b = EvalFoAlgebraBool(rw->formula, db).value(); });
      std::printf("%-18s %-9zu %-14.1f %-14.1f %-10s\n", c.name,
                  db.NumFacts(), t_tuple, t_algebra,
                  a == b ? "yes" : "NO!");
    }
  }
  std::printf("\n");
}

void BM_TupleEngine(benchmark::State& state) {
  Query q = PollQa();
  Result<Rewriting> rw = RewriteCertain(q);
  Rng rng(2111);
  RandomDbOptions opts;
  opts.blocks_per_relation = static_cast<int>(state.range(0));
  Database db = GenerateRandomDatabaseFor(q, opts, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalFo(rw->formula, db));
  }
}
BENCHMARK(BM_TupleEngine)->Arg(20)->Arg(100);

void BM_AlgebraEngine(benchmark::State& state) {
  Query q = PollQa();
  Result<Rewriting> rw = RewriteCertain(q);
  Rng rng(2111);
  RandomDbOptions opts;
  opts.blocks_per_relation = static_cast<int>(state.range(0));
  Database db = GenerateRandomDatabaseFor(q, opts, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalFoAlgebraBool(rw->formula, db).value());
  }
}
BENCHMARK(BM_AlgebraEngine)->Arg(20)->Arg(100);

}  // namespace
}  // namespace cqa

CQA_BENCH_MAIN(cqa::Table)
