// Network-daemon experiments:
//
//   D1. Round-trip latency: one client, solves submitted one at a time over
//       a real loopback socket. Measures the full wire path — encode, TCP,
//       frame decode, service dispatch, response frame — as percentiles,
//       next to the in-process service dispatch from bench_serve as the
//       implied transport overhead.
//   D2. Pipelined throughput and shed rate under overload: clients pipeline
//       batches far past the service queue capacity; reports accepted vs
//       shed (typed `overloaded` frames) and terminal-frame accounting —
//       every pipelined solve must still get exactly one terminal frame.
//   D3. Result cache over the wire: the same solve frame submitted
//       repeatedly with `"cache":"default"` (hot: served from the result
//       cache after the first) vs `"cache":"bypass"` (cold: full solve each
//       time). The remaining hot-path cost is the wire round trip itself.
//   D4. Shard isolation: one daemon, identical pigeonhole database content
//       behind every name. An adversary connection saturates one shard
//       with pigeonhole backtracking solves (coNP-hard instances, ~5ms
//       each) while a victim client runs FO solves — either on its own
//       shard (sharded, this codebase) or on the adversary's (shared, the
//       single-pool architecture the registry replaces). Reports the
//       victim's latency percentiles against a solo baseline.
//   D6. Live updates: apply_delta wire latency as the batch size grows
//       (copy-on-write epochs + O(delta) index maintenance, so cost tracks
//       the delta, not the database), footprint-scoped cache invalidation
//       (warm hits on untouched queries survive a delta to a disjoint
//       relation), and crash-recovery time as the replayed journal grows.
//   D7. Durability and replication: recovery time with and without epoch
//       snapshots (bounded tail replay vs full-history replay), acked-delta
//       throughput under each journal fsync policy (per-ack fsync vs the
//       group-commit batcher vs none), and primary-ack-to-follower-epoch
//       replication lag over a real loopback stream.
//   D5. Fork-isolation cost and reclaim: the same solve on the same wire
//       path with `"isolation":"inproc"` vs `"fork"` (the fork/pipe/reap
//       overhead a sandboxed solve pays), then the time to get a worker
//       back from a stuck coNP solve — a cooperative budget deadline vs
//       the supervisor's SIGKILL on a wedged child that never reaches its
//       next probe.
//   D8. Component-parallel speedup vs component count: one adversarial
//       database made of C value-disjoint components — C-1 "chaff"
//       components whose every repair falsifies the query (each multiplies
//       the sequential backtracking search) plus one certain pigeonhole
//       core — solved over the wire at `"parallelism":1` vs `8`. The
//       decomposed solve runs components concurrently and the certain
//       core's TRUE short-circuits the disjunction, so the parallel side
//       pays ~one core proof while the sequential side pays the full
//       product search. Verdicts are parity-checked on every row.
//   D9. Streaming answers: the chunk-size sweep for one answer stream over
//       the wire (per-chunk admission overhead vs per-tuple framing cost:
//       tiny chunks pay a service round trip per tuple, huge chunks
//       approach the one-shot enumeration), the warm re-stream served from
//       the chunk cache, time-to-first-tuple as the streaming latency win
//       over any batch API, and resume-from-cursor vs restart-from-zero
//       for a consumer that died halfway. Tuple counts are parity-checked
//       against the one-shot expectation on every row.
//
// The micro-benchmark times a single socket round trip through the daemon.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <cstdlib>

#include "bench_util.h"
#include "cqa/delta/delta.h"
#include "cqa/gen/families.h"
#include "cqa/gen/poll.h"
#include "cqa/registry/sharded_service.h"
#include "cqa/serve/net/client.h"
#include "cqa/serve/net/daemon.h"
#include "cqa/serve/net/json.h"
#include "cqa/serve/net/protocol.h"

namespace cqa {
namespace {

using std::chrono::milliseconds;

constexpr milliseconds kIo{30'000};

std::shared_ptr<const Database> PollDb(int persons, uint64_t seed) {
  Rng rng(seed);
  PollDbOptions opts;
  opts.num_persons = persons;
  opts.num_towns = std::max(2, persons / 5);
  return std::make_shared<const Database>(GeneratePollDatabase(opts, &rng));
}

std::string SolveFrame(uint64_t id, const std::string& query) {
  JsonObjectBuilder b;
  b.Set("type", "solve").Set("id", id).Set("query", query);
  return b.Build().Serialize();
}

uint64_t Percentile(std::vector<double>* us, double p) {
  std::sort(us->begin(), us->end());
  size_t rank = static_cast<size_t>(p * static_cast<double>(us->size() - 1));
  return static_cast<uint64_t>((*us)[std::min(rank, us->size() - 1)]);
}

void TableRoundTrip() {
  benchutil::Header("DAEMON", "framed TCP front-end for SolveService");
  std::printf("D1. loopback round-trip latency, 500 sequential solves:\n");
  std::printf("%-10s %-10s %-10s %-10s %-10s\n", "p50_us", "p90_us", "p99_us",
              "max_us", "solve_us(p50, service-side)");
  DaemonOptions options;
  options.service.workers = 2;
  SolveDaemon daemon(PollDb(40, 17), options);
  if (!daemon.Start().ok()) return;
  NetClient client;
  if (!client.Connect("127.0.0.1", daemon.port(), kIo).ok()) return;
  std::string query = "Mayor(t | p), not Lives(p | t)";  // PollQ1, wire spelling
  std::vector<double> rtt_us;
  constexpr int kRounds = 500;
  for (uint64_t id = 1; id <= kRounds; ++id) {
    double us = benchutil::TimeUs([&] {
      (void)client.SendFrame(SolveFrame(id, query), kIo);
      (void)client.WaitTerminal(id, kIo);
    });
    rtt_us.push_back(us);
  }
  ServiceStats service = daemon.service_stats();
  std::printf("%-10llu %-10llu %-10llu %-10llu %llu\n",
              static_cast<unsigned long long>(Percentile(&rtt_us, 0.50)),
              static_cast<unsigned long long>(Percentile(&rtt_us, 0.90)),
              static_cast<unsigned long long>(Percentile(&rtt_us, 0.99)),
              static_cast<unsigned long long>(Percentile(&rtt_us, 1.0)),
              static_cast<unsigned long long>(service.latency_p50_us));
  (void)daemon.Shutdown(milliseconds(5'000));
  std::printf("\n");
}

void TableOverloadShedRate() {
  std::printf(
      "D2. pipelined overload: 1 worker, queue cap 8, per-conn inflight cap "
      "256,\n    batches pipelined before reading; shed answers are typed "
      "`overloaded` frames:\n");
  std::printf("%-10s %-10s %-10s %-12s %-12s %-10s\n", "offered", "results",
              "shed", "shed_rate", "terminal", "t_ms");
  for (int offered : {8, 64, 256}) {
    DaemonOptions options;
    options.service.workers = 1;
    options.service.queue_capacity = 8;
    options.connection.max_inflight = 256;
    SolveDaemon daemon(PollDb(40, 19), options);
    if (!daemon.Start().ok()) return;
    NetClient client;
    if (!client.Connect("127.0.0.1", daemon.port(), kIo).ok()) return;
    std::string query = "Mayor(t | p), not Lives(p | t)";  // PollQ1, wire spelling
    uint64_t results = 0, shed = 0, terminal = 0;
    double t_us = benchutil::TimeUs([&] {
      for (uint64_t id = 1; id <= static_cast<uint64_t>(offered); ++id) {
        (void)client.SendFrame(SolveFrame(id, query), kIo);
      }
      for (int i = 0; i < offered; ++i) {
        Result<WireResponse> r = client.ReadResponse(kIo);
        if (!r.ok()) break;
        ++terminal;
        if (r->type == "result") ++results;
        if (r->type == "error" && r->code == "overloaded") ++shed;
      }
    });
    std::printf("%-10d %-10llu %-10llu %-12.2f %-12llu %.1f\n", offered,
                static_cast<unsigned long long>(results),
                static_cast<unsigned long long>(shed),
                offered > 0 ? static_cast<double>(shed) / offered : 0.0,
                static_cast<unsigned long long>(terminal), t_us / 1000.0);
    (void)daemon.Shutdown(milliseconds(5'000));
  }
  std::printf("\n");
}

std::string SolveFrameCached(uint64_t id, const std::string& query,
                             const char* policy) {
  JsonObjectBuilder b;
  b.Set("type", "solve").Set("id", id).Set("query", query).Set("cache",
                                                               policy);
  return b.Build().Serialize();
}

void TableCacheHotCold() {
  std::printf("D3. result cache over the wire, 300 identical solves each "
              "mode:\n");
  std::printf("%-8s %-10s %-10s %-10s %-10s\n", "mode", "p50_us", "p99_us",
              "hits", "speedup");
  double cold_p50 = 0;
  for (bool hot : {false, true}) {
    DaemonOptions options;
    options.service.workers = 2;
    options.service.cache_entries = 1024;
    options.service.warm_state = hot;
    SolveDaemon daemon(PollDb(200, 29), options);
    if (!daemon.Start().ok()) return;
    NetClient client;
    if (!client.Connect("127.0.0.1", daemon.port(), kIo).ok()) return;
    std::string query = "Mayor(t | p), not Lives(p | t)";  // PollQ1
    const char* policy = hot ? "default" : "bypass";
    std::vector<double> rtt_us;
    constexpr int kRounds = 300;
    for (uint64_t id = 1; id <= kRounds; ++id) {
      double us = benchutil::TimeUs([&] {
        (void)client.SendFrame(SolveFrameCached(id, query, policy), kIo);
        (void)client.WaitTerminal(id, kIo);
      });
      rtt_us.push_back(us);
    }
    ServiceStats service = daemon.service_stats();
    (void)daemon.Shutdown(milliseconds(5'000));
    double p50 = static_cast<double>(Percentile(&rtt_us, 0.50));
    double p99 = static_cast<double>(Percentile(&rtt_us, 0.99));
    if (!hot) cold_p50 = p50;
    std::printf("%-8s %-10.0f %-10.0f %-10llu %.1fx\n", hot ? "hot" : "cold",
                p50, p99, static_cast<unsigned long long>(service.cache_hits),
                hot && p50 > 0 ? cold_p50 / p50 : 1.0);
  }
  std::printf("\n");
}

std::string SolveFrameOn(uint64_t id, const std::string& query,
                         const char* db, const char* method) {
  JsonObjectBuilder b;
  b.Set("type", "solve").Set("id", id).Set("query", query).Set("db", db);
  if (method != nullptr) b.Set("method", method);
  return b.Build().Serialize();
}

// D4 placement modes. The database content and the victim workload are
// identical in all three; the only variable is where the adversary's hard
// solves land. (Not cqa::IsolationMode — that is the sandbox's in-process
// vs forked execution axis, measured separately in D5.)
enum class PlacementMode { kSolo, kSharded, kShared };

void TableShardIsolation() {
  std::printf(
      "D4. shard isolation: the victim runs FO solves on shard 'a' while an "
      "adversary\n    pipelines pigeonhole backtracking solves — on its own "
      "shard 'b' (sharded,\n    this codebase) or on the victim's shard "
      "(shared, the single-pool\n    architecture this subsystem replaces). "
      "Identical database content\n    everywhere; only placement varies:\n");
  std::printf("%-9s %-10s %-10s %-10s %-10s %-10s\n", "mode", "p50_us",
              "p90_us", "p99_us", "ratio_p99", "hard_done");
  // Both queries run against PigeonholeDatabase(5). The victim's is the FO
  // differential query (rewriting answers it in microseconds); the
  // adversary's is PigeonholeCyclicQuery (wire spelling) forced through
  // kBacktracking, which holds a worker for ~5 ms per solve.
  std::string victim_query = "R(x | y), not S(y | x)";
  std::string pigeon_query = "R(x | y), not S(y | x), not T(x | y)";
  auto mk_db = [] {
    return std::make_shared<const Database>(PigeonholeDatabase(5));
  };
  constexpr int kRounds = 300;
  double solo_p99 = 0;
  for (PlacementMode mode : {PlacementMode::kSolo, PlacementMode::kSharded,
                             PlacementMode::kShared}) {
    DaemonOptions options;
    options.service.workers = 1;
    SolveDaemon daemon(options);
    if (!daemon.Attach("a", mk_db()).ok()) return;
    if (mode == PlacementMode::kSharded && !daemon.Attach("b", mk_db()).ok()) {
      return;
    }
    if (!daemon.Start().ok()) return;
    const char* adversary_db =
        mode == PlacementMode::kSharded ? "b" : "a";

    // The adversary keeps 4 hard solves pipelined on its own connection
    // for the whole measurement window, so its target shard's queue and
    // worker stay saturated throughout. (One worker per shard: the shards
    // are the isolation boundary under test, and a single compute-bound
    // thread keeps the numbers meaningful on a single-core host too.)
    std::atomic<bool> stop{false};
    std::thread adversary;
    if (mode != PlacementMode::kSolo) {
      adversary = std::thread([&, adversary_db] {
        NetClient attacker;
        if (!attacker.Connect("127.0.0.1", daemon.port(), kIo).ok()) return;
        uint64_t id = 0;
        size_t inflight = 0;
        while (true) {
          while (inflight < 4) {
            std::string frame = SolveFrameOn(++id, pigeon_query, adversary_db,
                                             "backtracking");
            if (!attacker.SendFrame(frame, kIo).ok()) return;
            ++inflight;
          }
          Result<WireResponse> r = attacker.ReadResponse(kIo);
          if (!r.ok()) return;
          if (IsTerminalResponseType(r->type)) --inflight;
          if (stop.load()) return;
        }
      });
      // Let the flood reach steady state before measuring.
      std::this_thread::sleep_for(milliseconds(50));
    }

    NetClient victim;
    if (!victim.Connect("127.0.0.1", daemon.port(), kIo).ok()) return;
    std::vector<double> rtt_us;
    for (uint64_t id = 1; id <= kRounds; ++id) {
      double us = benchutil::TimeUs([&] {
        (void)victim.SendFrame(SolveFrameOn(id, victim_query, "a", nullptr),
                               kIo);
        (void)victim.WaitTerminal(id, kIo);
      });
      rtt_us.push_back(us);
    }

    uint64_t hard_done = 0;
    for (const auto& [name, stats] : daemon.stats_per_db()) {
      if (name == adversary_db && mode != PlacementMode::kSolo) {
        // Shared mode counts victim solves too; subtract them out.
        hard_done = stats.completed -
                    (mode == PlacementMode::kShared ? rtt_us.size() : 0);
      }
    }
    stop.store(true);
    if (adversary.joinable()) adversary.join();
    (void)daemon.Shutdown(milliseconds(30'000));

    double p50 = static_cast<double>(Percentile(&rtt_us, 0.50));
    double p90 = static_cast<double>(Percentile(&rtt_us, 0.90));
    double p99 = static_cast<double>(Percentile(&rtt_us, 0.99));
    if (mode == PlacementMode::kSolo) solo_p99 = p99;
    const char* label = mode == PlacementMode::kSolo      ? "solo"
                        : mode == PlacementMode::kSharded ? "sharded"
                                                          : "shared";
    std::printf("%-9s %-10.0f %-10.0f %-10.0f %-10.2f %llu\n", label, p50,
                p90, p99, solo_p99 > 0 ? p99 / solo_p99 : 1.0,
                static_cast<unsigned long long>(hard_done));
  }
  std::printf("\n");
}

std::string SolveFrameSandbox(uint64_t id, const std::string& query,
                              const char* isolation, const char* method,
                              uint64_t timeout_ms, uint64_t wedge_after) {
  JsonObjectBuilder b;
  b.Set("type", "solve")
      .Set("id", id)
      .Set("query", query)
      .Set("cache", "bypass")
      .Set("isolation", isolation);
  if (method != nullptr) b.Set("method", method);
  if (timeout_ms > 0) b.Set("timeout_ms", timeout_ms);
  if (wedge_after > 0) b.Set("wedge_after_probes", wedge_after);
  return b.Build().Serialize();
}

void TableSandboxOverhead() {
  std::printf(
      "D5. fork isolation: sandbox cost on the identical wire path (cache "
      "bypassed,\n    same query, same single worker) — what a solve pays "
      "for crash containment\n    — then time to reclaim a stuck coNP "
      "solve. A cooperative deadline needs\n    the child to reach its "
      "next budget probe; a wedged child never does, and\n    only the "
      "supervisor's SIGKILL at deadline + grace gets the worker back:\n");
  std::printf("%-8s %-10s %-10s %-10s\n", "mode", "p50_us", "p99_us",
              "overhead_us(p50)");
  double inproc_p50 = 0;
  for (const char* mode : {"inproc", "fork"}) {
    DaemonOptions options;
    options.service.workers = 1;
    SolveDaemon daemon(PollDb(40, 31), options);
    if (!daemon.Start().ok()) return;
    NetClient client;
    if (!client.Connect("127.0.0.1", daemon.port(), kIo).ok()) return;
    std::string query = "Mayor(t | p), not Lives(p | t)";  // PollQ1
    std::vector<double> rtt_us;
    constexpr int kRounds = 200;
    for (uint64_t id = 1; id <= kRounds; ++id) {
      double us = benchutil::TimeUs([&] {
        (void)client.SendFrame(SolveFrameSandbox(id, query, mode, nullptr,
                                                 0, 0),
                               kIo);
        (void)client.WaitTerminal(id, kIo);
      });
      rtt_us.push_back(us);
    }
    (void)daemon.Shutdown(milliseconds(5'000));
    double p50 = static_cast<double>(Percentile(&rtt_us, 0.50));
    double p99 = static_cast<double>(Percentile(&rtt_us, 0.99));
    bool is_inproc = std::string(mode) == "inproc";
    if (is_inproc) inproc_p50 = p50;
    std::printf("%-8s %-10.0f %-10.0f %.0f\n", mode, p50, p99,
                is_inproc ? 0.0 : p50 - inproc_p50);
  }
  std::printf("%-13s %-12s %-10s %-10s\n", "stuck_mode", "timeout_ms",
              "grace_ms", "reclaim_ms");
  for (bool wedged : {false, true}) {
    DaemonOptions options;
    options.service.workers = 1;
    options.service.sandbox.kill_grace = milliseconds(300);
    SolveDaemon daemon(
        std::make_shared<const Database>(PigeonholeDatabase(12)), options);
    if (!daemon.Start().ok()) return;
    NetClient client;
    if (!client.Connect("127.0.0.1", daemon.port(), kIo).ok()) return;
    // PigeonholeCyclicQuery, wire spelling: exponential backtracking that
    // blows through the 100ms deadline either cooperatively (trips its
    // budget at the next probe) or wedged (blocks between probes forever).
    std::string query = "R(x | y), not S(y | x), not T(x | y)";
    double us = benchutil::TimeUs([&] {
      (void)client.SendFrame(
          SolveFrameSandbox(1, query, "fork", "backtracking", 100,
                            wedged ? 1 : 0),
          kIo);
      (void)client.WaitTerminal(1, kIo);
    });
    (void)daemon.Shutdown(milliseconds(30'000));
    std::printf("%-13s %-12d %-10d %.1f\n",
                wedged ? "wedged" : "cooperative", 100, 300, us / 1000.0);
  }
  std::printf("\n");
}

std::string ApplyDeltaFrame(uint64_t id, const std::string& delta_id,
                            const std::vector<DeltaOp>& ops) {
  return JsonObjectBuilder()
      .Set("type", "apply_delta")
      .Set("id", id)
      .Set("delta_id", delta_id)
      .Set("ops", EncodeDeltaOps(ops))
      .Build()
      .Serialize();
}

void TableLiveUpdate() {
  // (a) apply latency vs delta size: fresh Lives facts, each a new key, so
  // every op extends the block index. Cost should track the batch size.
  std::printf("D6. live updates over the wire:\n");
  std::printf("(a) apply_delta latency vs batch size, 20 applies each:\n");
  std::printf("%-8s %-10s %-10s %-10s\n", "ops", "p50_us", "p99_us",
              "us_per_op(p50)");
  for (int batch : {1, 16, 256, 4096}) {
    DaemonOptions options;
    options.service.workers = 2;
    SolveDaemon daemon(PollDb(40, 17), options);
    if (!daemon.Start().ok()) return;
    NetClient client;
    if (!client.Connect("127.0.0.1", daemon.port(), kIo).ok()) return;
    std::vector<double> us;
    uint64_t id = 0;
    int seq = 0;
    for (int round = 0; round < 20; ++round) {
      std::vector<DeltaOp> ops;
      ops.reserve(static_cast<size_t>(batch));
      for (int k = 0; k < batch; ++k) {
        DeltaOp op;
        op.insert = true;
        op.relation = "Lives";
        op.values = {"bench_p" + std::to_string(++seq),
                     "bench_t" + std::to_string(seq % 7)};
        ops.push_back(std::move(op));
      }
      std::string frame =
          ApplyDeltaFrame(++id, "bench-" + std::to_string(round), ops);
      us.push_back(benchutil::TimeUs([&] {
        (void)client.SendFrame(frame, kIo);
        (void)client.ReadResponse(kIo);
      }));
    }
    uint64_t p50 = Percentile(&us, 0.50);
    std::printf("%-8d %-10llu %-10llu %.2f\n", batch,
                static_cast<unsigned long long>(p50),
                static_cast<unsigned long long>(Percentile(&us, 0.99)),
                static_cast<double>(p50) / batch);
    (void)daemon.Shutdown(milliseconds(5'000));
  }
  std::printf("\n");

  // (b) invalidation precision: two cached queries with disjoint
  // footprints; a delta to S must drop only the R/S entry. The untouched
  // query's warm hits keep serving at the pre-delta price because its
  // entry is rekeyed to the new epoch, not recomputed.
  {
    std::printf("(b) footprint-scoped invalidation, warm hits on an "
                "untouched query:\n");
    std::printf("%-22s %-14s %-14s %-12s %-10s\n", "phase", "p50_us(hit)",
                "invalidated", "rekeyed", "hits");
    Result<Database> base = Database::FromText(
        "R(a | b), R(a | c)\nS(b | a)\nT(k1 | v1), T(k2 | v2)");
    if (!base.ok()) return;
    DaemonOptions options;
    options.service.workers = 2;
    options.service.cache_entries = 128;
    SolveDaemon daemon(
        std::make_shared<const Database>(std::move(base.value())), options);
    if (!daemon.Start().ok()) return;
    NetClient client;
    if (!client.Connect("127.0.0.1", daemon.port(), kIo).ok()) return;
    uint64_t id = 0;
    auto solve = [&](const std::string& q) {
      (void)client.SendFrame(SolveFrame(++id, q), kIo);
      (void)client.WaitTerminal(id, kIo);
    };
    auto warm_p50 = [&](const std::string& q, int rounds) {
      std::vector<double> us;
      for (int i = 0; i < rounds; ++i) {
        us.push_back(benchutil::TimeUs([&] { solve(q); }));
      }
      return Percentile(&us, 0.50);
    };
    const std::string touched_q = "R(x | y), not S(y | x)";
    const std::string untouched_q = "T(x | y)";
    solve(touched_q);  // both now cached
    solve(untouched_q);
    uint64_t pre = warm_p50(untouched_q, 200);
    std::vector<DeltaOp> ops(1);
    ops[0].insert = false;
    ops[0].relation = "S";
    ops[0].values = {"b", "a"};
    (void)client.SendFrame(ApplyDeltaFrame(++id, "bench-inv", ops), kIo);
    (void)client.ReadResponse(kIo);
    uint64_t post = warm_p50(untouched_q, 200);
    ServiceStats stats = daemon.service_stats();
    std::printf("%-22s %-14llu %-14s %-12s %llu\n", "pre-delta",
                static_cast<unsigned long long>(pre), "-", "-",
                static_cast<unsigned long long>(stats.cache_hits));
    std::printf("%-22s %-14llu %-14llu %-12llu %s\n", "post-delta(S only)",
                static_cast<unsigned long long>(post),
                static_cast<unsigned long long>(stats.cache_invalidated),
                static_cast<unsigned long long>(stats.cache_rekeyed),
                post <= pre + pre / 5 ? "(within 1.2x)" : "(SLOWER)");
    (void)daemon.Shutdown(milliseconds(5'000));
  }
  std::printf("\n");

  // (c) recovery time vs journal length: a service journals N single-op
  // deltas, crashes (destructor without detach), and a fresh service
  // re-attaches the base snapshot — replaying and verifying the whole
  // journal before serving.
  {
    std::printf("(c) attach-with-replay time vs journal length:\n");
    std::printf("%-10s %-14s %-14s\n", "records", "replay_ms", "records/s");
    for (int records : {16, 256, 2048}) {
      char tmpl[] = "/tmp/cqa_bench_journal_XXXXXX";
      char* dir = ::mkdtemp(tmpl);
      if (dir == nullptr) return;
      Result<Database> base =
          Database::FromText("R(a | b), R(a | c)\nS(b | a)\nT(k0 | v0)");
      if (!base.ok()) return;
      auto shared =
          std::make_shared<const Database>(std::move(base.value()));
      ShardedServiceOptions opts;
      opts.shard.workers = 1;
      opts.journal_dir = dir;
      opts.journal.fsync = FsyncPolicy::kNever;  // time replay, not fsync
      {
        ShardedSolveService writer(opts);
        if (!writer.Attach("bench", shared).ok()) return;
        for (int i = 0; i < records; ++i) {
          FactDelta delta;
          delta.id = "rec-" + std::to_string(i);
          DeltaOp op;
          op.insert = true;
          op.relation = "T";
          op.values = {"k" + std::to_string(i + 1),
                       "v" + std::to_string(i + 1)};
          delta.ops.push_back(std::move(op));
          if (!writer.ApplyDelta("bench", delta).ok()) return;
        }
      }  // dropped without detach: the journal is the only survivor
      double ms = 0;
      {
        ShardedSolveService reader(opts);
        ms = benchutil::TimeUs([&] {
               (void)reader.Attach("bench", shared);
             }) /
             1000.0;
      }
      std::printf("%-10d %-14.2f %-14.0f\n", records, ms,
                  ms > 0 ? records / (ms / 1000.0) : 0.0);
      std::string cleanup = std::string("rm -rf ") + dir;
      (void)std::system(cleanup.c_str());
    }
  }
  std::printf("\n");
}

void TableDurability() {
  // (a) bounded recovery: the same attach-with-replay experiment as D6(c),
  // with and without epoch snapshots. With a snapshot every 64 deltas the
  // replay is snapshot-load + a bounded tail, so recovery stops scaling
  // with history length.
  std::printf("D7. durability and replication:\n");
  std::printf("(a) recovery time vs journal length, with/without "
              "snapshots (every 64 deltas):\n");
  std::printf("%-10s %-16s %-16s %-10s\n", "records", "replay_ms",
              "snapshot_ms", "speedup");
  for (int records : {16, 256, 2048}) {
    double ms[2] = {0, 0};
    for (int snap = 0; snap < 2; ++snap) {
      char tmpl[] = "/tmp/cqa_bench_snap_XXXXXX";
      char* dir = ::mkdtemp(tmpl);
      if (dir == nullptr) return;
      Result<Database> base =
          Database::FromText("R(a | b), R(a | c)\nS(b | a)\nT(k0 | v0)");
      if (!base.ok()) return;
      auto shared = std::make_shared<const Database>(std::move(base.value()));
      ShardedServiceOptions opts;
      opts.shard.workers = 1;
      opts.journal_dir = dir;
      opts.journal.fsync = FsyncPolicy::kNever;  // time replay, not fsync
      if (snap == 1) opts.snapshot.every_deltas = 64;
      {
        ShardedSolveService writer(opts);
        if (!writer.Attach("bench", shared).ok()) return;
        for (int i = 0; i < records; ++i) {
          FactDelta delta;
          delta.id = "rec-" + std::to_string(i);
          DeltaOp op;
          op.insert = true;
          op.relation = "T";
          op.values = {"k" + std::to_string(i + 1),
                       "v" + std::to_string(i + 1)};
          delta.ops.push_back(std::move(op));
          if (!writer.ApplyDelta("bench", delta).ok()) return;
        }
      }  // dropped without detach: snapshot + journal are the survivors
      {
        ShardedSolveService reader(opts);
        ms[snap] = benchutil::TimeUs([&] {
                     (void)reader.Attach("bench", shared);
                   }) /
                   1000.0;
      }
      std::string cleanup = std::string("rm -rf ") + dir;
      (void)std::system(cleanup.c_str());
    }
    std::printf("%-10d %-16.2f %-16.2f %.1fx\n", records, ms[0], ms[1],
                ms[1] > 0 ? ms[0] / ms[1] : 0.0);
  }
  std::printf("\n");

  // (b) group fsync: acked-delta throughput under concurrent writers for
  // each fsync policy. kAlways pays one fsync per ack; kGroup amortises
  // one fsync over every delta that arrived during the flush window;
  // kNever is the no-durability ceiling.
  {
    std::printf("(b) acked deltas/s vs fsync policy, 16 writers x 64 "
                "single-op deltas:\n");
    std::printf("%-10s %-12s %-12s %-10s\n", "policy", "acks/s", "wall_ms",
                "fsyncs");
    struct Row {
      const char* name;
      FsyncPolicy policy;
    };
    const Row rows[] = {{"always", FsyncPolicy::kAlways},
                        {"group", FsyncPolicy::kGroup},
                        {"never", FsyncPolicy::kNever}};
    for (const Row& row : rows) {
      char tmpl[] = "/tmp/cqa_bench_fsync_XXXXXX";
      char* dir = ::mkdtemp(tmpl);
      if (dir == nullptr) return;
      Result<Database> base = Database::FromText("T(k0 | v0)");
      if (!base.ok()) return;
      ShardedServiceOptions opts;
      opts.shard.workers = 1;
      opts.journal_dir = dir;
      opts.journal.fsync = row.policy;
      ShardedSolveService service(opts);
      if (!service.Attach("bench", std::move(base.value())).ok()) return;
      constexpr int kWriters = 16;
      constexpr int kPerWriter = 64;
      std::atomic<uint64_t> acked{0};
      double wall_us = benchutil::TimeUs([&] {
        std::vector<std::thread> writers;
        for (int w = 0; w < kWriters; ++w) {
          writers.emplace_back([&, w] {
            for (int i = 0; i < kPerWriter; ++i) {
              FactDelta delta;
              delta.id = "w" + std::to_string(w) + "-" + std::to_string(i);
              DeltaOp op;
              op.insert = true;
              op.relation = "T";
              op.values = {delta.id, "v"};
              delta.ops.push_back(std::move(op));
              if (service.ApplyDelta("bench", delta).ok()) {
                acked.fetch_add(1, std::memory_order_relaxed);
              }
            }
          });
        }
        for (auto& t : writers) t.join();
      });
      ServiceStats stats = service.Stats();
      std::printf("%-10s %-12.0f %-12.2f %llu\n", row.name,
                  acked.load() / (wall_us / 1e6), wall_us / 1000.0,
                  static_cast<unsigned long long>(stats.journal_fsyncs));
      std::string cleanup = std::string("rm -rf ") + dir;
      (void)std::system(cleanup.c_str());
    }
  }
  std::printf("\n");

  // (c) replication lag: a follower daemon tails a primary over loopback
  // TCP; after each primary ack, the time until the follower's epoch
  // catches up is the write-to-replica visibility lag.
  {
    std::printf("(c) replication lag, primary ack -> follower epoch, 50 "
                "deltas:\n");
    std::printf("%-14s %-14s %-14s\n", "p50_us", "p99_us", "max_us");
    DaemonOptions popts;
    popts.service.workers = 2;
    SolveDaemon primary(PollDb(40, 17), popts);
    if (!primary.Start().ok()) return;
    DaemonOptions fopts;
    fopts.service.workers = 2;
    fopts.follow_host = "127.0.0.1";
    fopts.follow_port = primary.port();
    SolveDaemon follower(fopts);
    if (!follower.Start().ok()) return;
    auto follower_epoch = [&]() -> uint64_t {
      for (const auto& [name, stats] : follower.stats_per_db()) {
        if (name == SolveDaemon::kDefaultDbName) return stats.epoch;
      }
      return 0;
    };
    auto bootstrap_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (follower.stats_per_db().empty() &&
           std::chrono::steady_clock::now() < bootstrap_deadline) {
      std::this_thread::sleep_for(milliseconds(1));
    }
    NetClient client;
    if (!client.Connect("127.0.0.1", primary.port(), kIo).ok()) return;
    std::vector<double> lag_us;
    uint64_t id = 0;
    for (int i = 0; i < 50; ++i) {
      std::vector<DeltaOp> ops(1);
      ops[0].insert = true;
      ops[0].relation = "Lives";
      ops[0].values = {"repl_p" + std::to_string(i), "repl_t"};
      (void)client.SendFrame(ApplyDeltaFrame(++id, "lag-" + std::to_string(i),
                                             ops),
                             kIo);
      (void)client.ReadResponse(kIo);
      const uint64_t target = static_cast<uint64_t>(i) + 1;
      lag_us.push_back(benchutil::TimeUs([&] {
        while (follower_epoch() < target) {
          std::this_thread::yield();
        }
      }));
    }
    std::printf("%-14llu %-14llu %-14.0f\n",
                static_cast<unsigned long long>(Percentile(&lag_us, 0.50)),
                static_cast<unsigned long long>(Percentile(&lag_us, 0.99)),
                *std::max_element(lag_us.begin(), lag_us.end()));
    (void)follower.Shutdown(milliseconds(5'000));
    (void)primary.Shutdown(milliseconds(5'000));
  }
  std::printf("\n");
}

// The D8 instance: C value-disjoint components under PigeonholeCyclicQuery
// "R(x | y), not S(y | x), not T(x | y)". Components c = 0..C-2 are chaff —
// an R-block {R(ca|cb1), R(ca|cb2)} whose S mirrors are present, so *every*
// repair of the component falsifies the query, two ways; each chaff
// component multiplies the falsifying combinations a sequential
// backtracking proof must exhaust. The last component is a certain
// pigeonhole core: the whole database is CERTAINTY-true via that one
// component, which a decomposed solve discovers after ~one core proof.
// Values get a per-C prefix and the chaff is added (interned) before the
// core: the backtracking engine's key-major block order follows interner
// ids, so this pins the chaff blocks ahead of the core in the sequential
// search — the adversarial ordering — independent of what earlier tables
// happened to intern.
Database AdversarialComponents(int copies, int core_k) {
  std::string p = "d8c" + std::to_string(copies) + "_";
  Schema schema;
  schema.AddRelationOrDie("R", 2, 1);
  schema.AddRelationOrDie("S", 2, 1);
  schema.AddRelationOrDie("T", 2, 1);
  Database db(std::move(schema));
  for (int c = 0; c + 1 < copies; ++c) {
    Value a = Value::Of(p + "ca" + std::to_string(c));
    for (int j = 1; j <= 2; ++j) {
      Value b =
          Value::Of(p + "cb" + std::to_string(j) + "x" + std::to_string(c));
      db.AddFactOrDie("R", {a, b});
      db.AddFactOrDie("S", {b, a});
    }
  }
  for (int i = 1; i <= core_k; ++i) {
    Value a = Value::Of(p + "a" + std::to_string(i));
    for (int j = 1; j < core_k; ++j) {
      Value b = Value::Of(p + "b" + std::to_string(j));
      db.AddFactOrDie("R", {a, b});
      db.AddFactOrDie("S", {b, a});
    }
  }
  return db;
}

void TableComponentParallel() {
  std::printf(
      "D8. component-parallel speedup vs component count: C-1 chaff "
      "components + one\n    certain pigeonhole core (k=6), "
      "backtracking over the wire, parallelism 1 vs 8.\n    Verdicts "
      "parity-checked per row; sequential cost grows with the chaff\n"
      "    product, parallel cost stays ~one core proof:\n");
  std::printf("%-6s %-12s %-12s %-9s %-12s %-8s %-8s\n", "C", "seq_ms",
              "par8_ms(p50)", "speedup", "verdicts", "comps", "steals");
  const std::string query = "R(x | y), not S(y | x), not T(x | y)";
  const milliseconds kSlowIo{180'000};  // the C=8 sequential proof is slow
  DaemonOptions options;
  options.service.workers = 2;
  SolveDaemon daemon(options);
  if (!daemon.Start().ok()) return;
  for (int copies : {1, 2, 4, 8}) {
    std::string name = "c" + std::to_string(copies);
    if (!daemon
             .Attach(name, std::make_shared<const Database>(
                               AdversarialComponents(copies, 6)))
             .ok()) {
      break;
    }
  }
  NetClient client;
  if (!client.Connect("127.0.0.1", daemon.port(), kIo).ok()) return;
  uint64_t id = 0;
  auto solve_ms = [&](const char* db, int parallelism, std::string* verdict,
                      uint64_t* comps, uint64_t* steals) -> double {
    JsonObjectBuilder b;
    b.Set("type", "solve").Set("id", ++id).Set("query", query).Set("db", db)
        .Set("method", "backtracking")
        .Set("parallelism", static_cast<int64_t>(parallelism));
    Result<WireResponse> r = Result<WireResponse>::Error(ErrorCode::kInternal, "");
    double ms = benchutil::TimeUs([&] {
                  if (!client.SendFrame(b.Build().Serialize(), kIo).ok()) return;
                  r = client.WaitTerminal(id, kSlowIo);
                }) /
                1e3;
    if (!r.ok() || r->type != "result") return -1;
    *verdict = r->verdict;
    if (const Json* v = r->raw.Find("components")) {
      *comps = static_cast<uint64_t>(v->AsDouble());
    }
    if (const Json* v = r->raw.Find("steals")) {
      *steals = static_cast<uint64_t>(v->AsDouble());
    }
    return ms;
  };
  for (int copies : {1, 2, 4, 8}) {
    std::string name = "c" + std::to_string(copies);
    std::string seq_verdict, par_verdict;
    uint64_t comps = 0, steals = 0, ignored = 0;
    double seq_ms =
        solve_ms(name.c_str(), 1, &seq_verdict, &ignored, &ignored);
    std::vector<double> par_runs;
    for (int rep = 0; rep < 3; ++rep) {
      par_runs.push_back(
          solve_ms(name.c_str(), 8, &par_verdict, &comps, &steals));
    }
    std::sort(par_runs.begin(), par_runs.end());
    double par_ms = par_runs[par_runs.size() / 2];
    if (seq_ms < 0 || par_ms < 0) break;
    bool parity = seq_verdict == par_verdict;
    std::printf("%-6d %-12.1f %-12.1f %-9.1f %-12s %-8llu %-8llu\n", copies,
                seq_ms, par_ms, par_ms > 0 ? seq_ms / par_ms : 0.0,
                parity ? seq_verdict.c_str() : "MISMATCH",
                static_cast<unsigned long long>(comps),
                static_cast<unsigned long long>(steals));
  }
  (void)daemon.Shutdown(milliseconds(5'000));
  std::printf("\n");
}

// The D9 database: `keys` single-fact R-blocks, every 4th key also
// carrying the S mirror that blocks it, under the stream query
// "R(x | y), not S(x | y)" with free {x}: the certain answers are exactly
// the unblocked keys, in spelling order.
Database StreamDb(int keys) {
  Schema schema;
  schema.AddRelationOrDie("R", 2, 1);
  schema.AddRelationOrDie("S", 2, 1);
  Database db(std::move(schema));
  for (int i = 0; i < keys; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "r%04d", i);
    Value k = Value::Of(buf);
    db.AddFactOrDie("R", {k, k});
    if (i % 4 == 0) db.AddFactOrDie("S", {k, k});
  }
  return db;
}

std::string AnswersStreamFrame(uint64_t id, uint64_t max_chunk,
                               const std::string& cursor, const char* cache) {
  JsonObjectBuilder b;
  b.Set("type", "answers").Set("id", id).Set("query",
                                             "R(x | y), not S(x | y)");
  Json::Array vars;
  vars.push_back(Json::MakeString("x"));
  b.Set("free", Json::MakeArray(std::move(vars)));
  if (max_chunk > 0) b.Set("max_chunk", max_chunk);
  if (!cursor.empty()) b.Set("cursor", cursor);
  b.Set("cache", cache);
  return b.Build().Serialize();
}

struct StreamRun {
  double ms = -1;
  double ttfb_us = 0;
  uint64_t tuples = 0;
  uint64_t chunks = 0;
  std::string mid_cursor;  // first cursor at or past `mid_at` tuples
};

StreamRun DriveStream(NetClient* client, uint64_t id, uint64_t max_chunk,
                      const std::string& cursor, const char* cache,
                      uint64_t mid_at) {
  StreamRun run;
  const auto t0 = std::chrono::steady_clock::now();
  auto since_t0_us = [&t0] {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  if (!client->SendFrame(AnswersStreamFrame(id, max_chunk, cursor, cache), kIo)
           .ok()) {
    return run;
  }
  for (;;) {
    Result<WireResponse> r = client->ReadResponse(kIo);
    if (!r.ok()) return run;
    if (r->type == "answer_chunk") {
      if (run.chunks == 0) run.ttfb_us = since_t0_us();
      run.tuples += r->tuples.size();
      ++run.chunks;
      if (mid_at > 0 && run.mid_cursor.empty() && run.tuples >= mid_at &&
          !r->cursor.empty()) {
        run.mid_cursor = r->cursor;
      }
      continue;
    }
    if (r->type == "answer_done") run.ms = since_t0_us() / 1e3;
    return run;
  }
}

void TableAnswerStream() {
  constexpr int kKeys = 800;
  constexpr uint64_t kExpected = kKeys - kKeys / 4;  // unblocked keys
  std::printf(
      "D9. streaming answers over the wire: %llu certain answers out of %d\n"
      "    candidates (\"R(x | y), not S(x | y)\", free x), chunk-per-job\n"
      "    scheduling. Cold stream, then the identical warm stream served\n"
      "    from the chunk cache:\n",
      static_cast<unsigned long long>(kExpected), kKeys);
  std::printf("%-8s %-8s %-10s %-10s %-10s %s\n", "chunk", "chunks", "cold_ms",
              "warm_ms", "ttfb_us", "ktup/s(cold)");
  DaemonOptions options;
  options.service.workers = 2;
  SolveDaemon daemon(std::make_shared<const Database>(StreamDb(kKeys)),
                     options);
  if (!daemon.Start().ok()) return;
  NetClient client;
  if (!client.Connect("127.0.0.1", daemon.port(), kIo).ok()) return;
  uint64_t id = 0;
  std::string resume_cursor;
  for (uint64_t chunk : {uint64_t{1}, uint64_t{16}, uint64_t{64},
                         uint64_t{256}}) {
    StreamRun cold =
        DriveStream(&client, ++id, chunk, "", "default", kExpected / 2);
    StreamRun warm = DriveStream(&client, ++id, chunk, "", "default", 0);
    if (cold.ms < 0 || warm.ms < 0 || cold.tuples != kExpected ||
        warm.tuples != kExpected) {
      std::printf("stream failed (tuples %llu/%llu)\n",
                  static_cast<unsigned long long>(cold.tuples),
                  static_cast<unsigned long long>(kExpected));
      break;
    }
    if (chunk == 64) resume_cursor = cold.mid_cursor;
    std::printf("%-8llu %-8llu %-10.1f %-10.1f %-10.0f %.0f\n",
                static_cast<unsigned long long>(chunk),
                static_cast<unsigned long long>(cold.chunks), cold.ms, warm.ms,
                cold.ttfb_us,
                static_cast<double>(cold.tuples) / cold.ms);
  }
  if (!resume_cursor.empty()) {
    // A consumer that died after half the stream: resume from its last
    // cursor vs restart from zero. Cache bypassed so both sides pay real
    // enumeration — the resume saving is the half it does not re-scan.
    StreamRun restart = DriveStream(&client, ++id, 64, "", "bypass", 0);
    StreamRun resume =
        DriveStream(&client, ++id, 64, resume_cursor, "bypass", 0);
    std::printf(
        "    resume-vs-restart at max_chunk=64 after consuming ~half "
        "(cache bypassed):\n"
        "    restart_ms=%.1f (%llu tuples)  resume_ms=%.1f (%llu tuples)\n",
        restart.ms, static_cast<unsigned long long>(restart.tuples),
        resume.ms, static_cast<unsigned long long>(resume.tuples));
  }
  (void)daemon.Shutdown(milliseconds(5'000));
  std::printf("\n");
}

void Tables() {
  TableRoundTrip();
  TableOverloadShedRate();
  TableCacheHotCold();
  TableShardIsolation();
  TableSandboxOverhead();
  TableLiveUpdate();
  TableDurability();
  TableComponentParallel();
  TableAnswerStream();
}

void BM_DaemonRoundTrip(benchmark::State& state) {
  DaemonOptions options;
  options.service.workers = 1;
  SolveDaemon daemon(PollDb(20, 23), options);
  if (!daemon.Start().ok()) {
    state.SkipWithError("daemon failed to start");
    return;
  }
  NetClient client;
  if (!client.Connect("127.0.0.1", daemon.port(), kIo).ok()) {
    state.SkipWithError("client failed to connect");
    return;
  }
  std::string query = "Mayor(t | p), not Lives(p | t)";  // PollQ1, wire spelling
  uint64_t id = 0;
  for (auto _ : state) {
    ++id;
    benchmark::DoNotOptimize(client.SendFrame(SolveFrame(id, query), kIo));
    benchmark::DoNotOptimize(client.WaitTerminal(id, kIo));
  }
  (void)daemon.Shutdown(milliseconds(5'000));
}
BENCHMARK(BM_DaemonRoundTrip);

}  // namespace
}  // namespace cqa

CQA_BENCH_MAIN(cqa::Tables)
