// Network-daemon experiments:
//
//   D1. Round-trip latency: one client, solves submitted one at a time over
//       a real loopback socket. Measures the full wire path — encode, TCP,
//       frame decode, service dispatch, response frame — as percentiles,
//       next to the in-process service dispatch from bench_serve as the
//       implied transport overhead.
//   D2. Pipelined throughput and shed rate under overload: clients pipeline
//       batches far past the service queue capacity; reports accepted vs
//       shed (typed `overloaded` frames) and terminal-frame accounting —
//       every pipelined solve must still get exactly one terminal frame.
//   D3. Result cache over the wire: the same solve frame submitted
//       repeatedly with `"cache":"default"` (hot: served from the result
//       cache after the first) vs `"cache":"bypass"` (cold: full solve each
//       time). The remaining hot-path cost is the wire round trip itself.
//
// The micro-benchmark times a single socket round trip through the daemon.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cqa/gen/poll.h"
#include "cqa/serve/net/client.h"
#include "cqa/serve/net/daemon.h"
#include "cqa/serve/net/json.h"
#include "cqa/serve/net/protocol.h"

namespace cqa {
namespace {

using std::chrono::milliseconds;

constexpr milliseconds kIo{30'000};

std::shared_ptr<const Database> PollDb(int persons, uint64_t seed) {
  Rng rng(seed);
  PollDbOptions opts;
  opts.num_persons = persons;
  opts.num_towns = std::max(2, persons / 5);
  return std::make_shared<const Database>(GeneratePollDatabase(opts, &rng));
}

std::string SolveFrame(uint64_t id, const std::string& query) {
  JsonObjectBuilder b;
  b.Set("type", "solve").Set("id", id).Set("query", query);
  return b.Build().Serialize();
}

uint64_t Percentile(std::vector<double>* us, double p) {
  std::sort(us->begin(), us->end());
  size_t rank = static_cast<size_t>(p * static_cast<double>(us->size() - 1));
  return static_cast<uint64_t>((*us)[std::min(rank, us->size() - 1)]);
}

void TableRoundTrip() {
  benchutil::Header("DAEMON", "framed TCP front-end for SolveService");
  std::printf("D1. loopback round-trip latency, 500 sequential solves:\n");
  std::printf("%-10s %-10s %-10s %-10s %-10s\n", "p50_us", "p90_us", "p99_us",
              "max_us", "solve_us(p50, service-side)");
  DaemonOptions options;
  options.service.workers = 2;
  SolveDaemon daemon(PollDb(40, 17), options);
  if (!daemon.Start().ok()) return;
  NetClient client;
  if (!client.Connect("127.0.0.1", daemon.port(), kIo).ok()) return;
  std::string query = "Mayor(t | p), not Lives(p | t)";  // PollQ1, wire spelling
  std::vector<double> rtt_us;
  constexpr int kRounds = 500;
  for (uint64_t id = 1; id <= kRounds; ++id) {
    double us = benchutil::TimeUs([&] {
      (void)client.SendFrame(SolveFrame(id, query), kIo);
      (void)client.WaitTerminal(id, kIo);
    });
    rtt_us.push_back(us);
  }
  ServiceStats service = daemon.service_stats();
  std::printf("%-10llu %-10llu %-10llu %-10llu %llu\n",
              static_cast<unsigned long long>(Percentile(&rtt_us, 0.50)),
              static_cast<unsigned long long>(Percentile(&rtt_us, 0.90)),
              static_cast<unsigned long long>(Percentile(&rtt_us, 0.99)),
              static_cast<unsigned long long>(Percentile(&rtt_us, 1.0)),
              static_cast<unsigned long long>(service.latency_p50_us));
  (void)daemon.Shutdown(milliseconds(5'000));
  std::printf("\n");
}

void TableOverloadShedRate() {
  std::printf(
      "D2. pipelined overload: 1 worker, queue cap 8, per-conn inflight cap "
      "256,\n    batches pipelined before reading; shed answers are typed "
      "`overloaded` frames:\n");
  std::printf("%-10s %-10s %-10s %-12s %-12s %-10s\n", "offered", "results",
              "shed", "shed_rate", "terminal", "t_ms");
  for (int offered : {8, 64, 256}) {
    DaemonOptions options;
    options.service.workers = 1;
    options.service.queue_capacity = 8;
    options.connection.max_inflight = 256;
    SolveDaemon daemon(PollDb(40, 19), options);
    if (!daemon.Start().ok()) return;
    NetClient client;
    if (!client.Connect("127.0.0.1", daemon.port(), kIo).ok()) return;
    std::string query = "Mayor(t | p), not Lives(p | t)";  // PollQ1, wire spelling
    uint64_t results = 0, shed = 0, terminal = 0;
    double t_us = benchutil::TimeUs([&] {
      for (uint64_t id = 1; id <= static_cast<uint64_t>(offered); ++id) {
        (void)client.SendFrame(SolveFrame(id, query), kIo);
      }
      for (int i = 0; i < offered; ++i) {
        Result<WireResponse> r = client.ReadResponse(kIo);
        if (!r.ok()) break;
        ++terminal;
        if (r->type == "result") ++results;
        if (r->type == "error" && r->code == "overloaded") ++shed;
      }
    });
    std::printf("%-10d %-10llu %-10llu %-12.2f %-12llu %.1f\n", offered,
                static_cast<unsigned long long>(results),
                static_cast<unsigned long long>(shed),
                offered > 0 ? static_cast<double>(shed) / offered : 0.0,
                static_cast<unsigned long long>(terminal), t_us / 1000.0);
    (void)daemon.Shutdown(milliseconds(5'000));
  }
  std::printf("\n");
}

std::string SolveFrameCached(uint64_t id, const std::string& query,
                             const char* policy) {
  JsonObjectBuilder b;
  b.Set("type", "solve").Set("id", id).Set("query", query).Set("cache",
                                                               policy);
  return b.Build().Serialize();
}

void TableCacheHotCold() {
  std::printf("D3. result cache over the wire, 300 identical solves each "
              "mode:\n");
  std::printf("%-8s %-10s %-10s %-10s %-10s\n", "mode", "p50_us", "p99_us",
              "hits", "speedup");
  double cold_p50 = 0;
  for (bool hot : {false, true}) {
    DaemonOptions options;
    options.service.workers = 2;
    options.service.cache_entries = 1024;
    options.service.warm_state = hot;
    SolveDaemon daemon(PollDb(200, 29), options);
    if (!daemon.Start().ok()) return;
    NetClient client;
    if (!client.Connect("127.0.0.1", daemon.port(), kIo).ok()) return;
    std::string query = "Mayor(t | p), not Lives(p | t)";  // PollQ1
    const char* policy = hot ? "default" : "bypass";
    std::vector<double> rtt_us;
    constexpr int kRounds = 300;
    for (uint64_t id = 1; id <= kRounds; ++id) {
      double us = benchutil::TimeUs([&] {
        (void)client.SendFrame(SolveFrameCached(id, query, policy), kIo);
        (void)client.WaitTerminal(id, kIo);
      });
      rtt_us.push_back(us);
    }
    ServiceStats service = daemon.service_stats();
    (void)daemon.Shutdown(milliseconds(5'000));
    double p50 = static_cast<double>(Percentile(&rtt_us, 0.50));
    double p99 = static_cast<double>(Percentile(&rtt_us, 0.99));
    if (!hot) cold_p50 = p50;
    std::printf("%-8s %-10.0f %-10.0f %-10llu %.1fx\n", hot ? "hot" : "cold",
                p50, p99, static_cast<unsigned long long>(service.cache_hits),
                hot && p50 > 0 ? cold_p50 / p50 : 1.0);
  }
  std::printf("\n");
}

void Tables() {
  TableRoundTrip();
  TableOverloadShedRate();
  TableCacheHotCold();
}

void BM_DaemonRoundTrip(benchmark::State& state) {
  DaemonOptions options;
  options.service.workers = 1;
  SolveDaemon daemon(PollDb(20, 23), options);
  if (!daemon.Start().ok()) {
    state.SkipWithError("daemon failed to start");
    return;
  }
  NetClient client;
  if (!client.Connect("127.0.0.1", daemon.port(), kIo).ok()) {
    state.SkipWithError("client failed to connect");
    return;
  }
  std::string query = "Mayor(t | p), not Lives(p | t)";  // PollQ1, wire spelling
  uint64_t id = 0;
  for (auto _ : state) {
    ++id;
    benchmark::DoNotOptimize(client.SendFrame(SolveFrame(id, query), kIo));
    benchmark::DoNotOptimize(client.WaitTerminal(id, kIo));
  }
  (void)daemon.Shutdown(milliseconds(5'000));
}
BENCHMARK(BM_DaemonRoundTrip);

}  // namespace
}  // namespace cqa

CQA_BENCH_MAIN(cqa::Tables)
