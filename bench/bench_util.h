#ifndef CQA_BENCH_BENCH_UTIL_H_
#define CQA_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment binaries. Each bench_e*.cc reproduces
// one paper artifact (see DESIGN.md §5 and EXPERIMENTS.md): it prints the
// experiment's table on stdout and then runs its registered google-benchmark
// micro-timings.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

namespace cqa::benchutil {

/// Wall-clock microseconds of `fn()`.
template <typename Fn>
double TimeUs(Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count();
}

/// Median wall-clock microseconds over `reps` runs.
template <typename Fn>
double MedianTimeUs(int reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) times.push_back(TimeUs(fn));
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

inline void Header(const std::string& id, const std::string& title) {
  std::printf("==========================================================\n");
  std::printf("%s: %s\n", id.c_str(), title.c_str());
  std::printf("==========================================================\n");
}

/// Standard main body: print the experiment table, then micro-benchmarks.
#define CQA_BENCH_MAIN(TABLE_FN)                       \
  int main(int argc, char** argv) {                    \
    TABLE_FN();                                        \
    benchmark::Initialize(&argc, argv);                \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    benchmark::RunSpecifiedBenchmarks();               \
    benchmark::Shutdown();                             \
    return 0;                                          \
  }

}  // namespace cqa::benchutil

#endif  // CQA_BENCH_BENCH_UTIL_H_
