// Ablation study for the implementation-level design choices called out in
// DESIGN.md (not paper claims — these justify the engineering):
//
//   A1. Algorithm 1 memoisation (collapses repeated substituted subqueries;
//       the recursion is exponential in |q| without it, Example 6.12).
//   A2. Formula simplification (pinned-equality elimination) and its effect
//       on rewriting evaluation cost.
//   A3. Backtracking block ordering: key-major vs relation-major.
//   A4. Backtracking optimistic early-accept for certainty-false instances.

#include "bench_util.h"
#include "cqa/base/rng.h"
#include "cqa/certainty/backtracking.h"
#include "cqa/fo/eval.h"
#include "cqa/gen/poll.h"
#include "cqa/gen/random_db.h"
#include "cqa/query/parser.h"
#include "cqa/reductions/hall_covering.h"
#include "cqa/rewriting/algorithm1.h"
#include "cqa/rewriting/rewriter.h"

namespace cqa {
namespace {

void TableMemo() {
  benchutil::Header("ABLATION", "implementation design choices");
  std::printf("A1. Algorithm 1 memoisation on q_Hall(ell) databases "
              "(calls made):\n%-5s %-12s %-12s %-10s\n", "ell", "memo_on",
              "memo_off", "speedup");
  Rng rng(21);
  for (int ell = 2; ell <= 5; ++ell) {
    SCoveringInstance inst;
    inst.num_elements = ell;
    for (int t = 0; t < ell; ++t) {
      std::vector<int> set;
      for (int a = 0; a < ell; ++a) {
        if (rng.Chance(0.6)) set.push_back(a);
      }
      inst.sets.push_back(std::move(set));
    }
    Database db = CoveringToHallDatabase(inst);
    Query q = MakeHallQuery(ell);
    Algorithm1 on(db, {.memoize = true});
    Algorithm1 off(db, {.memoize = false});
    bool r1 = on.IsCertain(q).value();
    bool r2 = off.IsCertain(q).value();
    std::printf("%-5d %-12llu %-12llu %.1fx %s\n", ell,
                static_cast<unsigned long long>(on.calls()),
                static_cast<unsigned long long>(off.calls()),
                static_cast<double>(off.calls()) /
                    static_cast<double>(on.calls()),
                r1 == r2 ? "" : "DISAGREE!");
  }
}

void TableSimplify() {
  std::printf("\nA2. simplification: rewriting size and evaluation time "
              "(poll qa, 500 persons):\n%-10s %-8s %-12s\n", "variant",
              "size", "t_eval_us");
  Query qa = PollQa();
  Rng rng(22);
  PollDbOptions opts;
  opts.num_persons = 500;
  opts.num_towns = 100;
  Database db = GeneratePollDatabase(opts, &rng);
  for (bool simplify : {true, false}) {
    Result<Rewriting> rw = RewriteCertain(qa, {.simplify = simplify});
    bool answer = false;
    double t = benchutil::MedianTimeUs(
        5, [&] { answer = EvalFo(rw->formula, db); });
    std::printf("%-10s %-8zu %-12.1f\n", simplify ? "simplified" : "raw",
                rw->formula->Size(), t);
  }
}

void TableBacktracking() {
  std::printf("\nA3/A4. backtracking heuristics (poll q1, cyclic; times us, "
              "nodes):\n%-26s %-12s %-12s %-12s\n", "variant", "persons=60",
              "persons=120", "persons=240");
  Query q1 = PollQ1();
  struct Variant {
    const char* name;
    BacktrackingOptions opts;
  };
  Variant variants[] = {
      {"key-major + early-accept", {}},
      {"relation-major order", {.key_major_order = false}},
      {"no early-accept", {.optimistic_early_accept = false}},
  };
  for (const Variant& v : variants) {
    std::printf("%-26s", v.name);
    for (int persons : {60, 120, 240}) {
      Rng rng(23);
      PollDbOptions opts;
      opts.num_persons = persons;
      opts.num_towns = std::max(2, persons / 5);
      Database db = GeneratePollDatabase(opts, &rng);
      BacktrackingOptions bopts = v.opts;
      bopts.max_nodes = 5'000'000;
      Result<BacktrackingReport> r{BacktrackingReport{}};
      double t = benchutil::TimeUs(
          [&] { r = SolveCertainBacktracking(q1, db, bopts); });
      if (r.ok()) {
        std::printf(" %-7.0f/%-4llu", t,
                    static_cast<unsigned long long>(r->nodes));
      } else {
        std::printf(" %-12s", "node-limit");
      }
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void Tables() {
  TableMemo();
  TableSimplify();
  TableBacktracking();
}

void BM_Algorithm1Memo(benchmark::State& state) {
  Rng rng(24);
  SCoveringInstance inst{4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}}};
  Database db = CoveringToHallDatabase(inst);
  Query q = MakeHallQuery(4);
  bool memo = state.range(0) != 0;
  for (auto _ : state) {
    Algorithm1 algo(db, {.memoize = memo});
    benchmark::DoNotOptimize(algo.IsCertain(q).value());
  }
}
BENCHMARK(BM_Algorithm1Memo)->Arg(0)->Arg(1);

void BM_BacktrackOrdering(benchmark::State& state) {
  Rng rng(25);
  PollDbOptions opts;
  opts.num_persons = 40;
  opts.num_towns = 8;
  Database db = GeneratePollDatabase(opts, &rng);
  Query q1 = PollQ1();
  BacktrackingOptions bopts;
  bopts.key_major_order = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsCertainBacktracking(q1, db, bopts).ok());
  }
}
BENCHMARK(BM_BacktrackOrdering)->Arg(0)->Arg(1);

}  // namespace
}  // namespace cqa

CQA_BENCH_MAIN(cqa::Tables)
