// Serve-layer experiments:
//
//   S1. Throughput scaling: batch completion time of a mixed query workload
//       through the SolveService as the worker pool grows. The per-request
//       work is small, so this mostly measures dispatch overhead and how
//       close the pool gets to linear scaling before queue contention bites.
//   S2. Overload behaviour: a single slow worker behind a tiny queue —
//       admission control must shed deterministically, and the latency of
//       the accepted requests stays bounded by queue depth, not offered
//       load.
//   S3. Result cache hot vs cold: the same solve submitted repeatedly with
//       the cache enabled (hot: everything after the first submit is a
//       lookup) vs every submit bypassing the cache (cold: each one pays
//       the full solve). The ratio of median latencies is the cache win.
//
// The micro-benchmarks time the queue hot path (TryPush/Pop round trip) and
// end-to-end service dispatch of a trivial request.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cqa/gen/families.h"
#include "cqa/gen/poll.h"
#include "cqa/gen/random_db.h"
#include "cqa/query/parser.h"
#include "cqa/serve/bounded_queue.h"
#include "cqa/serve/service.h"

namespace cqa {
namespace {

using std::chrono::milliseconds;

std::shared_ptr<const Database> PollDb(int persons, uint64_t seed) {
  Rng rng(seed);
  PollDbOptions opts;
  opts.num_persons = persons;
  opts.num_towns = std::max(2, persons / 5);
  return std::make_shared<const Database>(GeneratePollDatabase(opts, &rng));
}

void TableThroughputScaling() {
  benchutil::Header("SERVE", "concurrent solve service");
  std::printf("S1. 200 poll-q1 solves, batch wall time by worker count:\n");
  std::printf("%-10s %-12s %-12s %-10s\n", "workers", "t_ms", "p99_us",
              "speedup");
  auto db = PollDb(40, 17);
  Query q1 = PollQ1();
  constexpr int kJobs = 200;
  double base_ms = 0;
  for (int workers : {1, 2, 4, 8}) {
    ServiceOptions options;
    options.workers = workers;
    options.queue_capacity = kJobs;
    double t_us;
    uint64_t p99 = 0;
    {
      SolveService service(options);
      std::atomic<int> done{0};
      t_us = benchutil::TimeUs([&] {
        for (int i = 0; i < kJobs; ++i) {
          (void)service.Submit(ServeJob(q1, db),
                               [&](const ServeResponse&) { ++done; });
        }
        (void)service.Shutdown(milliseconds(60'000));
      });
      p99 = service.Stats().latency_p99_us;
    }
    double t_ms = t_us / 1000.0;
    if (workers == 1) base_ms = t_ms;
    std::printf("%-10d %-12.1f %-12llu %.2fx\n", workers, t_ms,
                static_cast<unsigned long long>(p99),
                base_ms / (t_ms > 0 ? t_ms : 1));
  }
  std::printf("\n");
}

void TableOverload() {
  std::printf("S2. overload: 1 worker, queue cap 8, 200 offered jobs:\n");
  std::printf("%-12s %-10s %-10s %-12s %-12s\n", "accepted", "shed",
              "completed", "p99_us", "max_us");
  auto db = PollDb(40, 19);
  Query q1 = PollQ1();
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 8;
  SolveService service(options);
  for (int i = 0; i < 200; ++i) {
    (void)service.Submit(ServeJob(q1, db), [](const ServeResponse&) {});
  }
  (void)service.Shutdown(milliseconds(60'000));
  ServiceStats s = service.Stats();
  std::printf("%-12llu %-10llu %-10llu %-12llu %-12llu\n",
              static_cast<unsigned long long>(s.accepted),
              static_cast<unsigned long long>(s.shed),
              static_cast<unsigned long long>(s.completed),
              static_cast<unsigned long long>(s.latency_p99_us),
              static_cast<unsigned long long>(s.latency_max_us));
  std::printf("\n");
}

void TableCacheHotCold() {
  std::printf("S3. result cache: 200 identical solves each mode, per-solve "
              "latency:\n");
  std::printf("%-8s %-10s %-10s %-10s %-8s %-10s\n", "mode", "p50_us",
              "p99_us", "hits", "misses", "speedup");
  auto db = PollDb(200, 23);
  Query q1 = PollQ1();
  constexpr int kJobs = 200;
  double cold_p50 = 0;
  for (bool hot : {false, true}) {
    ServiceOptions options;
    options.workers = 1;
    options.queue_capacity = 4;
    options.cache_entries = 1024;
    options.warm_state = hot;
    SolveService service(options);
    std::vector<double> lat_us;
    for (int i = 0; i < kJobs; ++i) {
      ServeJob job(q1, db);
      job.cache = hot ? CachePolicy::kDefault : CachePolicy::kBypass;
      std::atomic<bool> done{false};
      double us = benchutil::TimeUs([&] {
        while (!service
                    .Submit(job,
                            [&](const ServeResponse&) { done.store(true); })
                    .ok()) {
          std::this_thread::yield();
        }
        while (!done.load()) std::this_thread::yield();
      });
      lat_us.push_back(us);
    }
    ServiceStats s = service.Stats();
    (void)service.Shutdown(milliseconds(10'000));
    std::sort(lat_us.begin(), lat_us.end());
    double p50 = lat_us[lat_us.size() / 2];
    double p99 = lat_us[lat_us.size() * 99 / 100];
    if (!hot) cold_p50 = p50;
    std::printf("%-8s %-10.1f %-10.1f %-10llu %-8llu %.1fx\n",
                hot ? "hot" : "cold", p50, p99,
                static_cast<unsigned long long>(s.cache_hits),
                static_cast<unsigned long long>(s.cache_misses),
                hot && p50 > 0 ? cold_p50 / p50 : 1.0);
  }
  std::printf("\n");
}

void Tables() {
  TableThroughputScaling();
  TableOverload();
  TableCacheHotCold();
}

void BM_QueuePushPop(benchmark::State& state) {
  BoundedQueue<int> q(1024);
  int item = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.TryPush(1));
    benchmark::DoNotOptimize(q.TryPop(&item));
  }
}
BENCHMARK(BM_QueuePushPop);

void BM_ServiceDispatch(benchmark::State& state) {
  // End-to-end cost of submit -> solve(trivial) -> callback, single worker.
  Result<Database> db = Database::FromText("R(a | b)");
  auto shared = std::make_shared<const Database>(std::move(db.value()));
  Result<Query> q = ParseQuery("R(x | y)");
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 4;
  SolveService service(options);
  for (auto _ : state) {
    std::atomic<bool> done{false};
    while (!service
                .Submit(ServeJob(q.value(), shared),
                        [&](const ServeResponse&) { done.store(true); })
                .ok()) {
      std::this_thread::yield();
    }
    while (!done.load()) std::this_thread::yield();
  }
  (void)service.Shutdown(milliseconds(10'000));
}
BENCHMARK(BM_ServiceDispatch);

}  // namespace
}  // namespace cqa

CQA_BENCH_MAIN(cqa::Tables)
