// E3 — Figure 3 / Example 7.1: q4 = {X(x), Y(y), ¬R(x|y), ¬S(y|x)}.
//
// Reproduces: (i) the Figure 3 verdict (m = 3, n = 2, 3·2 > 3+2, so every
// repair satisfies q4 regardless of R and S); (ii) the combinatorial FO
// solver validated against the naive oracle across the m×n sweep including
// all degenerate cases; (iii) scaling of the counting-argument solver to
// sizes where repair enumeration is impossible.

#include "bench_util.h"
#include "cqa/base/rng.h"
#include "cqa/certainty/naive.h"
#include "cqa/reductions/q4.h"

namespace cqa {
namespace {

Database RandomQ4Db(Rng* rng, int m, int n, double p) {
  Schema s;
  s.AddRelationOrDie("X", 1, 1);
  s.AddRelationOrDie("Y", 1, 1);
  s.AddRelationOrDie("R", 2, 1);
  s.AddRelationOrDie("S", 2, 1);
  Database db(s);
  auto a = [](int i) { return Value::Of("a" + std::to_string(i)); };
  auto b = [](int i) { return Value::Of("b" + std::to_string(i)); };
  for (int i = 0; i < m; ++i) db.AddFactOrDie("X", {a(i)});
  for (int j = 0; j < n; ++j) db.AddFactOrDie("Y", {b(j)});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      if (rng->Chance(p)) db.AddFactOrDie("R", {a(i), b(j)});
      if (rng->Chance(p)) db.AddFactOrDie("S", {b(j), a(i)});
    }
  }
  return db;
}

void Table() {
  benchutil::Header("E3", "q4's combinatorial FO test (Figure 3 / "
                          "Example 7.1)");

  Result<Database> fig3 = Database::FromText(R"(
    X(a1), X(a2), X(a3)
    Y(b1), Y(b2)
    R(a1 | b1), R(a1 | b2), R(a2 | b1), R(a3 | b2)
    S(b1 | a2), S(b2 | a1), S(b2 | a3)
  )");
  std::printf("Figure 3 instance (m=3, n=2): certain=%s "
              "(paper: true, since 3*2 > 3+2)\n\n",
              IsCertainQ4(fig3.value()) ? "true" : "false");

  std::printf("agreement sweep vs naive oracle (100 random R/S per cell):\n");
  std::printf("%-5s", "m\\n");
  for (int n = 0; n <= 3; ++n) std::printf(" %-8d", n);
  std::printf("\n");
  Rng rng(31);
  Query q4 = MakeQ4();
  for (int m = 0; m <= 3; ++m) {
    std::printf("%-5d", m);
    for (int n = 0; n <= 3; ++n) {
      int agree = 0, total = 0;
      for (int t = 0; t < 100; ++t) {
        Database db = RandomQ4Db(&rng, m, n, 0.45);
        Result<bool> naive = IsCertainNaive(q4, db);
        if (!naive.ok()) continue;
        ++total;
        if (naive.value() == IsCertainQ4(db)) ++agree;
      }
      std::printf(" %3d/%-4d", agree, total);
    }
    std::printf("\n");
  }

  std::printf("\nscaling of the FO solver (repairs are ~2^(mn), naive "
              "impossible):\n%-8s %-10s %-12s %-10s\n", "m=n", "facts",
              "certain", "t_us");
  for (int m : {10, 40, 160, 640}) {
    Database db = RandomQ4Db(&rng, m, m, 0.3);
    bool certain = false;
    double t = benchutil::MedianTimeUs(5, [&] { certain = IsCertainQ4(db); });
    std::printf("%-8d %-10zu %-12s %-10.1f\n", m, db.NumFacts(),
                certain ? "true" : "false", t);
  }
  std::printf("\n");
}

void BM_Q4Solver(benchmark::State& state) {
  Rng rng(37);
  int m = static_cast<int>(state.range(0));
  Database db = RandomQ4Db(&rng, m, m, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsCertainQ4(db));
  }
}
BENCHMARK(BM_Q4Solver)->Arg(2)->Arg(10)->Arg(100);

void BM_Q4NaiveSmall(benchmark::State& state) {
  Rng rng(41);
  Database db = RandomQ4Db(&rng, 2, 2, 0.5);
  Query q4 = MakeQ4();
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsCertainNaive(q4, db).value());
  }
}
BENCHMARK(BM_Q4NaiveSmall);

}  // namespace
}  // namespace cqa

CQA_BENCH_MAIN(cqa::Table)
