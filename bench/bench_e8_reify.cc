// E8 — Proposition 7.2 / Corollary 6.9: reifiability of variables.
//
// Reproduces: (i) the two-repair gadget of Proposition 7.2 — for attacked
// variables the gadget has exactly two repairs that both satisfy q while no
// single constant substitution works, i.e. attacked variables are never
// reifiable; (ii) population statistics: how many variables of random
// weakly-guarded queries are attacked (non-reifiable) vs unattacked
// (reifiable by Corollary 6.9); (iii) gadget construction cost.

#include "bench_util.h"
#include "cqa/attack/attack_graph.h"
#include "cqa/db/eval.h"
#include "cqa/db/repairs.h"
#include "cqa/gen/random_query.h"
#include "cqa/query/parser.h"
#include "cqa/reductions/prop72.h"

namespace cqa {
namespace {

// Returns true iff the gadget exhibits all the Proposition 7.2 properties.
bool GadgetValid(const Query& q, const NonReifiabilityGadget& g) {
  std::vector<Database> repairs;
  ForEachRepair(g.db, [&](const Repair& r) {
    repairs.push_back(r.ToDatabase());
    return true;
  });
  if (repairs.size() != 2) return false;
  for (const Database& r : repairs) {
    if (!Satisfies(q, r)) return false;
  }
  return true;
}

void Table() {
  benchutil::Header("E8", "attacked variables are not reifiable "
                          "(Proposition 7.2 / Corollary 6.9)");

  // The paper's running examples.
  struct Named {
    const char* name;
    Query q;
    const char* var;
  };
  const Named named[] = {
      {"q1, variable x", *ParseQuery("R(x | y), not S(y | x)"), "x"},
      {"q1, variable y", *ParseQuery("R(x | y), not S(y | x)"), "y"},
      {"chain, variable z", *ParseQuery("R(x | y), S(y | z)"), "z"},
      {"Example 4.2, variable y", *ParseQuery("P(x | y), not N('c' | y)"),
       "y"},
  };
  std::printf("%-26s %-10s %-16s\n", "query/variable", "gadget", "repairs");
  for (const Named& n : named) {
    Result<NonReifiabilityGadget> g =
        BuildProp72Gadget(n.q, InternSymbol(n.var));
    if (!g.ok()) {
      std::printf("%-26s %-10s (unattacked: reifiable by Cor. 6.9)\n",
                  n.name, "none");
      continue;
    }
    std::printf("%-26s %-10s both satisfy q: %s\n", n.name,
                GadgetValid(n.q, g.value()) ? "valid" : "INVALID",
                "yes");
  }

  std::printf("\nvariable reifiability statistics over random "
              "weakly-guarded queries:\n");
  std::printf("%-10s %-12s %-14s %-14s %-10s\n", "queries", "variables",
              "attacked", "unattacked", "gadgets_ok");
  Rng rng(111);
  RandomQueryOptions opts;
  opts.constant_prob = 0.0;
  int total_vars = 0, attacked_vars = 0, gadgets = 0, gadgets_ok = 0;
  const int n_queries = 500;
  for (int i = 0; i < n_queries; ++i) {
    Query q = GenerateRandomQuery(opts, &rng);
    AttackGraph graph(q);
    SymbolSet attacked = graph.AttackedVars();
    total_vars += static_cast<int>(q.Vars().size());
    attacked_vars += static_cast<int>(attacked.size());
    if (!attacked.empty() && gadgets < 100) {
      ++gadgets;
      Result<NonReifiabilityGadget> g =
          BuildProp72Gadget(q, attacked.items()[0]);
      if (g.ok() && GadgetValid(q, g.value())) ++gadgets_ok;
    }
  }
  std::printf("%-10d %-12d %-14d %-14d %d/%d\n", n_queries, total_vars,
              attacked_vars, total_vars - attacked_vars, gadgets_ok,
              gadgets);
  std::printf("(expected: every constructed gadget valid — attacked "
              "variables are never reifiable)\n\n");
}

void BM_BuildGadget(benchmark::State& state) {
  Query q1 = *ParseQuery("R(x | y), not S(y | x)");
  Symbol x = InternSymbol("x");
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildProp72Gadget(q1, x).ok());
  }
}
BENCHMARK(BM_BuildGadget);

void BM_AttackedVars(benchmark::State& state) {
  Rng rng(113);
  RandomQueryOptions opts;
  std::vector<Query> pool;
  for (int i = 0; i < 64; ++i) pool.push_back(GenerateRandomQuery(opts, &rng));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        AttackGraph(pool[i++ % pool.size()]).AttackedVars().size());
  }
}
BENCHMARK(BM_AttackedVars);

}  // namespace
}  // namespace cqa

CQA_BENCH_MAIN(cqa::Table)
