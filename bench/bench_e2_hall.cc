// E2 — Figure 2 / Examples 1.2 and 6.12: q_Hall and S-COVERING.
//
// Reproduces: (i) the Figure 2 rewriting for ℓ = 3 (printed); (ii) the
// paper's remark that the rewriting length is exponential in ℓ (table);
// (iii) the reduction equivalence "coverable iff not certain" against the
// Hall/matching solver; (iv) cost of answering via rewriting evaluation vs
// Algorithm 1 vs naive enumeration.

#include "bench_util.h"
#include "cqa/base/rng.h"
#include "cqa/certainty/naive.h"
#include "cqa/certainty/rewriting_solver.h"
#include "cqa/fo/eval.h"
#include "cqa/matching/covering.h"
#include "cqa/reductions/hall_covering.h"
#include "cqa/rewriting/algorithm1.h"
#include "cqa/rewriting/rewriter.h"

namespace cqa {
namespace {

SCoveringInstance RandomInstance(Rng* rng, int elements, int ell) {
  SCoveringInstance inst;
  inst.num_elements = elements;
  for (int t = 0; t < ell; ++t) {
    std::vector<int> set;
    for (int a = 0; a < elements; ++a) {
      if (rng->Chance(0.5)) set.push_back(a);
    }
    inst.sets.push_back(std::move(set));
  }
  return inst;
}

void Table() {
  benchutil::Header("E2", "q_Hall rewriting growth and S-COVERING "
                          "(Figure 2, Examples 1.2/6.12)");

  Result<Rewriting> fig2 = RewriteCertain(MakeHallQuery(3));
  std::printf("machine-built Figure 2 rewriting (ell = 3):\n%s\n\n",
              fig2->formula->ToString().c_str());

  std::printf("%-4s %-10s %-12s %-12s %-14s %-12s\n", "ell", "raw_size",
              "simplified", "t_build_us", "t_eval_us", "agree");
  Rng rng(777);
  for (int ell = 1; ell <= 7; ++ell) {
    Result<Rewriting> rw{Rewriting{}};
    double t_build = benchutil::TimeUs(
        [&] { rw = RewriteCertain(MakeHallQuery(ell)); });
    SCoveringInstance inst = RandomInstance(&rng, ell, ell);
    Database db = CoveringToHallDatabase(inst);
    bool certain = false;
    double t_eval = benchutil::MedianTimeUs(
        3, [&] { certain = EvalFo(rw->formula, db); });
    bool coverable = SolveSCovering(inst).has_value();
    bool naive_ok = true;
    if (db.CountRepairs(1 << 18) < (1 << 18)) {
      naive_ok = IsCertainNaive(MakeHallQuery(ell), db).value() == certain;
    }
    std::printf("%-4d %-10zu %-12zu %-12.1f %-14.1f %-12s\n", ell,
                rw->raw_size, rw->simplified_size, t_build, t_eval,
                (certain == !coverable && naive_ok) ? "yes" : "NO!");
  }
  std::printf("(expected shape: raw_size roughly doubles per ell — the\n"
              " rewriting is exponential in the query, Example 6.12)\n\n");
}

void BM_RewriteHall(benchmark::State& state) {
  int ell = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RewriteCertain(MakeHallQuery(ell)).ok());
  }
}
BENCHMARK(BM_RewriteHall)->DenseRange(1, 7);

void BM_EvalHallRewriting(benchmark::State& state) {
  int ell = 4;
  int elements = static_cast<int>(state.range(0));
  Result<RewritingSolver> solver =
      RewritingSolver::Create(MakeHallQuery(ell));
  Rng rng(11);
  Database db = CoveringToHallDatabase(RandomInstance(&rng, elements, ell));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver->IsCertain(db));
  }
}
BENCHMARK(BM_EvalHallRewriting)->Arg(4)->Arg(16)->Arg(32);

void BM_Algorithm1Hall(benchmark::State& state) {
  int ell = 4;
  int elements = static_cast<int>(state.range(0));
  Query q = MakeHallQuery(ell);
  Rng rng(11);
  Database db = CoveringToHallDatabase(RandomInstance(&rng, elements, ell));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsCertainAlgorithm1(q, db).value());
  }
}
BENCHMARK(BM_Algorithm1Hall)->Arg(4)->Arg(16)->Arg(32);

void BM_CoveringMatching(benchmark::State& state) {
  int elements = static_cast<int>(state.range(0));
  Rng rng(13);
  SCoveringInstance inst = RandomInstance(&rng, elements, elements + 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveSCovering(inst).has_value());
  }
}
BENCHMARK(BM_CoveringMatching)->Arg(16)->Arg(128)->Arg(512);

}  // namespace
}  // namespace cqa

CQA_BENCH_MAIN(cqa::Table)
