// E4 — Figure 4 / Lemma 5.3: UNDIRECTED FOREST ACCESSIBILITY reduces to
// CERTAINTY(q2).
//
// Reproduces: (i) Figure 4's two-component forest database and the
// equivalence "u,v connected iff q2 certain"; (ii) validation of the
// reduction on random two-component forests against union-find ground
// truth, with the exact backtracking solver deciding certainty; (iii) cost
// of reduction + solving as the forest grows.

#include "bench_util.h"
#include "cqa/base/rng.h"
#include "cqa/certainty/backtracking.h"
#include "cqa/certainty/naive.h"
#include "cqa/reductions/ufa.h"

namespace cqa {
namespace {

UfaInstance RandomForest(Rng* rng, int per_side) {
  UfaInstance inst;
  inst.num_vertices = 2 * per_side;
  for (int i = 1; i < per_side; ++i) {
    inst.edges.emplace_back(static_cast<int>(rng->Below(i)), i);
    inst.edges.emplace_back(per_side + static_cast<int>(rng->Below(i)),
                            per_side + i);
  }
  inst.u = static_cast<int>(rng->Below(per_side));
  do {
    inst.v = static_cast<int>(rng->Below(2 * per_side));
  } while (inst.v == inst.u);
  return inst;
}

void Table() {
  benchutil::Header("E4", "UFA -> CERTAINTY(q2) (Figure 4 / Lemma 5.3)");

  // Figure 4's shape: two path components.
  UfaInstance fig4{5, {{0, 1}, {1, 2}, {3, 4}}, 0, 2};
  Database db4 = UfaToQ2Database(fig4);
  std::printf("Figure 4 forest (paths 0-1-2 and 3-4), u=0 v=2: "
              "connected=%s certain(q2)=%s\n",
              SolveUfa(fig4) ? "yes" : "no",
              IsCertainBacktracking(MakeQ2(), db4).value() ? "true" : "false");
  UfaInstance fig4b{5, {{0, 1}, {1, 2}, {3, 4}}, 0, 4};
  std::printf("same forest, u=0 v=4 (across components): connected=%s "
              "certain(q2)=%s\n\n",
              SolveUfa(fig4b) ? "yes" : "no",
              IsCertainBacktracking(MakeQ2(), UfaToQ2Database(fig4b)).value()
                  ? "true"
                  : "false");

  std::printf("%-10s %-8s %-10s %-10s %-12s %-12s %-12s\n", "vertices",
              "facts", "agree", "t_reduce", "t_backtrack", "t_naive",
              "t_unionfind");
  Rng rng(51);
  Query q2 = MakeQ2();
  for (int per_side : {2, 3, 4, 5}) {
    int agree = 0;
    const int trials = 6;
    double t_reduce = 0, t_bt = 0, t_naive = 0, t_uf = 0;
    size_t facts = 0;
    bool naive_feasible = true;
    for (int t = 0; t < trials; ++t) {
      UfaInstance inst = RandomForest(&rng, per_side);
      Database db{Schema()};
      t_reduce += benchutil::TimeUs([&] { db = UfaToQ2Database(inst); });
      facts = db.NumFacts();
      bool truth = false;
      t_uf += benchutil::TimeUs([&] { truth = SolveUfa(inst); });
      bool certain = false;
      t_bt += benchutil::TimeUs(
          [&] { certain = IsCertainBacktracking(q2, db).value(); });
      if (certain == truth) ++agree;
      if (db.CountRepairs(1 << 16) < (1 << 16)) {
        t_naive += benchutil::TimeUs(
            [&] { benchmark::DoNotOptimize(IsCertainNaive(q2, db).value()); });
      } else {
        naive_feasible = false;
      }
    }
    std::string naive_str =
        naive_feasible ? std::to_string(t_naive / trials) : std::string("-");
    std::printf("%-10d %-8zu %2d/%-7d %-12.1f %-12.1f %-12s %-12.2f\n",
                2 * per_side, facts, agree, trials, t_reduce / trials,
                t_bt / trials, naive_str.c_str(), t_uf / trials);
  }
  std::printf("(expected shape: full agreement; union-find is microseconds;\n"
              " naive blows up while branch-and-prune stays usable)\n\n");
}

void BM_UfaReduction(benchmark::State& state) {
  Rng rng(53);
  UfaInstance inst = RandomForest(&rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(UfaToQ2Database(inst).NumFacts());
  }
}
BENCHMARK(BM_UfaReduction)->Arg(4)->Arg(16)->Arg(64);

void BM_BacktrackingOnUfa(benchmark::State& state) {
  Rng rng(59);
  UfaInstance inst = RandomForest(&rng, static_cast<int>(state.range(0)));
  Database db = UfaToQ2Database(inst);
  Query q2 = MakeQ2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsCertainBacktracking(q2, db).value());
  }
}
BENCHMARK(BM_BacktrackingOnUfa)->Arg(2)->Arg(4)->Arg(6);

void BM_UnionFindGroundTruth(benchmark::State& state) {
  Rng rng(61);
  UfaInstance inst = RandomForest(&rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveUfa(inst));
  }
}
BENCHMARK(BM_UnionFindGroundTruth)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace cqa

CQA_BENCH_MAIN(cqa::Table)
