// Execution-governor experiments:
//
//   G1. Bounded latency: on the adversarial pigeonhole instance (certainty
//       TRUE by a pigeonhole argument, exponential for search) every
//       exponential solver honours a wall-clock deadline, and the kAuto
//       degradation cascade converts the exhausted exact run into a
//       qualified sampling verdict — all within ~2x the deadline.
//   G2. Probe overhead: the amortised CheckEvery probe must be cheap enough
//       to leave governed solver throughput unchanged on instances that
//       finish well within budget.

#include "bench_util.h"
#include "cqa/base/budget.h"
#include "cqa/certainty/backtracking.h"
#include "cqa/certainty/naive.h"
#include "cqa/certainty/solver.h"
#include "cqa/gen/families.h"
#include "cqa/gen/poll.h"
#include "cqa/gen/random_db.h"

namespace cqa {
namespace {

using std::chrono::milliseconds;

void TableBoundedLatency() {
  benchutil::Header("GOVERNOR", "deadlines and degradation");
  std::printf("G1. pigeonhole(k=12), 50 ms deadline (wall-clock honoured?):\n");
  std::printf("%-22s %-20s %-10s %-12s\n", "solver", "outcome", "t_ms",
              "steps");
  Database db = PigeonholeDatabase(12);

  {
    Budget budget = Budget::WithTimeout(milliseconds(50));
    BacktrackingOptions opts;
    opts.budget = &budget;
    Result<BacktrackingReport> r{BacktrackingReport{}};
    double t = benchutil::TimeUs(
        [&] { r = SolveCertainBacktracking(PigeonholeQuery(), db, opts); });
    std::printf("%-22s %-20s %-10.1f %-12llu\n", "backtracking",
                r.ok() ? "finished" : ToString(r.code()), t / 1000.0,
                static_cast<unsigned long long>(budget.steps()));
  }
  {
    // k=10 keeps the repair count below the uint64 refusal cap, so the
    // deadline (not the up-front cap) is what stops the enumeration.
    Database naive_db = PigeonholeDatabase(10);
    Budget budget = Budget::WithTimeout(milliseconds(50));
    NaiveOptions opts;
    opts.max_repairs = UINT64_MAX;
    opts.budget = &budget;
    Result<bool> r{false};
    double t = benchutil::TimeUs(
        [&] { r = IsCertainNaive(PigeonholeQuery(), naive_db, opts); });
    std::printf("%-22s %-20s %-10.1f %-12llu\n", "naive",
                r.ok() ? "finished" : ToString(r.code()), t / 1000.0,
                static_cast<unsigned long long>(budget.steps()));
  }
  {
    Budget budget = Budget::WithTimeout(milliseconds(50));
    SolveOptions options;
    options.budget = &budget;
    Result<SolveReport> r = Result<SolveReport>::Error("unset");
    double t = benchutil::TimeUs(
        [&] { r = SolveCertainty(PigeonholeCyclicQuery(), db, options); });
    if (r.ok()) {
      std::printf("%-22s %-20s %-10.1f %-12llu  (confidence %.4f)\n",
                  "auto + degradation",
                  ToString(r->verdict).c_str(), t / 1000.0,
                  static_cast<unsigned long long>(r->samples),
                  r->confidence);
    } else {
      std::printf("%-22s %-20s %-10.1f\n", "auto + degradation", "ERROR",
                  t / 1000.0);
    }
  }
  std::printf("\n");
}

void TableProbeOverhead() {
  std::printf("G2. probe overhead on in-budget instances "
              "(poll q1, median us):\n");
  std::printf("%-12s %-14s %-14s %-10s\n", "persons", "ungoverned",
              "governed", "ratio");
  Query q1 = PollQ1();
  for (int persons : {40, 80, 160}) {
    Rng rng(31);
    PollDbOptions opts;
    opts.num_persons = persons;
    opts.num_towns = std::max(2, persons / 5);
    Database db = GeneratePollDatabase(opts, &rng);
    double plain = benchutil::MedianTimeUs(7, [&] {
      (void)SolveCertainBacktracking(q1, db);
    });
    double governed = benchutil::MedianTimeUs(7, [&] {
      Budget budget = Budget::WithTimeout(milliseconds(10'000));
      BacktrackingOptions bopts;
      bopts.budget = &budget;
      (void)SolveCertainBacktracking(q1, db, bopts);
    });
    std::printf("%-12d %-14.1f %-14.1f %.2fx\n", persons, plain, governed,
                governed / (plain > 0 ? plain : 1));
  }
  std::printf("\n");
}

void Tables() {
  TableBoundedLatency();
  TableProbeOverhead();
}

void BM_ProbeCheckEvery(benchmark::State& state) {
  Budget budget = Budget::WithTimeout(milliseconds(60'000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(budget.CheckEvery());
  }
}
BENCHMARK(BM_ProbeCheckEvery);

void BM_GovernedBacktracking(benchmark::State& state) {
  Rng rng(32);
  PollDbOptions opts;
  opts.num_persons = 40;
  opts.num_towns = 8;
  Database db = GeneratePollDatabase(opts, &rng);
  Query q1 = PollQ1();
  bool governed = state.range(0) != 0;
  for (auto _ : state) {
    Budget budget = Budget::WithTimeout(milliseconds(10'000));
    BacktrackingOptions bopts;
    if (governed) bopts.budget = &budget;
    benchmark::DoNotOptimize(SolveCertainBacktracking(q1, db, bopts).ok());
  }
}
BENCHMARK(BM_GovernedBacktracking)->Arg(0)->Arg(1);

}  // namespace
}  // namespace cqa

CQA_BENCH_MAIN(cqa::Tables)
