// E6 — Example 4.5 / Lemma 6.1: the consistent first-order rewriting as an
// execution strategy.
//
// Reproduces: (i) rewriting construction for the paper's rewritable queries
// (q3, qa, qb, Example 6.11) with formula sizes; (ii) the data-complexity
// story: evaluation cost of the rewriting vs Algorithm 1 vs exact
// backtracking vs naive enumeration as the database grows — naive is
// exponential and drops out immediately, while the FO strategies scale
// polynomially.

#include "bench_util.h"
#include "cqa/base/rng.h"
#include "cqa/certainty/backtracking.h"
#include "cqa/certainty/naive.h"
#include "cqa/certainty/rewriting_solver.h"
#include "cqa/gen/poll.h"
#include "cqa/gen/random_db.h"
#include "cqa/query/parser.h"
#include "cqa/rewriting/algorithm1.h"

namespace cqa {
namespace {

void SizesTable() {
  benchutil::Header("E6", "rewriting construction & solver crossover "
                          "(Example 4.5 / Lemma 6.1)");
  struct Named {
    const char* name;
    Query q;
  };
  const Named named[] = {
      {"q3 (Example 4.5)", *ParseQuery("P(x | y), not N('c' | y)")},
      {"Example 6.11", *ParseQuery("P(y), not N('c' | 'a', y, y)")},
      {"guarded pair", *ParseQuery("P(x | y), not N(x | y)")},
      {"chain R,S", *ParseQuery("R(x | y), S(y | z)")},
      {"poll qa", PollQa()},
      {"poll qb", PollQb()},
  };
  std::printf("%-18s %-10s %-12s %-8s %-12s\n", "query", "raw_size",
              "simplified", "levels", "t_build_us");
  for (const Named& n : named) {
    Result<Rewriting> rw{Rewriting{}};
    double t = benchutil::MedianTimeUs(5, [&] { rw = RewriteCertain(n.q); });
    std::printf("%-18s %-10zu %-12zu %-8d %-12.1f\n", n.name, rw->raw_size,
                rw->simplified_size, rw->levels, t);
  }
}

void CrossoverTable() {
  std::printf("\nsolver crossover on poll qa (times in us; '-' = skipped, "
              "naive capped at 2^22 repairs):\n");
  std::printf("%-9s %-8s %-12s %-12s %-12s %-12s %-12s\n", "persons",
              "facts", "t_rewrite", "t_algo1", "t_backtrack", "t_naive",
              "answers");
  Query qa = PollQa();
  Result<RewritingSolver> solver = RewritingSolver::Create(qa);
  Rng rng(81);
  for (int persons : {5, 20, 100, 500, 2000}) {
    PollDbOptions opts;
    opts.num_persons = persons;
    opts.num_towns = std::max(2, persons / 5);
    Database db = GeneratePollDatabase(opts, &rng);
    bool a1 = false, a2 = false, a3 = false;
    double t_rw = benchutil::MedianTimeUs(
        3, [&] { a1 = solver->IsCertain(db); });
    double t_a1 = benchutil::MedianTimeUs(
        3, [&] { a2 = IsCertainAlgorithm1(qa, db).value(); });
    double t_bt = benchutil::MedianTimeUs(
        3, [&] { a3 = IsCertainBacktracking(qa, db).value(); });
    std::string t_naive = "-";
    bool agree_naive = true;
    if (db.CountRepairs(1 << 22) < (1 << 22)) {
      bool a4 = false;
      t_naive = std::to_string(
          benchutil::TimeUs([&] { a4 = IsCertainNaive(qa, db).value(); }));
      agree_naive = (a4 == a1);
    }
    std::printf("%-9d %-8zu %-12.1f %-12.1f %-12.1f %-12s %s%s\n", persons,
                db.NumFacts(), t_rw, t_a1, t_bt, t_naive.c_str(),
                (a1 == a2 && a2 == a3 && agree_naive) ? "agree"
                                                      : "DISAGREE!",
                a1 ? "(certain)" : "(not certain)");
  }
  std::printf("(expected shape: naive feasible only on tiny instances; the\n"
              " FO strategies grow polynomially with database size)\n\n");
}

void Tables() {
  SizesTable();
  CrossoverTable();
}

void BM_RewritingEvalPoll(benchmark::State& state) {
  Query qa = PollQa();
  Result<RewritingSolver> solver = RewritingSolver::Create(qa);
  Rng rng(83);
  PollDbOptions opts;
  opts.num_persons = static_cast<int>(state.range(0));
  opts.num_towns = std::max(2, opts.num_persons / 5);
  Database db = GeneratePollDatabase(opts, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver->IsCertain(db));
  }
}
BENCHMARK(BM_RewritingEvalPoll)->Arg(10)->Arg(100)->Arg(1000);

void BM_Algorithm1Poll(benchmark::State& state) {
  Query qa = PollQa();
  Rng rng(83);
  PollDbOptions opts;
  opts.num_persons = static_cast<int>(state.range(0));
  opts.num_towns = std::max(2, opts.num_persons / 5);
  Database db = GeneratePollDatabase(opts, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsCertainAlgorithm1(qa, db).value());
  }
}
BENCHMARK(BM_Algorithm1Poll)->Arg(10)->Arg(100)->Arg(1000);

void BM_RewriteConstruction(benchmark::State& state) {
  Query qb = PollQb();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RewriteCertain(qb).ok());
  }
}
BENCHMARK(BM_RewriteConstruction);

}  // namespace
}  // namespace cqa

CQA_BENCH_MAIN(cqa::Tables)
