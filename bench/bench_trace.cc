// Open-loop trace-replay load generator for the solve daemon.
//
// Two modes:
//
//   bench_trace --record=FILE [--seed=N] [--requests=N] [--tenants=N]
//               [--queries=N] [--rate=RPS] [--pigeonhole-every=N]
//               [--pigeonhole-k=N] [--answers-every=N]
//     Generates a deterministic trace (trace_gen.h) and writes it to FILE.
//     The same seed always produces the byte-identical file — tools/ci.sh
//     records twice and `cmp`s.
//
//   bench_trace --replay=FILE [--parallelism=N] [--transcript=FILE]
//               [--workers=N] [--queue-cap=N] [--max-inflight=N]
//               [--timeout-ms=N] [--drain-ms=N] [--speed=X]
//               [--connect=HOST:PORT]
//     Replays the trace open-loop: requests are fired at their recorded
//     arrival timestamps (scaled by --speed) regardless of completions, so
//     overload sheds are reachable and measured rather than masked by
//     closed-loop self-throttling. By default an in-process SolveDaemon is
//     started and the databases are attached over the wire (the full
//     protocol path); --connect replays against an already-running daemon
//     instead. Reports client-observed p50/p99/p999 latency, shed rate and
//     a CRC32C fingerprint of the sorted verdict transcript — two replays
//     of the same trace that print the same fingerprint answered every
//     request identically, which is how the CI parity smoke compares
//     --parallelism=1 against --parallelism=8.
//
// Exit code: 0 on success, 1 on usage/IO/protocol errors, 2 when a replay
// lost requests (no terminal frame within the drain window).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cqa/base/crc32c.h"
#include "cqa/serve/net/client.h"
#include "cqa/serve/net/daemon.h"
#include "cqa/serve/net/json.h"
#include "cqa/serve/net/protocol.h"
#include "trace_gen.h"

namespace cqa {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;
using tracegen::Trace;

constexpr milliseconds kIo{10'000};

struct Args {
  std::string record;
  std::string replay;
  std::string transcript;
  std::string connect;
  uint64_t seed = 42;
  int requests = 200;
  int tenants = 3;
  int queries = 4;
  double rate = 2'000.0;
  int pigeonhole_every = 16;
  int pigeonhole_k = 4;
  int answers_every = 0;
  int parallelism = 0;  // 0 = daemon default
  int workers = 4;
  int queue_cap = 1024;
  int max_inflight = 4096;
  int timeout_ms = 0;  // 0 = none
  int drain_ms = 120'000;
  double speed = 1.0;
};

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto eat = [&](const char* flag, std::string* dst) {
      std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) != 0) return false;
      *dst = arg.substr(prefix.size());
      return true;
    };
    std::string v;
    if (eat("--record", &out->record) || eat("--replay", &out->replay) ||
        eat("--transcript", &out->transcript) ||
        eat("--connect", &out->connect)) {
      continue;
    }
    if (eat("--seed", &v)) {
      out->seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (eat("--requests", &v)) {
      out->requests = std::atoi(v.c_str());
    } else if (eat("--tenants", &v)) {
      out->tenants = std::atoi(v.c_str());
    } else if (eat("--queries", &v)) {
      out->queries = std::atoi(v.c_str());
    } else if (eat("--rate", &v)) {
      out->rate = std::atof(v.c_str());
    } else if (eat("--pigeonhole-every", &v)) {
      out->pigeonhole_every = std::atoi(v.c_str());
    } else if (eat("--pigeonhole-k", &v)) {
      out->pigeonhole_k = std::atoi(v.c_str());
    } else if (eat("--answers-every", &v)) {
      out->answers_every = std::atoi(v.c_str());
    } else if (eat("--parallelism", &v)) {
      out->parallelism = std::atoi(v.c_str());
    } else if (eat("--workers", &v)) {
      out->workers = std::atoi(v.c_str());
    } else if (eat("--queue-cap", &v)) {
      out->queue_cap = std::atoi(v.c_str());
    } else if (eat("--max-inflight", &v)) {
      out->max_inflight = std::atoi(v.c_str());
    } else if (eat("--timeout-ms", &v)) {
      out->timeout_ms = std::atoi(v.c_str());
    } else if (eat("--drain-ms", &v)) {
      out->drain_ms = std::atoi(v.c_str());
    } else if (eat("--speed", &v)) {
      out->speed = std::atof(v.c_str());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (out->record.empty() == out->replay.empty()) {
    std::fprintf(stderr,
                 "usage: bench_trace --record=FILE [gen flags] |"
                 " --replay=FILE [replay flags]\n");
    return false;
  }
  return true;
}

int Record(const Args& args) {
  tracegen::TraceGenOptions gen;
  gen.seed = args.seed;
  gen.tenants = args.tenants;
  gen.queries_per_tenant = args.queries;
  gen.requests = args.requests;
  gen.rate_rps = args.rate;
  gen.pigeonhole_every = args.pigeonhole_every;
  gen.pigeonhole_k = args.pigeonhole_k;
  gen.answers_every = args.answers_every;
  Trace trace = tracegen::GenerateTrace(gen);
  std::string text = tracegen::SerializeTrace(trace);
  std::ofstream f(args.record, std::ios::binary | std::ios::trunc);
  if (!f || !(f << text)) {
    std::fprintf(stderr, "cannot write %s\n", args.record.c_str());
    return 1;
  }
  std::printf("recorded %zu requests over %zu databases to %s (seed %llu, "
              "crc32c=%08x)\n",
              trace.requests.size(), trace.dbs.size(), args.record.c_str(),
              static_cast<unsigned long long>(trace.seed),
              Crc32c(text));
  return 0;
}

uint64_t Pct(std::vector<uint64_t>* us, double p) {
  if (us->empty()) return 0;
  std::sort(us->begin(), us->end());
  size_t rank = static_cast<size_t>(p * static_cast<double>(us->size() - 1));
  return (*us)[std::min(rank, us->size() - 1)];
}

int Replay(const Args& args) {
  std::ifstream f(args.replay, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "cannot read %s\n", args.replay.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  Result<Trace> parsed = tracegen::ParseTrace(ss.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", args.replay.c_str(),
                 parsed.error().c_str());
    return 1;
  }
  const Trace& trace = *parsed;
  const size_t n = trace.requests.size();
  if (n == 0) {
    std::fprintf(stderr, "%s: no requests\n", args.replay.c_str());
    return 1;
  }

  // The replay target: an in-process daemon by default, --connect=HOST:PORT
  // for a live one. Either way the databases are attached over the wire, so
  // the replay exercises the full protocol path.
  std::unique_ptr<SolveDaemon> daemon;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  if (args.connect.empty()) {
    DaemonOptions dopts;
    dopts.service.workers = std::max(1, args.workers);
    dopts.service.queue_capacity =
        static_cast<size_t>(std::max(1, args.queue_cap));
    dopts.connection.max_inflight =
        static_cast<size_t>(std::max(1, args.max_inflight));
    daemon = std::make_unique<SolveDaemon>(dopts);
    Result<bool> started = daemon->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "daemon start: %s\n", started.error().c_str());
      return 1;
    }
    port = daemon->port();
  } else {
    size_t colon = args.connect.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--connect wants HOST:PORT\n");
      return 1;
    }
    host = args.connect.substr(0, colon);
    port = static_cast<uint16_t>(
        std::atoi(args.connect.c_str() + colon + 1));
  }

  NetClient client;
  if (!client.Connect(host, port, milliseconds(5'000)).ok()) {
    std::fprintf(stderr, "connect %s:%u failed\n", host.c_str(), port);
    return 1;
  }

  // Attach every database (sequentially, before any solve traffic).
  uint64_t next_id = 1;
  for (const auto& [name, facts] : trace.dbs) {
    JsonObjectBuilder b;
    b.Set("type", "attach").Set("id", next_id++).Set("name", name)
        .Set("facts", facts);
    if (!client.SendFrame(b.Build().Serialize(), kIo).ok()) {
      std::fprintf(stderr, "attach %s: send failed\n", name.c_str());
      return 1;
    }
    Result<WireResponse> ack = client.ReadResponse(kIo);
    if (!ack.ok() || ack->type != "attach_ack") {
      std::fprintf(stderr, "attach %s: %s\n", name.c_str(),
                   ack.ok() ? ack->message.c_str() : ack.error().c_str());
      return 1;
    }
  }

  // Request idx <-> wire id: id = kIdBase + idx (clear of the attach ids).
  const uint64_t kIdBase = 1'000;
  std::vector<std::string> verdicts(n, "lost");
  std::vector<int64_t> send_ns(n, 0), recv_ns(n, 0);
  std::atomic<size_t> received{0};
  std::atomic<bool> reader_stop{false};

  // Reader: drains terminal frames as they arrive (any order — workers
  // race). Same socket as the sender, opposite direction.
  std::thread reader([&] {
    while (!reader_stop.load(std::memory_order_relaxed) &&
           received.load(std::memory_order_relaxed) < n) {
      Result<WireResponse> r = client.ReadResponse(milliseconds(50));
      if (!r.ok()) {
        if (r.code() == ErrorCode::kDeadlineExceeded) continue;
        break;  // connection gone
      }
      if (!IsTerminalResponseType(r->type)) continue;
      if (r->id < kIdBase || r->id >= kIdBase + n) continue;
      size_t idx = static_cast<size_t>(r->id - kIdBase);
      recv_ns[idx] = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
      if (r->type == "result") {
        verdicts[idx] = r->verdict;
      } else if (r->type == "answer_done") {
        // Parity-friendly spelling: the answer count is a property of
        // (query, db), independent of chunking or worker interleaving.
        verdicts[idx] = "answers=" + std::to_string(r->answers);
      } else if (r->type == "cancelled") {
        verdicts[idx] = "cancelled";
      } else if (r->code == "overloaded") {
        verdicts[idx] = "shed";
      } else {
        verdicts[idx] = "error:" + r->code;
      }
      received.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Open-loop sender: each request fires at its recorded arrival time
  // (scaled); a backlog never delays the schedule, only the socket can.
  const double speed = args.speed > 0 ? args.speed : 1.0;
  const auto base = std::chrono::steady_clock::now();
  int64_t max_late_us = 0;
  bool send_failed = false;
  for (size_t i = 0; i < n; ++i) {
    const tracegen::TraceRequest& req = trace.requests[i];
    auto due = base + microseconds(static_cast<int64_t>(
                          static_cast<double>(req.arrival_us) / speed));
    std::this_thread::sleep_until(due);
    auto now = std::chrono::steady_clock::now();
    max_late_us = std::max(
        max_late_us,
        std::chrono::duration_cast<microseconds>(now - due).count());
    send_ns[i] = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     now.time_since_epoch())
                     .count();
    JsonObjectBuilder b;
    if (req.answers) {
      b.Set("type", "answers").Set("id", kIdBase + i).Set("query", req.query)
          .Set("db", req.db).Set("max_chunk", req.max_chunk);
      Json::Array frees;
      size_t from = 0;
      while (from <= req.free_csv.size()) {
        size_t comma = req.free_csv.find(',', from);
        if (comma == std::string::npos) comma = req.free_csv.size();
        if (comma > from) {
          frees.push_back(
              Json::MakeString(req.free_csv.substr(from, comma - from)));
        }
        from = comma + 1;
      }
      b.Set("free", Json::MakeArray(std::move(frees)));
    } else {
      b.Set("type", "solve").Set("id", kIdBase + i).Set("query", req.query)
          .Set("db", req.db);
    }
    if (args.parallelism > 0) {
      b.Set("parallelism", static_cast<int64_t>(args.parallelism));
    }
    if (args.timeout_ms > 0) {
      b.Set("timeout_ms", static_cast<int64_t>(args.timeout_ms));
    }
    if (!client.SendFrame(b.Build().Serialize(), kIo).ok()) {
      std::fprintf(stderr, "send failed at request %zu\n", i);
      send_failed = true;
      break;
    }
  }
  const auto send_done = std::chrono::steady_clock::now();

  // Drain: give stragglers up to --drain-ms to produce their terminals.
  const auto drain_deadline = send_done + milliseconds(args.drain_ms);
  while (received.load() < n &&
         std::chrono::steady_clock::now() < drain_deadline && !send_failed) {
    std::this_thread::sleep_for(milliseconds(10));
  }
  reader_stop.store(true);
  reader.join();

  // Parallel counters, from a stats frame on the same connection (sent
  // after the reader exits — the response would otherwise race it).
  uint64_t parallel_solves = 0, components_found = 0, parallel_steals = 0;
  {
    JsonObjectBuilder b;
    b.Set("type", "stats").Set("id", next_id++);
    if (client.SendFrame(b.Build().Serialize(), kIo).ok()) {
      Result<WireResponse> r = client.ReadResponse(kIo);
      if (r.ok() && r->type == "stats") {
        if (const Json* svc = r->raw.Find("service")) {
          if (const Json* v = svc->Find("parallel_solves")) {
            parallel_solves = static_cast<uint64_t>(v->AsDouble());
          }
          if (const Json* v = svc->Find("components_found")) {
            components_found = static_cast<uint64_t>(v->AsDouble());
          }
          if (const Json* v = svc->Find("parallel_steals")) {
            parallel_steals = static_cast<uint64_t>(v->AsDouble());
          }
        }
      }
    }
  }
  client.Close();
  if (daemon != nullptr) (void)daemon->Shutdown(milliseconds(10'000));

  // Transcript: "<idx> <verdict>" sorted by idx; the CRC32C of this text
  // is the replay's parity fingerprint.
  std::string transcript;
  size_t ok_count = 0, shed = 0, errors = 0, lost = 0;
  std::vector<uint64_t> lat_us;
  lat_us.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    transcript += std::to_string(i) + " " + verdicts[i] + "\n";
    if (verdicts[i] == "lost") {
      ++lost;
    } else if (verdicts[i] == "shed") {
      ++shed;
    } else if (verdicts[i].rfind("error:", 0) == 0 ||
               verdicts[i] == "cancelled") {
      ++errors;
    } else {
      ++ok_count;
      lat_us.push_back(
          static_cast<uint64_t>((recv_ns[i] - send_ns[i]) / 1'000));
    }
  }
  if (!args.transcript.empty()) {
    std::ofstream tf(args.transcript, std::ios::binary | std::ios::trunc);
    if (!tf || !(tf << transcript)) {
      std::fprintf(stderr, "cannot write %s\n", args.transcript.c_str());
      return 1;
    }
  }

  const double wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          send_done - base)
          .count();
  std::printf("replayed %zu requests in %.2fs (%.0f rps offered)\n", n,
              wall_s, wall_s > 0 ? static_cast<double>(n) / wall_s : 0.0);
  std::printf("results: %zu ok, %zu shed (%.1f%%), %zu errors, %zu lost\n",
              ok_count, shed, 100.0 * static_cast<double>(shed) /
                                  static_cast<double>(n),
              errors, lost);
  std::printf("latency_us (client-observed, ok): p50=%llu p99=%llu "
              "p999=%llu max=%llu\n",
              static_cast<unsigned long long>(Pct(&lat_us, 0.50)),
              static_cast<unsigned long long>(Pct(&lat_us, 0.99)),
              static_cast<unsigned long long>(Pct(&lat_us, 0.999)),
              static_cast<unsigned long long>(Pct(&lat_us, 1.0)));
  std::printf("max send lateness: %lld us\n",
              static_cast<long long>(max_late_us));
  std::printf("parallel: solves=%llu components=%llu steals=%llu\n",
              static_cast<unsigned long long>(parallel_solves),
              static_cast<unsigned long long>(components_found),
              static_cast<unsigned long long>(parallel_steals));
  std::printf("transcript crc32c=%08x\n", Crc32c(transcript));
  if (send_failed) return 1;
  return lost > 0 ? 2 : 0;
}

}  // namespace
}  // namespace cqa

int main(int argc, char** argv) {
  cqa::Args args;
  if (!cqa::ParseArgs(argc, argv, &args)) return 1;
  if (!args.record.empty()) return cqa::Record(args);
  return cqa::Replay(args);
}
