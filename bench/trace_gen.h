// Deterministic trace generation for the open-loop replay harness
// (bench_trace.cc) and the CI parity smoke.
//
// A trace is a self-contained text file: the tenant databases (inline, in
// the `ParseFacts` grammar) followed by a timestamped open-loop request
// schedule. Everything is derived from one seed through the repo's own
// `Rng`, so the same seed always produces the byte-identical trace file —
// `tools/ci.sh` records twice and `cmp`s — and a recorded trace replays
// identically regardless of who generated it.
//
// Workload shape:
//  * mixed tenants: `tenants` databases, each with its own schema and its
//    own pool of random sjfBCQ¬ queries (schema-compatible by retry);
//  * Zipf-skewed query popularity: requests draw (tenant, query) pairs
//    with weight 1/rank^s over the global pool, so a few queries dominate
//    — the regime where the result cache and warm state matter;
//  * bursty open-loop arrivals: bursts of geometric size with small
//    within-burst gaps, separated by exponential idle gaps calibrated to
//    `rate_rps`. Arrival times are absolute; replay fires requests at
//    their timestamps regardless of completions (open loop), which is
//    what makes overload and shed behaviour reachable;
//  * adversarial salt: every `pigeonhole_every`-th request targets a
//    dedicated pigeonhole tenant with the coNP-hard cyclic query over
//    `PigeonholeDatabase(pigeonhole_k)` — exponential backtracking mixed
//    into otherwise light traffic.
//
// Format (version tag first line; `--` comments are not allowed — the file
// is machine-written):
//
//   # cqa-trace v2 seed=<seed>
//   db <name>
//   <fact lines...>
//   enddb
//   req <arrival_us> <db> <query text>
//   ans <arrival_us> <db> <max_chunk> <free-csv> <query text>
//
// `ans` lines (v2 only; the parser accepts v1 and v2 headers, and `req`
// semantics are unchanged) open a chunked answer stream: `free-csv` is the
// comma-joined free-variable list and `max_chunk` the answers-per-chunk
// knob. The replayer drives each stream to its `answer_done` terminal, so
// answer traffic shares admission, cache, and backpressure with solves.
//
#ifndef CQA_BENCH_TRACE_GEN_H_
#define CQA_BENCH_TRACE_GEN_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cqa/base/interner.h"
#include "cqa/base/result.h"
#include "cqa/base/rng.h"
#include "cqa/base/symbol_set.h"
#include "cqa/db/database.h"
#include "cqa/gen/families.h"
#include "cqa/gen/random_db.h"
#include "cqa/gen/random_query.h"
#include "cqa/query/query.h"
#include "cqa/query/schema.h"

namespace cqa {
namespace tracegen {

struct TraceRequest {
  uint64_t arrival_us = 0;
  std::string db;
  std::string query;
  /// Chunked answer-enumeration request (an `ans` line) instead of a
  /// boolean certainty solve. `free_csv` holds the comma-joined free
  /// variables; `max_chunk` the answers-per-chunk knob.
  bool answers = false;
  std::string free_csv;
  uint64_t max_chunk = 0;
};

struct Trace {
  uint64_t seed = 0;
  /// name -> facts text (ParseFacts grammar), in attach order.
  std::vector<std::pair<std::string, std::string>> dbs;
  std::vector<TraceRequest> requests;
};

struct TraceGenOptions {
  uint64_t seed = 42;
  int tenants = 3;
  int queries_per_tenant = 4;
  int requests = 200;
  /// Zipf exponent over the global (tenant, query) pool.
  double zipf_s = 1.1;
  /// Open-loop offered rate (requests per second) used to calibrate the
  /// inter-burst gaps.
  double rate_rps = 2'000.0;
  /// Mean burst size (geometric); 1 disables burstiness.
  double mean_burst = 8.0;
  /// Every Nth request is the adversarial pigeonhole solve (0 = never).
  int pigeonhole_every = 16;
  int pigeonhole_k = 4;
  /// Every Nth request becomes a chunked answer stream over its query's
  /// positive variables (0 = never; pigeonhole slots keep priority).
  int answers_every = 0;
};

/// Wire spelling of a query: comma-joined literals/diseqs, no braces (the
/// grammar `ParseQuery` accepts, identical to what tests hand-write).
inline std::string WireQueryText(const Query& q) {
  std::string out;
  for (size_t i = 0; i < q.literals().size(); ++i) {
    if (i > 0) out += ", ";
    out += q.literals()[i].ToString();
  }
  for (const Diseq& d : q.diseqs()) out += ", " + d.ToString();
  return out;
}

/// Generates the deterministic trace for `options`. Every random draw goes
/// through one `Rng(seed)` stream, so equal options produce equal traces.
inline Trace GenerateTrace(const TraceGenOptions& options) {
  Rng rng(options.seed);
  Trace trace;
  trace.seed = options.seed;

  struct PoolEntry {
    std::string db;
    std::string query;
    std::string free_csv;  // up to two positive vars; empty when none
  };
  std::vector<PoolEntry> pool;

  // Tenant databases: each tenant accumulates queries into one schema
  // (regenerating on a relation-signature clash, bounded and deterministic)
  // and draws one random database covering all of them.
  RandomQueryOptions qopts;
  RandomDbOptions dbopts;
  dbopts.blocks_per_relation = 6;
  dbopts.domain_size = 8;
  const int tenants = std::max(1, options.tenants);
  const int per_tenant = std::max(1, options.queries_per_tenant);
  for (int t = 0; t < tenants; ++t) {
    Schema schema;
    std::vector<Query> queries;
    while (static_cast<int>(queries.size()) < per_tenant) {
      Query q = GenerateRandomQuery(qopts, &rng);
      Schema probe = schema;
      if (!q.RegisterInto(&probe).ok()) continue;  // signature clash: redraw
      schema = std::move(probe);
      queries.push_back(std::move(q));
    }
    std::vector<Value> constants;
    for (const Query& q : queries) {
      for (const Literal& l : q.literals()) {
        for (const Term& term : l.atom.terms()) {
          if (term.is_constant()) constants.push_back(term.constant());
        }
      }
    }
    Database db = GenerateRandomDatabase(schema, dbopts, &rng, constants);
    std::string name = "tenant" + std::to_string(t);
    trace.dbs.emplace_back(name, db.ToText());
    for (const Query& q : queries) {
      const SymbolSet positive_vars = q.PositiveVars();
      const std::vector<Symbol> vars = positive_vars.items();
      std::string free_csv;
      for (size_t v = 0; v < vars.size() && v < 2; ++v) {
        if (v > 0) free_csv += ',';
        free_csv += SymbolName(vars[v]);
      }
      pool.push_back(PoolEntry{name, WireQueryText(q), std::move(free_csv)});
    }
  }
  if (options.pigeonhole_every > 0) {
    trace.dbs.emplace_back(
        "pigeon", PigeonholeDatabase(std::max(2, options.pigeonhole_k))
                      .ToText());
  }
  const std::string pigeon_query = WireQueryText(PigeonholeCyclicQuery());

  // Zipf cumulative weights over the pool, rank = pool order (already a
  // random permutation of tenants/queries by construction).
  std::vector<double> cumulative(pool.size());
  double total = 0;
  for (size_t i = 0; i < pool.size(); ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), options.zipf_s);
    cumulative[i] = total;
  }

  // Bursty open-loop arrivals: geometric burst sizes, ~100us in-burst
  // gaps, exponential inter-burst gaps sized so the long-run offered rate
  // matches rate_rps.
  const double mean_burst = std::max(1.0, options.mean_burst);
  const double per_req_us =
      1e6 / std::max(1.0, options.rate_rps);  // long-run mean gap
  const double inter_burst_us = per_req_us * mean_burst;
  uint64_t now_us = 0;
  int burst_left = 0;
  for (int i = 0; i < std::max(1, options.requests); ++i) {
    if (burst_left <= 0) {
      // Geometric burst size with mean `mean_burst`.
      burst_left = 1;
      while (rng.Chance(1.0 - 1.0 / mean_burst)) ++burst_left;
      // Exponential inter-burst gap (inverse CDF on a uniform draw).
      double u = std::min(rng.NextDouble(), 0.999999);
      now_us += static_cast<uint64_t>(-std::log(1.0 - u) * inter_burst_us);
    } else {
      now_us += rng.Below(200);  // within-burst jitter
    }
    --burst_left;

    TraceRequest req;
    req.arrival_us = now_us;
    if (options.pigeonhole_every > 0 &&
        (i + 1) % options.pigeonhole_every == 0) {
      req.db = "pigeon";
      req.query = pigeon_query;
    } else {
      double pick = rng.NextDouble() * total;
      size_t idx = static_cast<size_t>(
          std::lower_bound(cumulative.begin(), cumulative.end(), pick) -
          cumulative.begin());
      idx = std::min(idx, pool.size() - 1);
      req.db = pool[idx].db;
      req.query = pool[idx].query;
      if (options.answers_every > 0 &&
          (i + 1) % options.answers_every == 0 &&
          !pool[idx].free_csv.empty()) {
        req.answers = true;
        req.free_csv = pool[idx].free_csv;
        static constexpr uint64_t kChunks[] = {1, 4, 16, 64};
        req.max_chunk = kChunks[rng.Below(4)];
      }
    }
    trace.requests.push_back(std::move(req));
  }
  return trace;
}

inline std::string SerializeTrace(const Trace& trace) {
  std::string out = "# cqa-trace v2 seed=" + std::to_string(trace.seed) + "\n";
  for (const auto& [name, facts] : trace.dbs) {
    out += "db " + name + "\n";
    out += facts;
    if (!facts.empty() && facts.back() != '\n') out += "\n";
    out += "enddb\n";
  }
  for (const TraceRequest& req : trace.requests) {
    if (req.answers) {
      out += "ans " + std::to_string(req.arrival_us) + " " + req.db + " " +
             std::to_string(req.max_chunk) + " " + req.free_csv + " " +
             req.query + "\n";
    } else {
      out += "req " + std::to_string(req.arrival_us) + " " + req.db + " " +
             req.query + "\n";
    }
  }
  return out;
}

inline Result<Trace> ParseTrace(const std::string& text) {
  using Out = Result<Trace>;
  Trace trace;
  size_t pos = 0;
  int line_no = 0;
  std::string pending_db;     // name of the db block being read
  std::string pending_facts;  // its accumulated fact lines
  bool saw_header = false;
  int version = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty() && pos > text.size()) break;
    const std::string where = "trace line " + std::to_string(line_no);
    if (!saw_header) {
      if (line.rfind("# cqa-trace v1 seed=", 0) == 0) {
        version = 1;
      } else if (line.rfind("# cqa-trace v2 seed=", 0) == 0) {
        version = 2;
      } else {
        return Out::Error(ErrorCode::kParse,
                          where + ": expected '# cqa-trace v1|v2 seed=<n>'");
      }
      trace.seed = std::strtoull(line.c_str() + 20, nullptr, 10);
      saw_header = true;
      continue;
    }
    if (!pending_db.empty()) {
      if (line == "enddb") {
        trace.dbs.emplace_back(std::move(pending_db),
                               std::move(pending_facts));
        pending_db.clear();
        pending_facts.clear();
      } else {
        pending_facts += line;
        pending_facts += '\n';
      }
      continue;
    }
    if (line.empty()) continue;
    if (line.rfind("db ", 0) == 0) {
      pending_db = line.substr(3);
      if (pending_db.empty()) {
        return Out::Error(ErrorCode::kParse, where + ": empty db name");
      }
      continue;
    }
    if (line.rfind("req ", 0) == 0) {
      // req <arrival_us> <db> <query...>
      size_t a = line.find(' ', 4);
      if (a == std::string::npos) {
        return Out::Error(ErrorCode::kParse, where + ": malformed req");
      }
      size_t b = line.find(' ', a + 1);
      if (b == std::string::npos) {
        return Out::Error(ErrorCode::kParse, where + ": malformed req");
      }
      TraceRequest req;
      req.arrival_us =
          std::strtoull(line.substr(4, a - 4).c_str(), nullptr, 10);
      req.db = line.substr(a + 1, b - a - 1);
      req.query = line.substr(b + 1);
      if (req.db.empty() || req.query.empty()) {
        return Out::Error(ErrorCode::kParse, where + ": malformed req");
      }
      trace.requests.push_back(std::move(req));
      continue;
    }
    if (line.rfind("ans ", 0) == 0) {
      // ans <arrival_us> <db> <max_chunk> <free-csv> <query...>
      if (version < 2) {
        return Out::Error(ErrorCode::kParse,
                          where + ": 'ans' requires a v2 trace");
      }
      size_t a = line.find(' ', 4);
      size_t b = a == std::string::npos ? a : line.find(' ', a + 1);
      size_t c = b == std::string::npos ? b : line.find(' ', b + 1);
      size_t d = c == std::string::npos ? c : line.find(' ', c + 1);
      if (d == std::string::npos) {
        return Out::Error(ErrorCode::kParse, where + ": malformed ans");
      }
      TraceRequest req;
      req.answers = true;
      req.arrival_us =
          std::strtoull(line.substr(4, a - 4).c_str(), nullptr, 10);
      req.db = line.substr(a + 1, b - a - 1);
      req.max_chunk =
          std::strtoull(line.substr(b + 1, c - b - 1).c_str(), nullptr, 10);
      req.free_csv = line.substr(c + 1, d - c - 1);
      req.query = line.substr(d + 1);
      if (req.db.empty() || req.free_csv.empty() || req.query.empty() ||
          req.max_chunk == 0) {
        return Out::Error(ErrorCode::kParse, where + ": malformed ans");
      }
      trace.requests.push_back(std::move(req));
      continue;
    }
    return Out::Error(ErrorCode::kParse,
                      where + ": unknown directive '" + line + "'");
  }
  if (!pending_db.empty()) {
    return Out::Error(ErrorCode::kParse, "unterminated db block '" +
                                             pending_db + "' (missing enddb)");
  }
  if (!saw_header) {
    return Out::Error(ErrorCode::kParse, "empty trace (missing header)");
  }
  return trace;
}

}  // namespace tracegen
}  // namespace cqa

#endif  // CQA_BENCH_TRACE_GEN_H_
