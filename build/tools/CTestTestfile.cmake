# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cqa_fuzz_smoke "/root/repo/build/tools/cqa_fuzz" "--rounds=40" "--seed=42")
set_tests_properties(cqa_fuzz_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
