# Empty compiler generated dependencies file for cqa_fuzz.
# This may be replaced when dependencies are built.
