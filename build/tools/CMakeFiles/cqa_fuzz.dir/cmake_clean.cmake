file(REMOVE_RECURSE
  "CMakeFiles/cqa_fuzz.dir/cqa_fuzz.cc.o"
  "CMakeFiles/cqa_fuzz.dir/cqa_fuzz.cc.o.d"
  "cqa_fuzz"
  "cqa_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqa_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
