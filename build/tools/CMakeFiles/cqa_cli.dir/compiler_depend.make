# Empty compiler generated dependencies file for cqa_cli.
# This may be replaced when dependencies are built.
