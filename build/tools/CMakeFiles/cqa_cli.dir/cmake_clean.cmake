file(REMOVE_RECURSE
  "CMakeFiles/cqa_cli.dir/cqa_cli.cc.o"
  "CMakeFiles/cqa_cli.dir/cqa_cli.cc.o.d"
  "cqa_cli"
  "cqa_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
