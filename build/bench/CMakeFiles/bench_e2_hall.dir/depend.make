# Empty dependencies file for bench_e2_hall.
# This may be replaced when dependencies are built.
