file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_hall.dir/bench_e2_hall.cc.o"
  "CMakeFiles/bench_e2_hall.dir/bench_e2_hall.cc.o.d"
  "bench_e2_hall"
  "bench_e2_hall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_hall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
