file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_reify.dir/bench_e8_reify.cc.o"
  "CMakeFiles/bench_e8_reify.dir/bench_e8_reify.cc.o.d"
  "bench_e8_reify"
  "bench_e8_reify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_reify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
