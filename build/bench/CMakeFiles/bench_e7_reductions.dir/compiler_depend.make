# Empty compiler generated dependencies file for bench_e7_reductions.
# This may be replaced when dependencies are built.
