file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_reductions.dir/bench_e7_reductions.cc.o"
  "CMakeFiles/bench_e7_reductions.dir/bench_e7_reductions.cc.o.d"
  "bench_e7_reductions"
  "bench_e7_reductions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
