file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_bpm.dir/bench_e1_bpm.cc.o"
  "CMakeFiles/bench_e1_bpm.dir/bench_e1_bpm.cc.o.d"
  "bench_e1_bpm"
  "bench_e1_bpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_bpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
