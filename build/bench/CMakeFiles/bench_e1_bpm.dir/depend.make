# Empty dependencies file for bench_e1_bpm.
# This may be replaced when dependencies are built.
