# Empty dependencies file for bench_e4_ufa.
# This may be replaced when dependencies are built.
