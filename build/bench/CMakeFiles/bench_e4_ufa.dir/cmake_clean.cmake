file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_ufa.dir/bench_e4_ufa.cc.o"
  "CMakeFiles/bench_e4_ufa.dir/bench_e4_ufa.cc.o.d"
  "bench_e4_ufa"
  "bench_e4_ufa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_ufa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
