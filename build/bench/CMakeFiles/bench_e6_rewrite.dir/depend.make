# Empty dependencies file for bench_e6_rewrite.
# This may be replaced when dependencies are built.
