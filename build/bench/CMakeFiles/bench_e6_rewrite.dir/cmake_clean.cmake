file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_rewrite.dir/bench_e6_rewrite.cc.o"
  "CMakeFiles/bench_e6_rewrite.dir/bench_e6_rewrite.cc.o.d"
  "bench_e6_rewrite"
  "bench_e6_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
