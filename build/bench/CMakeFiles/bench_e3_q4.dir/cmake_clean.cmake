file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_q4.dir/bench_e3_q4.cc.o"
  "CMakeFiles/bench_e3_q4.dir/bench_e3_q4.cc.o.d"
  "bench_e3_q4"
  "bench_e3_q4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_q4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
