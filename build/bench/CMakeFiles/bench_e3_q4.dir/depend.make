# Empty dependencies file for bench_e3_q4.
# This may be replaced when dependencies are built.
