file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_classify.dir/bench_e5_classify.cc.o"
  "CMakeFiles/bench_e5_classify.dir/bench_e5_classify.cc.o.d"
  "bench_e5_classify"
  "bench_e5_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
