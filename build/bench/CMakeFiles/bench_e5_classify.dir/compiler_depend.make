# Empty compiler generated dependencies file for bench_e5_classify.
# This may be replaced when dependencies are built.
