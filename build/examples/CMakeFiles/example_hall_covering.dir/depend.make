# Empty dependencies file for example_hall_covering.
# This may be replaced when dependencies are built.
