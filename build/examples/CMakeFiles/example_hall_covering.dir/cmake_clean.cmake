file(REMOVE_RECURSE
  "CMakeFiles/example_hall_covering.dir/hall_covering.cpp.o"
  "CMakeFiles/example_hall_covering.dir/hall_covering.cpp.o.d"
  "example_hall_covering"
  "example_hall_covering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hall_covering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
