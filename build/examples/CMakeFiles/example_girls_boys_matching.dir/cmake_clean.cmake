file(REMOVE_RECURSE
  "CMakeFiles/example_girls_boys_matching.dir/girls_boys_matching.cpp.o"
  "CMakeFiles/example_girls_boys_matching.dir/girls_boys_matching.cpp.o.d"
  "example_girls_boys_matching"
  "example_girls_boys_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_girls_boys_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
