# Empty dependencies file for example_girls_boys_matching.
# This may be replaced when dependencies are built.
