# Empty compiler generated dependencies file for example_sql_export.
# This may be replaced when dependencies are built.
