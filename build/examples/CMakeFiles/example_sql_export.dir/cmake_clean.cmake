file(REMOVE_RECURSE
  "CMakeFiles/example_sql_export.dir/sql_export.cpp.o"
  "CMakeFiles/example_sql_export.dir/sql_export.cpp.o.d"
  "example_sql_export"
  "example_sql_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sql_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
