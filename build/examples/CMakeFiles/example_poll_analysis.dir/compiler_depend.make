# Empty compiler generated dependencies file for example_poll_analysis.
# This may be replaced when dependencies are built.
