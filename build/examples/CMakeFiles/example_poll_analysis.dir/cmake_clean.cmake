file(REMOVE_RECURSE
  "CMakeFiles/example_poll_analysis.dir/poll_analysis.cpp.o"
  "CMakeFiles/example_poll_analysis.dir/poll_analysis.cpp.o.d"
  "example_poll_analysis"
  "example_poll_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_poll_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
