# Empty dependencies file for example_certain_answers.
# This may be replaced when dependencies are built.
