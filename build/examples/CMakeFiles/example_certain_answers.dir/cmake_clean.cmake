file(REMOVE_RECURSE
  "CMakeFiles/example_certain_answers.dir/certain_answers.cpp.o"
  "CMakeFiles/example_certain_answers.dir/certain_answers.cpp.o.d"
  "example_certain_answers"
  "example_certain_answers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_certain_answers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
