# Empty dependencies file for backtracking_test.
# This may be replaced when dependencies are built.
