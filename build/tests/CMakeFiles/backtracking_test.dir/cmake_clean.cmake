file(REMOVE_RECURSE
  "CMakeFiles/backtracking_test.dir/backtracking_test.cc.o"
  "CMakeFiles/backtracking_test.dir/backtracking_test.cc.o.d"
  "backtracking_test"
  "backtracking_test.pdb"
  "backtracking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backtracking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
