# Empty dependencies file for repairs_test.
# This may be replaced when dependencies are built.
