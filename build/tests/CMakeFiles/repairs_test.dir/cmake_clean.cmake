file(REMOVE_RECURSE
  "CMakeFiles/repairs_test.dir/repairs_test.cc.o"
  "CMakeFiles/repairs_test.dir/repairs_test.cc.o.d"
  "repairs_test"
  "repairs_test.pdb"
  "repairs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repairs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
