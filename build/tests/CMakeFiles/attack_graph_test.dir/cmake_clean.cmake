file(REMOVE_RECURSE
  "CMakeFiles/attack_graph_test.dir/attack_graph_test.cc.o"
  "CMakeFiles/attack_graph_test.dir/attack_graph_test.cc.o.d"
  "attack_graph_test"
  "attack_graph_test.pdb"
  "attack_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
