file(REMOVE_RECURSE
  "CMakeFiles/typing_test.dir/typing_test.cc.o"
  "CMakeFiles/typing_test.dir/typing_test.cc.o.d"
  "typing_test"
  "typing_test.pdb"
  "typing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
