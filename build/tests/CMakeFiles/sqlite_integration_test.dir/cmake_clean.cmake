file(REMOVE_RECURSE
  "CMakeFiles/sqlite_integration_test.dir/sqlite_integration_test.cc.o"
  "CMakeFiles/sqlite_integration_test.dir/sqlite_integration_test.cc.o.d"
  "sqlite_integration_test"
  "sqlite_integration_test.pdb"
  "sqlite_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlite_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
