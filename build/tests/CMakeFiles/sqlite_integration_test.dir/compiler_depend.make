# Empty compiler generated dependencies file for sqlite_integration_test.
# This may be replaced when dependencies are built.
