file(REMOVE_RECURSE
  "CMakeFiles/matching_q1_test.dir/matching_q1_test.cc.o"
  "CMakeFiles/matching_q1_test.dir/matching_q1_test.cc.o.d"
  "matching_q1_test"
  "matching_q1_test.pdb"
  "matching_q1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_q1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
