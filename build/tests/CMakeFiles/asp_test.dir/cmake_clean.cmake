file(REMOVE_RECURSE
  "CMakeFiles/asp_test.dir/asp_test.cc.o"
  "CMakeFiles/asp_test.dir/asp_test.cc.o.d"
  "asp_test"
  "asp_test.pdb"
  "asp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
