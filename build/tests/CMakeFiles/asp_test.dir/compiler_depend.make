# Empty compiler generated dependencies file for asp_test.
# This may be replaced when dependencies are built.
