file(REMOVE_RECURSE
  "CMakeFiles/lemma6x_test.dir/lemma6x_test.cc.o"
  "CMakeFiles/lemma6x_test.dir/lemma6x_test.cc.o.d"
  "lemma6x_test"
  "lemma6x_test.pdb"
  "lemma6x_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma6x_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
