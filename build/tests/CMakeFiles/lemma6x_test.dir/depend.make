# Empty dependencies file for lemma6x_test.
# This may be replaced when dependencies are built.
