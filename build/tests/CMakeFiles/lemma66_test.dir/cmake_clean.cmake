file(REMOVE_RECURSE
  "CMakeFiles/lemma66_test.dir/lemma66_test.cc.o"
  "CMakeFiles/lemma66_test.dir/lemma66_test.cc.o.d"
  "lemma66_test"
  "lemma66_test.pdb"
  "lemma66_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma66_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
