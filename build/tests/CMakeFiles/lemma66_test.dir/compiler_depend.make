# Empty compiler generated dependencies file for lemma66_test.
# This may be replaced when dependencies are built.
