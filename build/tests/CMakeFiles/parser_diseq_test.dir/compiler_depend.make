# Empty compiler generated dependencies file for parser_diseq_test.
# This may be replaced when dependencies are built.
