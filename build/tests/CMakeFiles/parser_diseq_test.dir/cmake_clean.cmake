file(REMOVE_RECURSE
  "CMakeFiles/parser_diseq_test.dir/parser_diseq_test.cc.o"
  "CMakeFiles/parser_diseq_test.dir/parser_diseq_test.cc.o.d"
  "parser_diseq_test"
  "parser_diseq_test.pdb"
  "parser_diseq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_diseq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
