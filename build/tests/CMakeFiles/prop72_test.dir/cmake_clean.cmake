file(REMOVE_RECURSE
  "CMakeFiles/prop72_test.dir/prop72_test.cc.o"
  "CMakeFiles/prop72_test.dir/prop72_test.cc.o.d"
  "prop72_test"
  "prop72_test.pdb"
  "prop72_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop72_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
