# Empty compiler generated dependencies file for prop72_test.
# This may be replaced when dependencies are built.
