file(REMOVE_RECURSE
  "CMakeFiles/q4_test.dir/q4_test.cc.o"
  "CMakeFiles/q4_test.dir/q4_test.cc.o.d"
  "q4_test"
  "q4_test.pdb"
  "q4_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/q4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
