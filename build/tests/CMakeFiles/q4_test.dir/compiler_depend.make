# Empty compiler generated dependencies file for q4_test.
# This may be replaced when dependencies are built.
