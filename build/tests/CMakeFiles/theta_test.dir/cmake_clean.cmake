file(REMOVE_RECURSE
  "CMakeFiles/theta_test.dir/theta_test.cc.o"
  "CMakeFiles/theta_test.dir/theta_test.cc.o.d"
  "theta_test"
  "theta_test.pdb"
  "theta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
