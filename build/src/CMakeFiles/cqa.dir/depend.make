# Empty dependencies file for cqa.
# This may be replaced when dependencies are built.
