file(REMOVE_RECURSE
  "libcqa.a"
)
