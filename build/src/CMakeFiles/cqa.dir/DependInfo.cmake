
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cqa/attack/attack_graph.cc" "src/CMakeFiles/cqa.dir/cqa/attack/attack_graph.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/attack/attack_graph.cc.o.d"
  "/root/repo/src/cqa/attack/classification.cc" "src/CMakeFiles/cqa.dir/cqa/attack/classification.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/attack/classification.cc.o.d"
  "/root/repo/src/cqa/attack/dot.cc" "src/CMakeFiles/cqa.dir/cqa/attack/dot.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/attack/dot.cc.o.d"
  "/root/repo/src/cqa/base/interner.cc" "src/CMakeFiles/cqa.dir/cqa/base/interner.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/base/interner.cc.o.d"
  "/root/repo/src/cqa/base/rng.cc" "src/CMakeFiles/cqa.dir/cqa/base/rng.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/base/rng.cc.o.d"
  "/root/repo/src/cqa/base/union_find.cc" "src/CMakeFiles/cqa.dir/cqa/base/union_find.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/base/union_find.cc.o.d"
  "/root/repo/src/cqa/base/value.cc" "src/CMakeFiles/cqa.dir/cqa/base/value.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/base/value.cc.o.d"
  "/root/repo/src/cqa/certainty/backtracking.cc" "src/CMakeFiles/cqa.dir/cqa/certainty/backtracking.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/certainty/backtracking.cc.o.d"
  "/root/repo/src/cqa/certainty/certain_answers.cc" "src/CMakeFiles/cqa.dir/cqa/certainty/certain_answers.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/certainty/certain_answers.cc.o.d"
  "/root/repo/src/cqa/certainty/matching_q1.cc" "src/CMakeFiles/cqa.dir/cqa/certainty/matching_q1.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/certainty/matching_q1.cc.o.d"
  "/root/repo/src/cqa/certainty/naive.cc" "src/CMakeFiles/cqa.dir/cqa/certainty/naive.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/certainty/naive.cc.o.d"
  "/root/repo/src/cqa/certainty/rewriting_solver.cc" "src/CMakeFiles/cqa.dir/cqa/certainty/rewriting_solver.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/certainty/rewriting_solver.cc.o.d"
  "/root/repo/src/cqa/certainty/sampling.cc" "src/CMakeFiles/cqa.dir/cqa/certainty/sampling.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/certainty/sampling.cc.o.d"
  "/root/repo/src/cqa/certainty/solver.cc" "src/CMakeFiles/cqa.dir/cqa/certainty/solver.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/certainty/solver.cc.o.d"
  "/root/repo/src/cqa/db/database.cc" "src/CMakeFiles/cqa.dir/cqa/db/database.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/db/database.cc.o.d"
  "/root/repo/src/cqa/db/eval.cc" "src/CMakeFiles/cqa.dir/cqa/db/eval.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/db/eval.cc.o.d"
  "/root/repo/src/cqa/db/fact.cc" "src/CMakeFiles/cqa.dir/cqa/db/fact.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/db/fact.cc.o.d"
  "/root/repo/src/cqa/db/repairs.cc" "src/CMakeFiles/cqa.dir/cqa/db/repairs.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/db/repairs.cc.o.d"
  "/root/repo/src/cqa/db/stats.cc" "src/CMakeFiles/cqa.dir/cqa/db/stats.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/db/stats.cc.o.d"
  "/root/repo/src/cqa/db/typing.cc" "src/CMakeFiles/cqa.dir/cqa/db/typing.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/db/typing.cc.o.d"
  "/root/repo/src/cqa/export/asp.cc" "src/CMakeFiles/cqa.dir/cqa/export/asp.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/export/asp.cc.o.d"
  "/root/repo/src/cqa/fd/fd.cc" "src/CMakeFiles/cqa.dir/cqa/fd/fd.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/fd/fd.cc.o.d"
  "/root/repo/src/cqa/fo/algebra.cc" "src/CMakeFiles/cqa.dir/cqa/fo/algebra.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/fo/algebra.cc.o.d"
  "/root/repo/src/cqa/fo/eval.cc" "src/CMakeFiles/cqa.dir/cqa/fo/eval.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/fo/eval.cc.o.d"
  "/root/repo/src/cqa/fo/fo_parser.cc" "src/CMakeFiles/cqa.dir/cqa/fo/fo_parser.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/fo/fo_parser.cc.o.d"
  "/root/repo/src/cqa/fo/formula.cc" "src/CMakeFiles/cqa.dir/cqa/fo/formula.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/fo/formula.cc.o.d"
  "/root/repo/src/cqa/fo/normal_form.cc" "src/CMakeFiles/cqa.dir/cqa/fo/normal_form.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/fo/normal_form.cc.o.d"
  "/root/repo/src/cqa/fo/printer.cc" "src/CMakeFiles/cqa.dir/cqa/fo/printer.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/fo/printer.cc.o.d"
  "/root/repo/src/cqa/fo/simplify.cc" "src/CMakeFiles/cqa.dir/cqa/fo/simplify.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/fo/simplify.cc.o.d"
  "/root/repo/src/cqa/fo/sql.cc" "src/CMakeFiles/cqa.dir/cqa/fo/sql.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/fo/sql.cc.o.d"
  "/root/repo/src/cqa/gen/families.cc" "src/CMakeFiles/cqa.dir/cqa/gen/families.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/gen/families.cc.o.d"
  "/root/repo/src/cqa/gen/poll.cc" "src/CMakeFiles/cqa.dir/cqa/gen/poll.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/gen/poll.cc.o.d"
  "/root/repo/src/cqa/gen/random_db.cc" "src/CMakeFiles/cqa.dir/cqa/gen/random_db.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/gen/random_db.cc.o.d"
  "/root/repo/src/cqa/gen/random_formula.cc" "src/CMakeFiles/cqa.dir/cqa/gen/random_formula.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/gen/random_formula.cc.o.d"
  "/root/repo/src/cqa/gen/random_query.cc" "src/CMakeFiles/cqa.dir/cqa/gen/random_query.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/gen/random_query.cc.o.d"
  "/root/repo/src/cqa/matching/bipartite.cc" "src/CMakeFiles/cqa.dir/cqa/matching/bipartite.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/matching/bipartite.cc.o.d"
  "/root/repo/src/cqa/matching/covering.cc" "src/CMakeFiles/cqa.dir/cqa/matching/covering.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/matching/covering.cc.o.d"
  "/root/repo/src/cqa/matching/hall.cc" "src/CMakeFiles/cqa.dir/cqa/matching/hall.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/matching/hall.cc.o.d"
  "/root/repo/src/cqa/matching/hopcroft_karp.cc" "src/CMakeFiles/cqa.dir/cqa/matching/hopcroft_karp.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/matching/hopcroft_karp.cc.o.d"
  "/root/repo/src/cqa/query/atom.cc" "src/CMakeFiles/cqa.dir/cqa/query/atom.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/query/atom.cc.o.d"
  "/root/repo/src/cqa/query/parser.cc" "src/CMakeFiles/cqa.dir/cqa/query/parser.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/query/parser.cc.o.d"
  "/root/repo/src/cqa/query/query.cc" "src/CMakeFiles/cqa.dir/cqa/query/query.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/query/query.cc.o.d"
  "/root/repo/src/cqa/query/schema.cc" "src/CMakeFiles/cqa.dir/cqa/query/schema.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/query/schema.cc.o.d"
  "/root/repo/src/cqa/query/term.cc" "src/CMakeFiles/cqa.dir/cqa/query/term.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/query/term.cc.o.d"
  "/root/repo/src/cqa/reductions/bpm.cc" "src/CMakeFiles/cqa.dir/cqa/reductions/bpm.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/reductions/bpm.cc.o.d"
  "/root/repo/src/cqa/reductions/hall_covering.cc" "src/CMakeFiles/cqa.dir/cqa/reductions/hall_covering.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/reductions/hall_covering.cc.o.d"
  "/root/repo/src/cqa/reductions/lemma54.cc" "src/CMakeFiles/cqa.dir/cqa/reductions/lemma54.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/reductions/lemma54.cc.o.d"
  "/root/repo/src/cqa/reductions/lemma66.cc" "src/CMakeFiles/cqa.dir/cqa/reductions/lemma66.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/reductions/lemma66.cc.o.d"
  "/root/repo/src/cqa/reductions/prop72.cc" "src/CMakeFiles/cqa.dir/cqa/reductions/prop72.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/reductions/prop72.cc.o.d"
  "/root/repo/src/cqa/reductions/q4.cc" "src/CMakeFiles/cqa.dir/cqa/reductions/q4.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/reductions/q4.cc.o.d"
  "/root/repo/src/cqa/reductions/theta.cc" "src/CMakeFiles/cqa.dir/cqa/reductions/theta.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/reductions/theta.cc.o.d"
  "/root/repo/src/cqa/reductions/ufa.cc" "src/CMakeFiles/cqa.dir/cqa/reductions/ufa.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/reductions/ufa.cc.o.d"
  "/root/repo/src/cqa/rewriting/algorithm1.cc" "src/CMakeFiles/cqa.dir/cqa/rewriting/algorithm1.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/rewriting/algorithm1.cc.o.d"
  "/root/repo/src/cqa/rewriting/rewriter.cc" "src/CMakeFiles/cqa.dir/cqa/rewriting/rewriter.cc.o" "gcc" "src/CMakeFiles/cqa.dir/cqa/rewriting/rewriter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
